"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-use-pep517` (or plain `pip install -e .` on older
pips) uses the legacy `setup.py develop` path, which does not need to
build a wheel. All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
