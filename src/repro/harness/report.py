"""Paper-style ASCII tables and machine-readable reports.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output consistent and legible in CI logs.
:func:`json_report` / :func:`write_json_report` produce the structured
per-run counterpart (consumed by tooling instead of eyeballs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "format_table",
    "print_table",
    "format_fraction_bar",
    "json_report",
    "write_json_report",
]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 10 ** -(precision - 1):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    precision: int = 4,
    title: str = "",
) -> str:
    """Render dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, ""), precision) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(rows, **kwargs) -> None:
    print()
    print(format_table(rows, **kwargs))


def _jsonable(value):
    """Best-effort conversion of numpy scalars / sets to JSON types."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    for attr in ("item",):  # numpy scalar protocol
        if hasattr(value, attr) and not isinstance(value, (str, bytes)):
            try:
                return value.item()
            except (TypeError, ValueError):
                break
    return value


def json_report(
    name: str,
    rows: Iterable[Mapping[str, object]],
    *,
    meta: Mapping[str, object] | None = None,
    metrics: Mapping[str, object] | None = None,
) -> dict:
    """Build the machine-readable counterpart of one printed table.

    ``rows`` are the table rows verbatim; ``meta`` carries run context
    (dataset, scale, codec, ...); ``metrics`` carries scalar outcomes
    (speedups, totals). The result is JSON-serializable.
    """
    report = {
        "name": name,
        "rows": [_jsonable(dict(r)) for r in rows],
    }
    if meta:
        report["meta"] = _jsonable(meta)
    if metrics:
        report["metrics"] = _jsonable(metrics)
    return report


def write_json_report(path: str | Path, report: Mapping[str, object]) -> Path:
    """Write one report (or any JSON-serializable mapping) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(dict(report)), indent=2, sort_keys=True))
    return path


def format_fraction_bar(
    fractions: Mapping[str, float], width: int = 40
) -> str:
    """Render a fraction stack as a one-line bar, e.g. Fig. 6b rows."""
    symbols = "#=.:+*"
    parts = []
    bar = ""
    for i, (name, frac) in enumerate(fractions.items()):
        n = int(round(frac * width))
        bar += symbols[i % len(symbols)] * n
        parts.append(f"{name}={frac:.0%}")
    return f"[{bar[:width].ljust(width)}] " + " ".join(parts)
