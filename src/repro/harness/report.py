"""Paper-style ASCII tables for experiment output.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output consistent and legible in CI logs.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_table", "print_table", "format_fraction_bar"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 10 ** -(precision - 1):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    precision: int = 4,
    title: str = "",
) -> str:
    """Render dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, ""), precision) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(rows, **kwargs) -> None:
    print()
    print(format_table(rows, **kwargs))


def format_fraction_bar(
    fractions: Mapping[str, float], width: int = 40
) -> str:
    """Render a fraction stack as a one-line bar, e.g. Fig. 6b rows."""
    symbols = "#=.:+*"
    parts = []
    bar = ""
    for i, (name, frac) in enumerate(fractions.items()):
        n = int(round(frac * width))
        bar += symbols[i % len(symbols)] * n
        parts.append(f"{name}={frac:.0%}")
    return f"[{bar[:width].ljust(width)}] " + " ".join(parts)
