"""Experiment scaffolding and paper-style reporting for the benchmarks."""

from repro.harness.experiment import (
    ExperimentSetup,
    setup_experiment,
    write_baseline_dataset,
)
from repro.harness.report import (
    format_fraction_bar,
    format_table,
    json_report,
    print_table,
    write_json_report,
)

__all__ = [
    "ExperimentSetup",
    "setup_experiment",
    "write_baseline_dataset",
    "format_table",
    "print_table",
    "format_fraction_bar",
    "json_report",
    "write_json_report",
]
