"""Shared experiment scaffolding for the per-figure benchmarks.

Each bench needs the same setup: build a synthetic dataset, a two-tier
hierarchy in a temp directory, encode with Canopus, and (for the
baselines) write the unreduced full-accuracy data to the slowest tier.
Centralizing it keeps each ``benchmarks/test_fig*.py`` focused on the
figure it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.compress import get_codec
from repro.core import (
    CanopusDecoder,
    CanopusEncoder,
    EncodeReport,
    LevelScheme,
    RefactorResult,
)
from repro.core.notation import level_key, mesh_key
from repro.io.dataset import BPDataset
from repro.mesh.io import mesh_to_bytes
from repro.simulations import SyntheticDataset, make_dataset
from repro.storage import StorageHierarchy, two_tier_titan

__all__ = ["ExperimentSetup", "setup_experiment", "write_baseline_dataset"]

DEFAULT_TOLERANCE = 1e-4


@dataclass
class ExperimentSetup:
    """Everything a figure bench needs, pre-wired."""

    dataset: SyntheticDataset
    hierarchy: StorageHierarchy
    scheme: LevelScheme
    report: EncodeReport
    refactored: RefactorResult
    canopus_name: str
    baseline_name: str

    def decoder(self) -> CanopusDecoder:
        return CanopusDecoder(BPDataset.open(self.canopus_name, self.hierarchy))

    def json_report(self) -> dict:
        """Machine-readable summary of the encode run (write path)."""
        from repro.harness.report import json_report

        rows = [
            {
                "key": key,
                "bytes": self.report.compressed_bytes[key],
                "tier": self.report.placed_tiers.get(key, ""),
            }
            for key in sorted(self.report.compressed_bytes)
        ]
        return json_report(
            f"encode:{self.canopus_name}",
            rows,
            meta={
                "dataset": self.dataset.name,
                "variable": self.dataset.variable,
                "vertices": self.dataset.mesh.num_vertices,
                "num_levels": self.scheme.num_levels,
                "baseline": self.baseline_name,
            },
            metrics={
                "original_bytes": self.report.original_bytes,
                "payload_bytes": self.report.payload_bytes,
                "total_compressed_bytes": self.report.total_compressed_bytes,
                "decimation_seconds": self.report.decimation_seconds,
                "delta_seconds": self.report.delta_seconds,
                "compress_seconds": self.report.compress_seconds,
                "io_seconds": self.report.io_seconds,
            },
        )

    def save_json_report(self, path: str | Path) -> Path:
        """Write :meth:`json_report` to ``path`` (parents created)."""
        from repro.harness.report import write_json_report

        return write_json_report(path, self.json_report())


def stack_planes(dataset: SyntheticDataset, planes: int, seed: int = 0):
    """Stack a dataset's field into a 3-D variable of ``planes`` planes.

    XGC1's dpot is "a 3D scalar field, organized into a discrete set of
    2D planes"; planes share the mesh and are strongly correlated but not
    identical. Each synthetic plane gets a small smooth per-plane
    modulation on top of the reference field.
    """
    if planes <= 1:
        return dataset.field
    import numpy as np

    rng = np.random.default_rng(seed)
    v = dataset.mesh.vertices
    span = np.ptp(dataset.field)
    stack = np.empty((planes, len(dataset.field)))
    for p in range(planes):
        phase = 2 * np.pi * p / planes
        wobble = 0.03 * span * np.sin(
            2 * v[:, 0] + phase + rng.uniform(0, 0.3)
        ) * np.cos(2 * v[:, 1] - phase)
        stack[p] = dataset.field + wobble
    return stack


def write_baseline_dataset(
    name: str,
    hierarchy: StorageHierarchy,
    dataset: SyntheticDataset,
    *,
    codec: str = "raw",
    field=None,
) -> None:
    """Write unreduced full-accuracy data to the slowest tier.

    This is the paper's "None" comparison: a conventional writer puts
    ``L0`` (and the mesh) on the parallel file system.
    """
    import numpy as np

    data = dataset.field if field is None else np.asarray(field)
    planes = data.shape[0] if data.ndim == 2 else 0
    ds = BPDataset.create(name, hierarchy)
    slow_index = len(hierarchy) - 1
    blob = get_codec(codec).encode(data.ravel())
    ds.catalog.attrs.setdefault("variables", {})[dataset.variable] = {
        "planes": planes
    }
    ds.write(
        level_key(dataset.variable, 0), blob,
        kind="base", level=0, count=data.size,
        codec=codec, preferred_tier=slow_index,
    )
    ds.write(
        mesh_key(dataset.variable, 0), mesh_to_bytes(dataset.mesh),
        kind="mesh", level=0, preferred_tier=slow_index,
    )
    ds.close()


def setup_experiment(
    dataset_name: str,
    workdir: str | Path,
    *,
    scale: float = 0.3,
    num_levels: int = 3,
    tolerance: float = DEFAULT_TOLERANCE,
    codec: str = "zfp",
    codec_mode: str = "relative",
    fast_capacity: int = 8 << 20,
    planes: int = 1,
    **encoder_kwargs,
) -> ExperimentSetup:
    """Build dataset + hierarchy, Canopus-encode, and write the baseline.

    ``codec_mode="relative"`` scales the error bound to each product's
    value range, which is what makes one tolerance sensible across
    fields as different as dpot (≈1) and pressure (≈1e5).
    ``planes > 1`` stacks the field into a 3-D multi-plane variable
    (paper-realistic data volumes: XGC1's dpot is a plane stack).
    """
    dataset = make_dataset(dataset_name, scale=scale)
    field = stack_planes(dataset, planes)
    hierarchy = two_tier_titan(
        Path(workdir), fast_capacity=fast_capacity, slow_capacity=1 << 36
    )
    scheme = LevelScheme(num_levels)
    params: dict = {"tolerance": tolerance}
    if codec == "zfp":
        params["mode"] = codec_mode
    encoder = CanopusEncoder(
        hierarchy, codec=codec, codec_params=params, **encoder_kwargs
    )
    canopus_name = f"{dataset_name}-canopus"
    report, refactored = encoder.encode(
        canopus_name, dataset.variable, dataset.mesh, field, scheme
    )
    baseline_name = f"{dataset_name}-baseline"
    write_baseline_dataset(baseline_name, hierarchy, dataset, field=field)
    return ExperimentSetup(
        dataset=dataset,
        hierarchy=hierarchy,
        scheme=scheme,
        report=report,
        refactored=refactored,
        canopus_name=canopus_name,
        baseline_name=baseline_name,
    )
