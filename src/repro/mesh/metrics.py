"""Mesh quality and size metrics.

Used by the decimation tests (to check that edge collapse keeps the mesh
sane) and by the Fig. 4 refactoring bench (to report per-level mesh
statistics alongside field smoothness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.triangle_mesh import TriangleMesh

__all__ = [
    "MeshStats",
    "mesh_stats",
    "triangle_aspect_ratios",
    "triangle_min_angles",
    "decimation_ratio",
]


def triangle_aspect_ratios(mesh: TriangleMesh) -> np.ndarray:
    """Longest edge / (2 * inradius) per triangle; 1 for equilateral."""
    p = mesh.vertices[mesh.triangles]  # (m, 3, 2)
    e0 = np.linalg.norm(p[:, 1] - p[:, 0], axis=1)
    e1 = np.linalg.norm(p[:, 2] - p[:, 1], axis=1)
    e2 = np.linalg.norm(p[:, 0] - p[:, 2], axis=1)
    s = 0.5 * (e0 + e1 + e2)
    area = mesh.triangle_areas()
    inradius = np.where(s > 0, area / np.maximum(s, 1e-300), 0.0)
    longest = np.maximum(np.maximum(e0, e1), e2)
    ratio = longest / np.maximum(2.0 * np.sqrt(3.0) * inradius, 1e-300)
    return ratio


def triangle_min_angles(mesh: TriangleMesh) -> np.ndarray:
    """Minimum interior angle (radians) of each triangle."""
    p = mesh.vertices[mesh.triangles]
    angles = np.empty((mesh.num_triangles, 3), dtype=np.float64)
    for i in range(3):
        a = p[:, i]
        b = p[:, (i + 1) % 3]
        c = p[:, (i + 2) % 3]
        u = b - a
        v = c - a
        cosang = np.einsum("ij,ij->i", u, v) / np.maximum(
            np.linalg.norm(u, axis=1) * np.linalg.norm(v, axis=1), 1e-300
        )
        angles[:, i] = np.arccos(np.clip(cosang, -1.0, 1.0))
    return angles.min(axis=1)


def decimation_ratio(fine: TriangleMesh, coarse: TriangleMesh) -> float:
    """``d = |V^fine| / |V^coarse|`` (paper §III-B)."""
    return fine.num_vertices / max(1, coarse.num_vertices)


@dataclass(frozen=True)
class MeshStats:
    """Summary statistics for one mesh level."""

    num_vertices: int
    num_triangles: int
    num_edges: int
    num_boundary_edges: int
    total_area: float
    mean_edge_length: float
    min_angle_deg: float
    mean_aspect_ratio: float
    euler_characteristic: int

    def as_dict(self) -> dict[str, float | int]:
        return {
            "num_vertices": self.num_vertices,
            "num_triangles": self.num_triangles,
            "num_edges": self.num_edges,
            "num_boundary_edges": self.num_boundary_edges,
            "total_area": self.total_area,
            "mean_edge_length": self.mean_edge_length,
            "min_angle_deg": self.min_angle_deg,
            "mean_aspect_ratio": self.mean_aspect_ratio,
            "euler_characteristic": self.euler_characteristic,
        }


def mesh_stats(mesh: TriangleMesh) -> MeshStats:
    lengths = mesh.edge_lengths()
    angles = triangle_min_angles(mesh)
    return MeshStats(
        num_vertices=mesh.num_vertices,
        num_triangles=mesh.num_triangles,
        num_edges=mesh.num_edges,
        num_boundary_edges=len(mesh.boundary_edges),
        total_area=mesh.total_area(),
        mean_edge_length=float(lengths.mean()) if lengths.size else 0.0,
        min_angle_deg=float(np.degrees(angles.min())) if angles.size else 0.0,
        mean_aspect_ratio=(
            float(triangle_aspect_ratios(mesh).mean())
            if mesh.num_triangles
            else 0.0
        ),
        euler_characteristic=mesh.euler_characteristic(),
    )
