"""Immutable unstructured triangular mesh.

The mesh follows the paper's notation (§III-B): a mesh at level *l* is
``G^l(V^l, E^l)`` with vertices ``V^l`` and (bidirectional) edges ``E^l``.
Triangles are stored explicitly because delta calculation (Alg. 2) and
restoration (Alg. 3) iterate over coarse-level triangles.

Vertices are 2-D points (the paper's datasets are planar cross-sections:
an XGC1 poloidal plane, a GenASiS slice, a CFD surface slice). Per-vertex
field arrays are kept *outside* the mesh, aligned by vertex index, so one
mesh can carry many variables.

Derived connectivity (unique edges, vertex→vertex adjacency CSR,
vertex→triangle incidence, boundary edges) is computed lazily and cached;
the arrays themselves are set read-only so a cached mesh can be shared
freely between pipeline stages.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import MeshError

__all__ = ["TriangleMesh"]


def _as_readonly(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a)
    a.setflags(write=False)
    return a


class TriangleMesh:
    """An unstructured 2-D triangular mesh.

    Parameters
    ----------
    vertices:
        ``(n_vertices, 2)`` float64 array of point coordinates.
    triangles:
        ``(n_triangles, 3)`` integer array of vertex indices. Triangle
        orientation is normalized to counter-clockwise on construction.
    validate:
        When true (default) the constructor rejects out-of-range indices,
        degenerate triangles (repeated vertices), and duplicated triangles.
    """

    __slots__ = (
        "vertices",
        "triangles",
        "_edges",
        "_adjacency",
        "_vertex_triangles",
        "_boundary_edges",
        "_triangle_areas",
    )

    def __init__(
        self,
        vertices: np.ndarray,
        triangles: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        vertices = np.asarray(vertices, dtype=np.float64)
        triangles = np.asarray(triangles, dtype=np.int64)
        if vertices.ndim != 2 or vertices.shape[1] != 2:
            raise MeshError(f"vertices must be (n, 2); got {vertices.shape}")
        if triangles.ndim != 2 or triangles.shape[1] != 3:
            raise MeshError(f"triangles must be (m, 3); got {triangles.shape}")

        if validate and triangles.size:
            if triangles.min() < 0 or triangles.max() >= len(vertices):
                raise MeshError("triangle index out of range")
            t = triangles
            if np.any((t[:, 0] == t[:, 1]) | (t[:, 1] == t[:, 2]) | (t[:, 0] == t[:, 2])):
                raise MeshError("degenerate triangle (repeated vertex index)")
            canon = np.sort(t, axis=1)
            uniq = np.unique(canon, axis=0)
            if len(uniq) != len(canon):
                raise MeshError("duplicate triangles present")

        triangles = self._orient_ccw(vertices, triangles)
        self.vertices = _as_readonly(vertices)
        self.triangles = _as_readonly(triangles)
        self._edges: np.ndarray | None = None
        self._adjacency: tuple[np.ndarray, np.ndarray] | None = None
        self._vertex_triangles: tuple[np.ndarray, np.ndarray] | None = None
        self._boundary_edges: np.ndarray | None = None
        self._triangle_areas: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _orient_ccw(vertices: np.ndarray, triangles: np.ndarray) -> np.ndarray:
        """Flip clockwise triangles so all have positive signed area."""
        if not len(triangles):
            return triangles
        p0 = vertices[triangles[:, 0]]
        p1 = vertices[triangles[:, 1]]
        p2 = vertices[triangles[:, 2]]
        signed = (p1[:, 0] - p0[:, 0]) * (p2[:, 1] - p0[:, 1]) - (
            p1[:, 1] - p0[:, 1]
        ) * (p2[:, 0] - p0[:, 0])
        flip = signed < 0
        if flip.any():
            triangles = triangles.copy()
            triangles[flip, 1], triangles[flip, 2] = (
                triangles[flip, 2].copy(),
                triangles[flip, 1].copy(),
            )
        return triangles

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``|V|`` in the paper's notation."""
        return len(self.vertices)

    @property
    def num_triangles(self) -> int:
        return len(self.triangles)

    @property
    def num_edges(self) -> int:
        """``|E|``: count of unique undirected edges."""
        return len(self.edges)

    @property
    def edges(self) -> np.ndarray:
        """``(n_edges, 2)`` array of unique undirected edges, ``u < v``."""
        if self._edges is None:
            t = self.triangles
            raw = np.concatenate([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
            raw = np.sort(raw, axis=1)
            self._edges = _as_readonly(np.unique(raw, axis=0))
        return self._edges

    @property
    def boundary_edges(self) -> np.ndarray:
        """Edges incident to exactly one triangle."""
        if self._boundary_edges is None:
            t = self.triangles
            raw = np.concatenate([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
            raw = np.sort(raw, axis=1)
            uniq, counts = np.unique(raw, axis=0, return_counts=True)
            self._boundary_edges = _as_readonly(uniq[counts == 1])
        return self._boundary_edges

    @property
    def boundary_vertices(self) -> np.ndarray:
        """Sorted unique vertex indices lying on the boundary."""
        return np.unique(self.boundary_edges)

    # ------------------------------------------------------------------
    # adjacency (CSR layout for cache-friendly traversal)
    # ------------------------------------------------------------------
    def vertex_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Vertex→vertex adjacency in CSR form ``(indptr, indices)``.

        Neighbors of vertex ``i`` are ``indices[indptr[i]:indptr[i+1]]``.
        """
        if self._adjacency is None:
            e = self.edges
            src = np.concatenate([e[:, 0], e[:, 1]])
            dst = np.concatenate([e[:, 1], e[:, 0]])
            order = np.argsort(src, kind="stable")
            src, dst = src[order], dst[order]
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.add.at(indptr, src + 1, 1)
            np.cumsum(indptr, out=indptr)
            self._adjacency = (_as_readonly(indptr), _as_readonly(dst))
        return self._adjacency

    def vertex_neighbors(self, i: int) -> np.ndarray:
        indptr, indices = self.vertex_adjacency()
        return indices[indptr[i] : indptr[i + 1]]

    def vertex_triangle_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Vertex→triangle incidence in CSR form ``(indptr, tri_ids)``."""
        if self._vertex_triangles is None:
            t = self.triangles
            src = t.ravel()
            tri = np.repeat(np.arange(len(t), dtype=np.int64), 3)
            order = np.argsort(src, kind="stable")
            src, tri = src[order], tri[order]
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.add.at(indptr, src + 1, 1)
            np.cumsum(indptr, out=indptr)
            self._vertex_triangles = (_as_readonly(indptr), _as_readonly(tri))
        return self._vertex_triangles

    def triangles_of_vertex(self, i: int) -> np.ndarray:
        indptr, tri = self.vertex_triangle_incidence()
        return tri[indptr[i] : indptr[i + 1]]

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def edge_lengths(self) -> np.ndarray:
        """Length of each unique edge, aligned with :attr:`edges`."""
        e = self.edges
        d = self.vertices[e[:, 0]] - self.vertices[e[:, 1]]
        return np.hypot(d[:, 0], d[:, 1])

    def triangle_areas(self) -> np.ndarray:
        """Unsigned area of every triangle (CCW orientation ⇒ positive)."""
        if self._triangle_areas is None:
            p0 = self.vertices[self.triangles[:, 0]]
            p1 = self.vertices[self.triangles[:, 1]]
            p2 = self.vertices[self.triangles[:, 2]]
            signed = 0.5 * (
                (p1[:, 0] - p0[:, 0]) * (p2[:, 1] - p0[:, 1])
                - (p1[:, 1] - p0[:, 1]) * (p2[:, 0] - p0[:, 0])
            )
            self._triangle_areas = _as_readonly(np.abs(signed))
        return self._triangle_areas

    def triangle_centroids(self) -> np.ndarray:
        return self.vertices[self.triangles].mean(axis=1)

    def total_area(self) -> float:
        return float(self.triangle_areas().sum())

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """``(min_xy, max_xy)`` of the vertex cloud."""
        if not self.num_vertices:
            raise MeshError("empty mesh has no bounding box")
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    # ------------------------------------------------------------------
    # structural utilities
    # ------------------------------------------------------------------
    def compact(self, field: np.ndarray | None = None):
        """Drop vertices not referenced by any triangle.

        Returns ``(mesh, index_map)`` or ``(mesh, index_map, field)`` when a
        per-vertex field is supplied; ``index_map[old] == new`` with ``-1``
        for dropped vertices.
        """
        used = np.zeros(self.num_vertices, dtype=bool)
        used[self.triangles.ravel()] = True
        index_map = np.full(self.num_vertices, -1, dtype=np.int64)
        index_map[used] = np.arange(int(used.sum()), dtype=np.int64)
        mesh = TriangleMesh(
            self.vertices[used], index_map[self.triangles], validate=False
        )
        if field is None:
            return mesh, index_map
        field = np.asarray(field)
        if len(field) != self.num_vertices:
            raise MeshError("field length does not match vertex count")
        return mesh, index_map, field[used]

    def is_edge(self, u: int, v: int) -> bool:
        return v in self.vertex_neighbors(u)

    def euler_characteristic(self) -> int:
        """V − E + F; 1 for a disk-like mesh, 0 for an annulus."""
        return self.num_vertices - self.num_edges + self.num_triangles

    def copy(self) -> "TriangleMesh":
        return TriangleMesh(
            self.vertices.copy(), self.triangles.copy(), validate=False
        )

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriangleMesh):
            return NotImplemented
        return (
            self.vertices.shape == other.vertices.shape
            and self.triangles.shape == other.triangles.shape
            and np.array_equal(self.vertices, other.vertices)
            and np.array_equal(
                np.sort(np.sort(self.triangles, axis=1), axis=0),
                np.sort(np.sort(other.triangles, axis=1), axis=0),
            )
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"TriangleMesh(num_vertices={self.num_vertices}, "
            f"num_triangles={self.num_triangles})"
        )

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate over triangles as index triples."""
        return iter(self.triangles)
