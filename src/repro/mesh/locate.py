"""Point location in a triangular mesh.

Delta calculation (paper Alg. 2) and restoration (Alg. 3) both need, for
every fine-level vertex ``V^l_x``, the coarse-level triangle
``<V^{l+1}_i, V^{l+1}_j, V^{l+1}_k>`` it falls into. The paper notes that
brute force is too expensive and that Canopus stores the mapping in ADIOS
metadata; here a uniform-grid spatial index makes the *initial* location
pass near-linear, and :mod:`repro.core.mapping` persists the result.

Because edge collapse moves vertices to midpoints, the coarse mesh's hull
can shrink slightly, leaving some fine vertices outside every coarse
triangle. Those are assigned to the nearest-centroid triangle (via a
KD-tree) with *extrapolated* barycentric coordinates. Restoration is exact
regardless: the delta absorbs whatever the estimate misses, so triangle
assignment quality affects only delta smoothness, never correctness.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import PointLocationError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["TriangleLocator", "barycentric_coordinates"]

_INSIDE_EPS = 1e-9


def barycentric_coordinates(
    points: np.ndarray, tri_points: np.ndarray
) -> np.ndarray:
    """Barycentric coordinates of ``points`` w.r.t. paired triangles.

    Parameters
    ----------
    points:
        ``(n, 2)`` query points.
    tri_points:
        ``(n, 3, 2)`` triangle corner coordinates, one triangle per point.

    Returns
    -------
    ``(n, 3)`` coordinates ``(w_i, w_j, w_k)`` summing to 1. Values may lie
    outside [0, 1] for points outside their triangle (linear extrapolation).
    """
    points = np.asarray(points, dtype=np.float64)
    tri_points = np.asarray(tri_points, dtype=np.float64)
    if points.ndim == 1:
        points = points[None, :]
        tri_points = tri_points[None, ...]
    a = tri_points[:, 0]
    b = tri_points[:, 1]
    c = tri_points[:, 2]
    v0 = b - a
    v1 = c - a
    v2 = points - a
    d00 = np.einsum("ij,ij->i", v0, v0)
    d01 = np.einsum("ij,ij->i", v0, v1)
    d11 = np.einsum("ij,ij->i", v1, v1)
    d20 = np.einsum("ij,ij->i", v2, v0)
    d21 = np.einsum("ij,ij->i", v2, v1)
    denom = d00 * d11 - d01 * d01
    degenerate = np.abs(denom) < 1e-300
    safe = np.where(degenerate, 1.0, denom)
    w1 = (d11 * d20 - d01 * d21) / safe
    w2 = (d00 * d21 - d01 * d20) / safe
    w1 = np.where(degenerate, 1.0 / 3.0, w1)
    w2 = np.where(degenerate, 1.0 / 3.0, w2)
    w0 = 1.0 - w1 - w2
    return np.stack([w0, w1, w2], axis=1)


class TriangleLocator:
    """Uniform-grid spatial index over a mesh's triangles.

    The grid resolution targets a handful of triangles per cell:
    ``cells ≈ n_triangles``, so build is O(m) and a point query inspects
    only the triangles whose bounding box overlaps its cell.
    """

    def __init__(self, mesh: TriangleMesh, cells_per_triangle: float = 1.0):
        if mesh.num_triangles == 0:
            raise PointLocationError("cannot build a locator on an empty mesh")
        self.mesh = mesh
        lo, hi = mesh.bounding_box()
        span = np.maximum(hi - lo, 1e-12)
        n_cells = max(1, int(np.sqrt(mesh.num_triangles * cells_per_triangle)))
        self._lo = lo
        self._cell = span / n_cells
        self._n = n_cells

        tri_pts = mesh.vertices[mesh.triangles]  # (m, 3, 2)
        ilo = self._cell_index(tri_pts.min(axis=1))
        ihi = self._cell_index(tri_pts.max(axis=1))
        # Bucket triangle ids by every cell their bbox covers — CSR over
        # the dense cell grid, built by expanding each triangle into its
        # (bbox width × height) covered cells in one shot.
        wx = ihi[:, 0] - ilo[:, 0] + 1
        wy = ihi[:, 1] - ilo[:, 1] + 1
        counts = wx * wy
        tri_ids = np.repeat(
            np.arange(mesh.num_triangles, dtype=np.int64), counts
        )
        offsets = np.concatenate([[0], np.cumsum(counts[:-1])])
        local = np.arange(len(tri_ids), dtype=np.int64) - np.repeat(
            offsets, counts
        )
        cx = ilo[tri_ids, 0] + local // wy[tri_ids]
        cy = ilo[tri_ids, 1] + local % wy[tri_ids]
        flat = cx * n_cells + cy
        # Sort by cell, triangle id ascending within each bucket, so a
        # query hitting several containing triangles picks the lowest id.
        order = np.lexsort((tri_ids, flat))
        self._bucket_tris = tri_ids[order]
        self._bucket_indptr = np.searchsorted(
            flat[order], np.arange(n_cells * n_cells + 1, dtype=np.int64)
        )
        self._centroid_tree = cKDTree(mesh.triangle_centroids())

    def _cell_index(self, points: np.ndarray) -> np.ndarray:
        idx = ((points - self._lo) / self._cell).astype(np.int64)
        return np.clip(idx, 0, self._n - 1)

    def locate(
        self, points: np.ndarray, *, allow_fallback: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Locate every point; return ``(triangle_ids, barycentric)``.

        ``triangle_ids`` is ``(n,)`` int64; ``barycentric`` is ``(n, 3)``.
        Points inside the mesh get their containing triangle; points
        outside get the nearest-centroid triangle with extrapolated
        coordinates when ``allow_fallback`` (otherwise
        :class:`PointLocationError` is raised).
        """
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        n = len(points)
        tri_ids = np.full(n, -1, dtype=np.int64)
        bary = np.zeros((n, 3), dtype=np.float64)

        cells = self._cell_index(points)
        flat = cells[:, 0] * self._n + cells[:, 1]
        verts = self.mesh.vertices
        tris = self.mesh.triangles

        # One flat (point, candidate) pair expansion: every point is
        # paired with each triangle bucketed in its cell, the barycentric
        # solve runs over all pairs at once, and the first containing
        # candidate per point (lowest triangle id) wins.
        starts = self._bucket_indptr[flat]
        counts = self._bucket_indptr[flat + 1] - starts
        total = int(counts.sum())
        if total:
            pt = np.repeat(np.arange(n, dtype=np.int64), counts)
            offsets = np.concatenate([[0], np.cumsum(counts[:-1])])
            local = np.arange(total, dtype=np.int64) - np.repeat(
                offsets, counts
            )
            cand = self._bucket_tris[np.repeat(starts, counts) + local]
            w = barycentric_coordinates(points[pt], verts[tris[cand]])
            inside = np.flatnonzero(w.min(axis=1) >= -_INSIDE_EPS)
            # pt is non-decreasing, so the first occurrence of each point
            # among the inside pairs is its lowest-id containing triangle.
            hits, first = np.unique(pt[inside], return_index=True)
            sel = inside[first]
            tri_ids[hits] = cand[sel]
            bary[hits] = w[sel]

        missing = np.flatnonzero(tri_ids < 0)
        if len(missing):
            if not allow_fallback:
                raise PointLocationError(
                    f"{len(missing)} point(s) outside the mesh"
                )
            _, nearest = self._centroid_tree.query(points[missing])
            nearest = np.atleast_1d(nearest).astype(np.int64)
            tri_ids[missing] = nearest
            bary[missing] = barycentric_coordinates(
                points[missing], verts[tris[nearest]]
            )

        if single:
            return tri_ids[:1], bary[:1]
        return tri_ids, bary
