"""Point location in a triangular mesh.

Delta calculation (paper Alg. 2) and restoration (Alg. 3) both need, for
every fine-level vertex ``V^l_x``, the coarse-level triangle
``<V^{l+1}_i, V^{l+1}_j, V^{l+1}_k>`` it falls into. The paper notes that
brute force is too expensive and that Canopus stores the mapping in ADIOS
metadata; here a uniform-grid spatial index makes the *initial* location
pass near-linear, and :mod:`repro.core.mapping` persists the result.

Because edge collapse moves vertices to midpoints, the coarse mesh's hull
can shrink slightly, leaving some fine vertices outside every coarse
triangle. Those are assigned to the nearest-centroid triangle (via a
KD-tree) with *extrapolated* barycentric coordinates. Restoration is exact
regardless: the delta absorbs whatever the estimate misses, so triangle
assignment quality affects only delta smoothness, never correctness.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import PointLocationError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["TriangleLocator", "barycentric_coordinates"]

_INSIDE_EPS = 1e-9


def barycentric_coordinates(
    points: np.ndarray, tri_points: np.ndarray
) -> np.ndarray:
    """Barycentric coordinates of ``points`` w.r.t. paired triangles.

    Parameters
    ----------
    points:
        ``(n, 2)`` query points.
    tri_points:
        ``(n, 3, 2)`` triangle corner coordinates, one triangle per point.

    Returns
    -------
    ``(n, 3)`` coordinates ``(w_i, w_j, w_k)`` summing to 1. Values may lie
    outside [0, 1] for points outside their triangle (linear extrapolation).
    """
    points = np.asarray(points, dtype=np.float64)
    tri_points = np.asarray(tri_points, dtype=np.float64)
    if points.ndim == 1:
        points = points[None, :]
        tri_points = tri_points[None, ...]
    a = tri_points[:, 0]
    b = tri_points[:, 1]
    c = tri_points[:, 2]
    v0 = b - a
    v1 = c - a
    v2 = points - a
    d00 = np.einsum("ij,ij->i", v0, v0)
    d01 = np.einsum("ij,ij->i", v0, v1)
    d11 = np.einsum("ij,ij->i", v1, v1)
    d20 = np.einsum("ij,ij->i", v2, v0)
    d21 = np.einsum("ij,ij->i", v2, v1)
    denom = d00 * d11 - d01 * d01
    degenerate = np.abs(denom) < 1e-300
    safe = np.where(degenerate, 1.0, denom)
    w1 = (d11 * d20 - d01 * d21) / safe
    w2 = (d00 * d21 - d01 * d20) / safe
    w1 = np.where(degenerate, 1.0 / 3.0, w1)
    w2 = np.where(degenerate, 1.0 / 3.0, w2)
    w0 = 1.0 - w1 - w2
    return np.stack([w0, w1, w2], axis=1)


class TriangleLocator:
    """Uniform-grid spatial index over a mesh's triangles.

    The grid resolution targets a handful of triangles per cell:
    ``cells ≈ n_triangles``, so build is O(m) and a point query inspects
    only the triangles whose bounding box overlaps its cell.
    """

    def __init__(self, mesh: TriangleMesh, cells_per_triangle: float = 1.0):
        if mesh.num_triangles == 0:
            raise PointLocationError("cannot build a locator on an empty mesh")
        self.mesh = mesh
        lo, hi = mesh.bounding_box()
        span = np.maximum(hi - lo, 1e-12)
        n_cells = max(1, int(np.sqrt(mesh.num_triangles * cells_per_triangle)))
        self._lo = lo
        self._cell = span / n_cells
        self._n = n_cells

        tri_pts = mesh.vertices[mesh.triangles]  # (m, 3, 2)
        tlo = tri_pts.min(axis=1)
        thi = tri_pts.max(axis=1)
        ilo = self._cell_index(tlo)
        ihi = self._cell_index(thi)
        # Bucket triangle ids by every cell their bbox covers.
        buckets: dict[int, list[int]] = {}
        for t in range(mesh.num_triangles):
            for cx in range(ilo[t, 0], ihi[t, 0] + 1):
                base = cx * n_cells
                for cy in range(ilo[t, 1], ihi[t, 1] + 1):
                    buckets.setdefault(base + cy, []).append(t)
        self._buckets = {
            cell: np.asarray(tris, dtype=np.int64)
            for cell, tris in buckets.items()
        }
        self._centroid_tree = cKDTree(mesh.triangle_centroids())

    def _cell_index(self, points: np.ndarray) -> np.ndarray:
        idx = ((points - self._lo) / self._cell).astype(np.int64)
        return np.clip(idx, 0, self._n - 1)

    def locate(
        self, points: np.ndarray, *, allow_fallback: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Locate every point; return ``(triangle_ids, barycentric)``.

        ``triangle_ids`` is ``(n,)`` int64; ``barycentric`` is ``(n, 3)``.
        Points inside the mesh get their containing triangle; points
        outside get the nearest-centroid triangle with extrapolated
        coordinates when ``allow_fallback`` (otherwise
        :class:`PointLocationError` is raised).
        """
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        n = len(points)
        tri_ids = np.full(n, -1, dtype=np.int64)
        bary = np.zeros((n, 3), dtype=np.float64)

        cells = self._cell_index(points)
        flat = cells[:, 0] * self._n + cells[:, 1]
        order = np.argsort(flat, kind="stable")
        mesh = self.mesh
        verts = mesh.vertices
        tris = mesh.triangles

        # Process points cell by cell so the barycentric solve is a single
        # vectorized (points-in-cell × candidates) computation.
        start = 0
        flat_sorted = flat[order]
        while start < n:
            end = start
            cell = flat_sorted[start]
            while end < n and flat_sorted[end] == cell:
                end += 1
            pidx = order[start:end]
            start = end
            cand = self._buckets.get(int(cell))
            if cand is None:
                continue
            p = points[pidx]  # (P, 2)
            tp = verts[tris[cand]]  # (C, 3, 2)
            w = _bary_batch(p, tp)  # (P, C, 3)
            inside = w.min(axis=2) >= -_INSIDE_EPS  # (P, C)
            has = inside.any(axis=1)
            first = np.argmax(inside, axis=1)
            hit = pidx[has]
            tri_ids[hit] = cand[first[has]]
            bary[hit] = w[has, first[has]]

        missing = np.flatnonzero(tri_ids < 0)
        if len(missing):
            if not allow_fallback:
                raise PointLocationError(
                    f"{len(missing)} point(s) outside the mesh"
                )
            _, nearest = self._centroid_tree.query(points[missing])
            nearest = np.atleast_1d(nearest).astype(np.int64)
            tri_ids[missing] = nearest
            bary[missing] = barycentric_coordinates(
                points[missing], verts[tris[nearest]]
            )

        if single:
            return tri_ids[:1], bary[:1]
        return tri_ids, bary


def _bary_batch(points: np.ndarray, tri_points: np.ndarray) -> np.ndarray:
    """Barycentric coords of each point w.r.t. each candidate triangle.

    ``points``: (P, 2); ``tri_points``: (C, 3, 2) → result (P, C, 3).
    """
    a = tri_points[:, 0]  # (C, 2)
    v0 = tri_points[:, 1] - a
    v1 = tri_points[:, 2] - a
    d00 = np.einsum("ij,ij->i", v0, v0)
    d01 = np.einsum("ij,ij->i", v0, v1)
    d11 = np.einsum("ij,ij->i", v1, v1)
    denom = d00 * d11 - d01 * d01
    safe = np.where(np.abs(denom) < 1e-300, 1.0, denom)
    v2 = points[:, None, :] - a[None, :, :]  # (P, C, 2)
    d20 = np.einsum("pcj,cj->pc", v2, v0)
    d21 = np.einsum("pcj,cj->pc", v2, v1)
    w1 = (d11 * d20 - d01 * d21) / safe
    w2 = (d00 * d21 - d01 * d20) / safe
    w0 = 1.0 - w1 - w2
    return np.stack([w0, w1, w2], axis=2)
