"""Field interpolation on triangular meshes.

Two consumers:

* analytics rasterization (:mod:`repro.analytics.raster`) samples a mesh
  field onto a regular pixel grid before blob detection, mirroring how the
  paper feeds unstructured XGC1 data to OpenCV;
* error metrics compare fields living on *different* levels by sampling
  both on a common grid.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.mesh.locate import TriangleLocator
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["interpolate_at_points", "interpolate_to_grid"]


def interpolate_at_points(
    mesh: TriangleMesh,
    field: np.ndarray,
    points: np.ndarray,
    *,
    locator: TriangleLocator | None = None,
    return_inside: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Linear (barycentric) interpolation of a per-vertex field at points.

    Points outside the mesh are linearly extrapolated from their nearest
    triangle (see :class:`~repro.mesh.locate.TriangleLocator`). With
    ``return_inside=True`` also returns a boolean mask of points whose
    barycentric coordinates are all non-negative (true interior points).
    """
    field = np.asarray(field, dtype=np.float64)
    if len(field) != mesh.num_vertices:
        raise MeshError(
            f"field has {len(field)} values for {mesh.num_vertices} vertices"
        )
    if locator is None:
        locator = TriangleLocator(mesh)
    tri_ids, bary = locator.locate(points)
    corners = field[mesh.triangles[tri_ids]]  # (n, 3)
    values = np.einsum("ij,ij->i", corners, bary)
    if return_inside:
        return values, bary.min(axis=1) >= -1e-6
    return values


def interpolate_to_grid(
    mesh: TriangleMesh,
    field: np.ndarray,
    shape: tuple[int, int],
    *,
    bounds: tuple[np.ndarray, np.ndarray] | None = None,
    locator: TriangleLocator | None = None,
    return_inside: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Sample a mesh field onto a regular ``(ny, nx)`` grid.

    Returns an array indexed ``[row, col]`` with row 0 at the *minimum* y
    (image convention is applied by the analytics rasterizer). ``bounds``
    defaults to the mesh bounding box; pass explicit bounds to compare
    fields across levels on identical grids. ``return_inside=True``
    additionally returns the interior-pixel mask.
    """
    ny, nx = shape
    if ny < 2 or nx < 2:
        raise MeshError("grid shape must be at least 2x2")
    if bounds is None:
        lo, hi = mesh.bounding_box()
    else:
        lo, hi = (np.asarray(b, dtype=np.float64) for b in bounds)
    xs = np.linspace(lo[0], hi[0], nx)
    ys = np.linspace(lo[1], hi[1], ny)
    gx, gy = np.meshgrid(xs, ys)  # (ny, nx)
    pts = np.column_stack([gx.ravel(), gy.ravel()])
    values, inside = interpolate_at_points(
        mesh, field, pts, locator=locator, return_inside=True
    )
    if return_inside:
        return values.reshape(ny, nx), inside.reshape(ny, nx)
    return values.reshape(ny, nx)
