"""Mesh decimation by shortest-edge collapse (paper Algorithm 1).

The paper decimates level *l* into level *l+1* by repeatedly collapsing
the shortest edge: the edge's endpoints are removed, a new vertex is
placed at their midpoint (``NewVertex(Vi, Vj) = (Vi + Vj)/2``), the data
value at the new vertex is the mean of the endpoint values
(``NewData(Li, Lj)``), and new edges connecting the merged vertex to the
old neighborhoods are (re)inserted into the priority queue. Collapsing
stops once the requested decimation ratio ``d = |V^l| / |V^{l+1}|`` is
reached.

This implementation adds two standard robustness guards that the paper's
pseudocode leaves implicit:

* the *link condition* — an interior edge is collapsible only when its
  endpoints share exactly the two opposite vertices of its incident
  triangles (a boundary edge: exactly one). Violations would create
  non-manifold fins; such edges are retried later with an inflated
  priority rather than corrupting the mesh.
* duplicate-triangle suppression after index remapping.

Decimation is local (no cross-rank communication), matching the paper's
observation that refactoring is embarrassingly parallel; see
:mod:`repro.perfmodel` for how per-core cost is scaled to job sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.errors import DecimationError
from repro.mesh.lineage import CollapseLineage
from repro.mesh.priority_queue import EdgePriorityQueue, edge_key
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace

__all__ = ["decimate", "DecimationResult", "make_priority", "KERNELS"]

#: Registered decimation kernels (see also :mod:`repro.mesh.batch_collapse`).
KERNELS = ("serial", "batched")

# An edge skipped this many times for link-condition violations is dropped
# permanently; its neighborhood is evidently stuck non-manifold.
_MAX_SKIPS = 8
# Multiplier applied to a skipped edge's priority so it is retried after
# its neighborhood has had a chance to change.
_SKIP_PENALTY = 1.5

PriorityFn = Callable[[int, int], float]


@dataclass
class DecimationResult:
    """Outcome of one decimation pass (level l → level l+1).

    Attributes
    ----------
    mesh:
        The decimated, compacted mesh.
    fields:
        Decimated per-vertex fields, aligned with ``mesh.vertices``.
    achieved_ratio:
        ``|V^l| / |V^{l+1}|`` actually reached.
    collapses:
        Number of edge collapses performed (== vertices removed).
    skipped:
        Number of pops rejected by the link condition.
    exhausted:
        True when the queue ran dry before the target ratio was reached.
    lineage:
        The replayable collapse record (present when the pass ran with
        ``record_lineage=True``); see
        :class:`~repro.mesh.lineage.CollapseLineage`.
    """

    mesh: TriangleMesh
    fields: dict[str, np.ndarray]
    achieved_ratio: float
    collapses: int
    skipped: int
    exhausted: bool = False
    queue_stats: dict[str, int] = field(default_factory=dict)
    lineage: CollapseLineage | None = None


def make_priority(
    name: str,
    pos: dict[int, np.ndarray],
    data: dict[str, dict[int, float]],
    data_scale: float,
) -> PriorityFn:
    """Build a named edge-priority function.

    ``"length"`` is the paper's choice (shortest edge first). The paper
    notes that "choosing the priority of an edge is application dependent
    and is left for future study"; ``"data_aware"`` is our ablation: edge
    length inflated by the normalized field jump across the edge, so edges
    crossing sharp features are collapsed last.
    """
    if name == "length":

        def length_priority(u: int, v: int) -> float:
            d = pos[u] - pos[v]
            return float(np.hypot(d[0], d[1]))

        return length_priority

    if name == "data_aware":
        scale = data_scale if data_scale > 0 else 1.0

        def data_priority(u: int, v: int) -> float:
            d = pos[u] - pos[v]
            length = float(np.hypot(d[0], d[1]))
            jump = 0.0
            for values in data.values():
                jump = max(jump, abs(values[u] - values[v]) / scale)
            return length * (1.0 + jump)

        return data_priority

    raise DecimationError(f"unknown priority strategy: {name!r}")


def decimate(
    mesh: TriangleMesh,
    fields: Mapping[str, np.ndarray] | np.ndarray | None = None,
    ratio: float = 2.0,
    *,
    priority: str | PriorityFn = "length",
    placement: str = "midpoint",
    strict: bool = False,
    method: str = "serial",
    record_lineage: bool = False,
) -> DecimationResult:
    """Decimate ``mesh`` by edge collapse until ``|V'| <= |V| / ratio``.

    Parameters
    ----------
    mesh:
        Input level-*l* mesh.
    fields:
        Per-vertex data: a single array, a name→array mapping, or None.
    ratio:
        Target decimation ratio between this level and the next,
        ``d = |V^l| / |V^{l+1}|`` (the paper uses 2 per step).
    priority:
        ``"length"`` (paper default), ``"data_aware"``, or a callable
        ``(u, v) -> float``.
    placement:
        Where the merged vertex goes: ``"midpoint"`` (the paper's
        ``NewVertex = (Vi + Vj)/2``) or ``"endpoint"`` — keep the first
        endpoint's position and value, so the coarse vertex set is a
        strict subset of the fine one (useful when downstream tools
        require original sample locations).
    strict:
        When true, raise :class:`DecimationError` if the queue is
        exhausted before the target ratio; otherwise return what was
        achieved with ``exhausted=True``.
    method:
        ``"serial"`` — Algorithm 1's heap loop (this function);
        ``"batched"`` — the round-based vectorized kernel
        (:func:`repro.mesh.batch_collapse.decimate_batched`).
    record_lineage:
        When true, the result carries a
        :class:`~repro.mesh.lineage.CollapseLineage` that replays the
        collapse sequence on new fields bit-identically.

    Notes
    -----
    Vertex/field arrays in the result are compacted (indices renumbered);
    the mapping from fine to coarse is *positional* and recovered later by
    point location (see :mod:`repro.core.mapping`), exactly as the paper
    stores the vertex→triangle mapping in ADIOS metadata.
    """
    if method not in KERNELS:
        raise DecimationError(
            f"unknown decimation method {method!r}; expected one of {KERNELS}"
        )
    if method == "batched":
        from repro.mesh.batch_collapse import decimate_batched

        return decimate_batched(
            mesh, fields, ratio, priority=priority, placement=placement,
            strict=strict, record_lineage=record_lineage,
        )
    if ratio < 1.0:
        raise DecimationError(f"decimation ratio must be >= 1, got {ratio}")
    if placement not in ("midpoint", "endpoint"):
        raise DecimationError(f"unknown placement {placement!r}")
    if isinstance(fields, np.ndarray):
        field_map: dict[str, np.ndarray] = {"data": fields}
    elif fields is None:
        field_map = {}
    else:
        field_map = dict(fields)
    for name, arr in field_map.items():
        if len(arr) != mesh.num_vertices:
            raise DecimationError(
                f"field {name!r} has {len(arr)} values for "
                f"{mesh.num_vertices} vertices"
            )

    n0 = mesh.num_vertices
    target_vertices = max(3, int(np.ceil(n0 / ratio)))
    target_cuts = n0 - target_vertices

    # --- dynamic mesh state ------------------------------------------------
    pos: dict[int, np.ndarray] = {i: mesh.vertices[i] for i in range(n0)}
    data: dict[str, dict[int, float]] = {
        name: dict(enumerate(np.asarray(arr, dtype=np.float64)))
        for name, arr in field_map.items()
    }
    nbr: dict[int, set[int]] = {i: set() for i in range(n0)}
    tri_table: dict[int, tuple[int, int, int]] = {
        t: tuple(tri) for t, tri in enumerate(mesh.triangles)
    }
    vert_tris: dict[int, set[int]] = {i: set() for i in range(n0)}
    for t, (a, b, c) in tri_table.items():
        nbr[a].update((b, c))
        nbr[b].update((a, c))
        nbr[c].update((a, b))
        vert_tris[a].add(t)
        vert_tris[b].add(t)
        vert_tris[c].add(t)

    data_scale = 0.0
    for arr in field_map.values():
        arr = np.asarray(arr, dtype=np.float64)
        if arr.size:
            data_scale = max(data_scale, float(arr.max() - arr.min()))
    if callable(priority):
        prio_fn = priority
    else:
        prio_fn = make_priority(priority, pos, data, data_scale)

    queue = EdgePriorityQueue()
    for u, v in mesh.edges:
        queue.push(int(u), int(v), prio_fn(int(u), int(v)))

    next_vertex = n0
    next_tri = len(tri_table)
    vertices_cut = 0
    skipped = 0
    skip_count: dict[tuple[int, int], int] = {}
    exhausted = False
    merges: list[tuple[int, int, int]] = []

    # Paper's loop condition: continue while
    #   1 - vertices_cut / |V^{l+1}| < 1 - 1/d   ⇔   vertices remaining >
    #   |V^l|/d. We use the equivalent integer form below.
    while vertices_cut < target_cuts:
        try:
            (u, v), _ = queue.pop()
        except IndexError:
            exhausted = True
            break
        if u not in nbr or v not in nbr or v not in nbr[u]:
            continue  # stale: an endpoint was already merged away

        shared_tris = vert_tris[u] & vert_tris[v]
        common_nbrs = nbr[u] & nbr[v]
        # Link condition: common neighbors must be exactly the apexes of
        # the triangles sharing edge (u, v).
        if len(common_nbrs) != len(shared_tris):
            skipped += 1
            key = edge_key(u, v)
            skip_count[key] = skip_count.get(key, 0) + 1
            if skip_count[key] < _MAX_SKIPS:
                queue.push(u, v, prio_fn(u, v) * _SKIP_PENALTY ** skip_count[key])
            continue

        # --- perform the collapse -----------------------------------------
        k = next_vertex
        next_vertex += 1
        if record_lineage:
            merges.append((u, v, k))
        if placement == "midpoint":
            pos[k] = (pos[u] + pos[v]) / 2.0  # NewVertex: midpoint
            for name in data:
                data[name][k] = (data[name][u] + data[name][v]) / 2.0  # NewData
        else:  # endpoint: subset placement keeps u's sample
            pos[k] = pos[u]
            for name in data:
                data[name][k] = data[name][u]

        # Remove triangles incident to the collapsed edge.
        for t in shared_tris:
            a, b, c = tri_table.pop(t)
            for w in (a, b, c):
                vert_tris[w].discard(t)

        # Remap surviving triangles of u and v onto k.
        affected = vert_tris[u] | vert_tris[v]
        existing = {
            tuple(sorted(tri))
            for w in (nbr[u] | nbr[v])
            if w in vert_tris
            for t2 in vert_tris[w]
            if (tri := tri_table.get(t2)) is not None
        }
        vert_tris[k] = set()
        for t in affected:
            a, b, c = tri_table.pop(t)
            for w in (a, b, c):
                vert_tris[w].discard(t)
            tri = tuple(k if w in (u, v) else w for w in (a, b, c))
            canon = tuple(sorted(tri))
            if len(set(tri)) < 3 or canon in existing:
                continue
            existing.add(canon)
            t_new = next_tri
            next_tri += 1
            tri_table[t_new] = tri
            for w in tri:
                vert_tris[w].add(t_new)

        # Rewire adjacency and the queue.
        new_nbrs = (nbr[u] | nbr[v]) - {u, v}
        for w in nbr[u]:
            nbr[w].discard(u)
            queue.discard(u, w)
        for w in nbr[v]:
            nbr[w].discard(v)
            queue.discard(v, w)
        del nbr[u], nbr[v], vert_tris[u], vert_tris[v], pos[u], pos[v]
        for name in data:
            del data[name][u]
            del data[name][v]
        nbr[k] = new_nbrs
        for w in new_nbrs:
            nbr[w].add(k)
            queue.push(k, w, prio_fn(k, w))

        vertices_cut += 1

    if exhausted and strict:
        raise DecimationError(
            f"queue exhausted after {vertices_cut}/{target_cuts} collapses"
        )

    # --- compact into arrays ------------------------------------------------
    alive = sorted(nbr.keys())
    remap = {old: new for new, old in enumerate(alive)}
    vertices = np.array([pos[i] for i in alive], dtype=np.float64)
    triangles = np.array(
        [[remap[a], remap[b], remap[c]] for a, b, c in tri_table.values()],
        dtype=np.int64,
    ).reshape(-1, 3)
    out_fields = {
        name: np.array([values[i] for i in alive], dtype=np.float64)
        for name, values in data.items()
    }
    out_mesh = TriangleMesh(vertices, triangles, validate=False)
    achieved = n0 / max(1, out_mesh.num_vertices)
    lineage = None
    if record_lineage:
        lineage = CollapseLineage.from_sequence(
            n0, merges, np.asarray(alive, dtype=np.int64),
            placement=placement,
        )
    _record_queue_metrics(queue.stats, skipped)
    return DecimationResult(
        mesh=out_mesh,
        fields=out_fields,
        achieved_ratio=achieved,
        collapses=vertices_cut,
        skipped=skipped,
        exhausted=exhausted,
        queue_stats=queue.stats,
        lineage=lineage,
    )


def _record_queue_metrics(stats: Mapping[str, int], skipped: int) -> None:
    """Surface queue churn on the active tracer's metrics registry.

    ``repro trace`` (and any :func:`repro.obs.trace_session` wrapped
    around an encode) then reports heap traffic next to the span
    timings; when no tracer is installed this is one global read.
    """
    tracer = trace.get_tracer()
    if tracer is None:
        return
    metrics = tracer.metrics
    metrics.counter("decimate.queue.pushes").inc(stats["pushes"])
    metrics.counter("decimate.queue.stale_pops").inc(stats["stale_pops"])
    metrics.counter("decimate.queue.link_skips").inc(skipped)
    metrics.gauge("decimate.queue.heap_size").set(stats["heap_size"])
