"""Mesh (de)serialization.

Two formats:

* ``.npz`` — compact binary, used by the pipelines and tests;
* ``.off`` — the classic ASCII Object File Format, for interoperability
  with external viewers (vertices get z=0).

Per-vertex fields can ride along in the ``.npz`` container under a
``field:`` prefix so a (mesh, fields) pair round-trips in one file.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import MeshError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = [
    "save_mesh",
    "load_mesh",
    "save_off",
    "load_off",
    "mesh_to_bytes",
    "mesh_from_bytes",
]

_FIELD_PREFIX = "field:"
_BLOB_MAGIC = b"CMSH"


def mesh_to_bytes(mesh: TriangleMesh) -> bytes:
    """Serialize a mesh to a compact deflated byte payload.

    Used to store per-level mesh geometry inside BP subfiles (geometry is
    kept lossless so point location stays consistent across write/read).
    """
    import struct
    import zlib

    header = _BLOB_MAGIC + struct.pack(
        "<QQ", mesh.num_vertices, mesh.num_triangles
    )
    body = mesh.vertices.astype("<f8").tobytes() + mesh.triangles.astype(
        "<i8"
    ).tobytes()
    return header + zlib.compress(body, 6)


def mesh_from_bytes(blob: bytes) -> TriangleMesh:
    """Inverse of :func:`mesh_to_bytes`."""
    import struct
    import zlib

    if len(blob) < 20 or blob[:4] != _BLOB_MAGIC:
        raise MeshError("not a mesh payload")
    nv, nt = struct.unpack_from("<QQ", blob, 4)
    body = zlib.decompress(blob[20:])
    verts = np.frombuffer(body, dtype="<f8", count=nv * 2).reshape(nv, 2)
    tris = np.frombuffer(
        body, dtype="<i8", count=nt * 3, offset=nv * 2 * 8
    ).reshape(nt, 3)
    return TriangleMesh(verts.copy(), tris.copy(), validate=False)


def save_mesh(
    path: str | Path,
    mesh: TriangleMesh,
    fields: dict[str, np.ndarray] | None = None,
) -> None:
    """Write mesh (and optional per-vertex fields) to an ``.npz`` file."""
    payload: dict[str, np.ndarray] = {
        "vertices": mesh.vertices,
        "triangles": mesh.triangles,
    }
    for name, arr in (fields or {}).items():
        arr = np.asarray(arr)
        if len(arr) != mesh.num_vertices:
            raise MeshError(
                f"field {name!r} has {len(arr)} values for "
                f"{mesh.num_vertices} vertices"
            )
        payload[_FIELD_PREFIX + name] = arr
    np.savez_compressed(str(path), **payload)


def load_mesh(path: str | Path) -> tuple[TriangleMesh, dict[str, np.ndarray]]:
    """Load a mesh saved by :func:`save_mesh`; returns ``(mesh, fields)``."""
    with np.load(str(path)) as data:
        if "vertices" not in data or "triangles" not in data:
            raise MeshError(f"{path}: not a mesh archive")
        mesh = TriangleMesh(data["vertices"], data["triangles"], validate=False)
        fields = {
            key[len(_FIELD_PREFIX) :]: np.array(data[key])
            for key in data.files
            if key.startswith(_FIELD_PREFIX)
        }
    return mesh, fields


def save_off(path: str | Path, mesh: TriangleMesh) -> None:
    """Write the mesh as ASCII OFF (z = 0)."""
    lines = ["OFF", f"{mesh.num_vertices} {mesh.num_triangles} 0"]
    for x, y in mesh.vertices:
        lines.append(f"{x:.17g} {y:.17g} 0")
    for a, b, c in mesh.triangles:
        lines.append(f"3 {a} {b} {c}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def load_off(path: str | Path) -> TriangleMesh:
    """Read an ASCII OFF file written by :func:`save_off` (z ignored)."""
    tokens = Path(path).read_text(encoding="ascii").split()
    if not tokens or tokens[0] != "OFF":
        raise MeshError(f"{path}: missing OFF header")
    idx = 1
    nv, nf = int(tokens[idx]), int(tokens[idx + 1])
    idx += 3  # skip edge count
    verts = np.empty((nv, 2), dtype=np.float64)
    for i in range(nv):
        verts[i, 0] = float(tokens[idx])
        verts[i, 1] = float(tokens[idx + 1])
        idx += 3  # skip z
    tris = np.empty((nf, 3), dtype=np.int64)
    for i in range(nf):
        if tokens[idx] != "3":
            raise MeshError(f"{path}: only triangles are supported")
        tris[i] = (int(tokens[idx + 1]), int(tokens[idx + 2]), int(tokens[idx + 3]))
        idx += 4
    return TriangleMesh(verts, tris, validate=False)
