"""Collapse lineage: the reusable record of one decimation pass.

Algorithm 1's output is fully determined by the *collapse sequence* —
which vertex pairs merged, in what order, and which vertices survived.
Once that sequence is known for a mesh, coarsening any per-vertex field
on the same mesh needs no priority queue and no connectivity at all:
every ``NewData(L_i, L_j) = (L_i + L_j)/2`` mean is a gather/compute/
scatter over three index arrays. :class:`CollapseLineage` stores exactly
that, grouped into *generations* of mutually independent merges so the
replay is a handful of vectorized statements per generation rather than
one Python iteration per collapse.

Replay is bit-identical to re-running the collapse sequence: each merge
evaluates the same IEEE-754 expression on the same operands, and merges
within a generation touch disjoint ids, so vectorized evaluation order
cannot change any result. This is what lets
:class:`~repro.core.decimation_plan.DecimationPlan` decimate a campaign's
geometry once and replay it per timestep/variable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecimationError

__all__ = ["CollapseLineage"]

_PLACEMENTS = ("midpoint", "endpoint")


@dataclass
class CollapseLineage:
    """Replayable record of one decimation pass (level l → l+1).

    Ids live in an *extended* space: fine vertices keep their indices
    ``0 .. n_fine−1``; the k-th merge creates id ``n_fine + k``.

    Attributes
    ----------
    n_fine:
        Vertex count of the input (fine) mesh.
    src_u / src_v / dst:
        ``(k,)`` int64 arrays: merge ``i`` replaced ``src_u[i]`` and
        ``src_v[i]`` with ``dst[i]``.
    group_offsets:
        ``(g+1,)`` int64 CSR offsets splitting the merges into
        dependency-free groups: every source id of group ``j`` was
        produced before group ``j`` started, and no id appears twice
        within a group.
    alive_ids:
        ``(n_coarse,)`` extended ids of the surviving vertices, in the
        coarse mesh's output order.
    placement:
        ``"midpoint"`` (merged value is the endpoint mean) or
        ``"endpoint"`` (keeps ``src_u``'s value).
    """

    n_fine: int
    src_u: np.ndarray
    src_v: np.ndarray
    dst: np.ndarray
    group_offsets: np.ndarray
    alive_ids: np.ndarray
    placement: str = "midpoint"

    def __post_init__(self) -> None:
        self.src_u = np.ascontiguousarray(self.src_u, dtype=np.int64)
        self.src_v = np.ascontiguousarray(self.src_v, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        self.group_offsets = np.ascontiguousarray(
            self.group_offsets, dtype=np.int64
        )
        self.alive_ids = np.ascontiguousarray(self.alive_ids, dtype=np.int64)
        if not (len(self.src_u) == len(self.src_v) == len(self.dst)):
            raise DecimationError("merge arrays must share one length")
        if self.placement not in _PLACEMENTS:
            raise DecimationError(f"unknown placement {self.placement!r}")
        if len(self.group_offsets) < 1 or self.group_offsets[0] != 0 or (
            self.group_offsets[-1] != len(self.dst)
        ):
            raise DecimationError("group_offsets must span all merges")

    # ------------------------------------------------------------------
    @property
    def num_merges(self) -> int:
        return len(self.dst)

    @property
    def n_coarse(self) -> int:
        return len(self.alive_ids)

    @property
    def num_groups(self) -> int:
        return len(self.group_offsets) - 1

    # ------------------------------------------------------------------
    @classmethod
    def from_sequence(
        cls,
        n_fine: int,
        merges: list[tuple[int, int, int]],
        alive_ids: np.ndarray,
        *,
        placement: str = "midpoint",
    ) -> "CollapseLineage":
        """Build a lineage from an ordered ``(u, v, dst)`` sequence.

        Used by the serial kernel: the heap loop emits one merge per
        collapse; here they are re-grouped by *generation* (a merge's
        generation is one past its deepest source) so the replay can go
        wide. Regrouping is sound because every id is merged away at most
        once — dependencies only flow through ``dst`` chains, which the
        generation order respects.
        """
        k = len(merges)
        if k == 0:
            return cls(
                n_fine=n_fine,
                src_u=np.empty(0, np.int64),
                src_v=np.empty(0, np.int64),
                dst=np.empty(0, np.int64),
                group_offsets=np.zeros(1, np.int64),
                alive_ids=alive_ids,
                placement=placement,
            )
        src_u = np.fromiter((m[0] for m in merges), np.int64, k)
        src_v = np.fromiter((m[1] for m in merges), np.int64, k)
        dst = np.fromiter((m[2] for m in merges), np.int64, k)
        gen = np.zeros(int(dst.max()) + 1, dtype=np.int64)
        merge_gen = np.empty(k, dtype=np.int64)
        for i in range(k):
            g = max(gen[src_u[i]], gen[src_v[i]]) + 1
            gen[dst[i]] = g
            merge_gen[i] = g
        order = np.argsort(merge_gen, kind="stable")
        counts = np.bincount(merge_gen[order] - 1)
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            n_fine=n_fine,
            src_u=src_u[order],
            src_v=src_v[order],
            dst=dst[order],
            group_offsets=offsets,
            alive_ids=alive_ids,
            placement=placement,
        )

    # ------------------------------------------------------------------
    def replay(
        self, field: np.ndarray, *, scratch: np.ndarray | None = None
    ) -> np.ndarray:
        """Coarsen ``field`` by replaying the collapse sequence.

        ``field`` is ``(n_fine,)`` or ``(planes, n_fine)``; the plane
        axis broadcasts. The result is aligned with the coarse mesh's
        vertex order and bit-identical to what the recording decimation
        pass produced for the same input values. ``scratch`` may supply
        the extended-id working buffer (shape ``(..., n_fine + merges)``)
        so streaming encoders can replay many fields without per-call
        allocation; the output array itself is always fresh (it becomes
        the next level's input).
        """
        field = np.asarray(field, dtype=np.float64)
        if field.shape[-1] != self.n_fine:
            raise DecimationError(
                f"field has {field.shape[-1]} values; lineage expects "
                f"{self.n_fine}"
            )
        total = self.n_fine + self.num_merges
        want = field.shape[:-1] + (total,)
        if scratch is not None and (
            scratch.shape != want or scratch.dtype != np.float64
        ):
            raise DecimationError(
                f"scratch buffer {scratch.shape}/{scratch.dtype} does not "
                f"match replay working set {want}/float64"
            )
        vals = scratch if scratch is not None else np.empty(
            want, dtype=np.float64
        )
        vals[..., : self.n_fine] = field
        midpoint = self.placement == "midpoint"
        for g in range(self.num_groups):
            sl = slice(self.group_offsets[g], self.group_offsets[g + 1])
            if midpoint:
                vals[..., self.dst[sl]] = (
                    vals[..., self.src_u[sl]] + vals[..., self.src_v[sl]]
                ) / 2.0
            else:
                vals[..., self.dst[sl]] = vals[..., self.src_u[sl]]
        return vals[..., self.alive_ids]

    # ------------------------------------------------------------------
    def to_arrays(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Flat array view for npz-style serialization."""
        return {
            f"{prefix}src_u": self.src_u,
            f"{prefix}src_v": self.src_v,
            f"{prefix}dst": self.dst,
            f"{prefix}group_offsets": self.group_offsets,
            f"{prefix}alive_ids": self.alive_ids,
            f"{prefix}meta": np.array(
                [self.n_fine, _PLACEMENTS.index(self.placement)], np.int64
            ),
        }

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, np.ndarray], prefix: str = ""
    ) -> "CollapseLineage":
        meta = arrays[f"{prefix}meta"]
        return cls(
            n_fine=int(meta[0]),
            src_u=arrays[f"{prefix}src_u"],
            src_v=arrays[f"{prefix}src_v"],
            dst=arrays[f"{prefix}dst"],
            group_offsets=arrays[f"{prefix}group_offsets"],
            alive_ids=arrays[f"{prefix}alive_ids"],
            placement=_PLACEMENTS[int(meta[1])],
        )
