"""Domain partitioning for parallel refactoring.

Paper §III-C1: "the decimation is done locally without requiring
communication with other processors, and therefore is embarrassingly
parallel." In production each rank owns a patch of the global mesh and
refactors it independently. This module builds those patches:

* vertices are binned on a spatial grid and each bin becomes a
  partition;
* a triangle is assigned to the partition owning its first vertex, so
  partitions tile the triangle set disjointly;
* each partition's local mesh contains all vertices its triangles
  touch; vertices it *owns* (bin members) are flagged, so a global
  field can be reassembled exactly from per-partition results (halo
  copies are ignored on gather).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeshError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["MeshPartition", "partition_mesh", "gather_field"]


@dataclass
class MeshPartition:
    """One rank's patch of a global mesh.

    Attributes
    ----------
    index:
        Partition id.
    mesh:
        The local (compacted) triangle mesh.
    global_vertices:
        ``global_vertices[local] == global`` vertex index.
    owned:
        Local boolean mask; True where this partition owns the vertex
        (each global vertex is owned by exactly one partition).
    """

    index: int
    mesh: TriangleMesh
    global_vertices: np.ndarray
    owned: np.ndarray

    @property
    def num_owned(self) -> int:
        return int(self.owned.sum())

    def restrict(self, field: np.ndarray) -> np.ndarray:
        """Slice a global per-vertex field down to this partition."""
        field = np.asarray(field)
        return field[..., self.global_vertices]


def partition_mesh(mesh: TriangleMesh, parts: int) -> list[MeshPartition]:
    """Split a mesh into ≈``parts`` spatially compact patches.

    Empty spatial bins are dropped, so fewer partitions may be returned;
    every triangle appears in exactly one partition and every vertex is
    owned by exactly one.
    """
    if parts < 1:
        raise MeshError("parts must be >= 1")
    if mesh.num_triangles == 0:
        raise MeshError("cannot partition an empty mesh")

    g = max(1, int(np.ceil(np.sqrt(parts))))
    lo, hi = mesh.bounding_box()
    span = np.maximum(hi - lo, 1e-12)
    cells = np.clip(
        ((mesh.vertices - lo) / span * g).astype(np.int64), 0, g - 1
    )
    owner_bin = cells[:, 0] * g + cells[:, 1]  # per-vertex owner bin

    tri_bin = owner_bin[mesh.triangles[:, 0]]  # triangle → owner bin
    partitions: list[MeshPartition] = []
    for index, bin_id in enumerate(np.unique(tri_bin)):
        tri_ids = np.flatnonzero(tri_bin == bin_id)
        tris = mesh.triangles[tri_ids]
        local_vertices = np.unique(tris)
        remap = np.full(mesh.num_vertices, -1, dtype=np.int64)
        remap[local_vertices] = np.arange(len(local_vertices))
        local_mesh = TriangleMesh(
            mesh.vertices[local_vertices], remap[tris], validate=False
        )
        owned = owner_bin[local_vertices] == bin_id
        partitions.append(
            MeshPartition(
                index=index,
                mesh=local_mesh,
                global_vertices=local_vertices,
                owned=owned,
            )
        )

    # Vertices in bins that own no triangle (possible for isolated bins)
    # would be orphaned; assign each to the first partition that has it.
    covered = np.zeros(mesh.num_vertices, dtype=bool)
    for p in partitions:
        newly = p.global_vertices[p.owned]
        covered[newly] = True
    missing = np.flatnonzero(~covered)
    if len(missing):
        missing_set = set(int(m) for m in missing)
        for p in partitions:
            if not missing_set:
                break
            for local, gv in enumerate(p.global_vertices):
                if int(gv) in missing_set:
                    p.owned[local] = True
                    missing_set.discard(int(gv))
        if missing_set:  # pragma: no cover - defensive
            raise MeshError(f"{len(missing_set)} vertices not covered")
    return partitions


def gather_field(
    partitions: list[MeshPartition],
    local_fields: list[np.ndarray],
    num_global: int,
) -> np.ndarray:
    """Reassemble a global field from per-partition locals.

    Only owned entries contribute; halo copies are discarded. Every
    global vertex must be owned by exactly one partition (guaranteed by
    :func:`partition_mesh`).
    """
    if len(partitions) != len(local_fields):
        raise MeshError("partitions and fields length mismatch")
    sample = np.asarray(local_fields[0])
    shape = sample.shape[:-1] + (num_global,)
    out = np.zeros(shape, dtype=np.float64)
    filled = np.zeros(num_global, dtype=bool)
    for p, local in zip(partitions, local_fields):
        local = np.asarray(local, dtype=np.float64)
        if local.shape[-1] != p.mesh.num_vertices:
            raise MeshError(
                f"partition {p.index}: field has {local.shape[-1]} values "
                f"for {p.mesh.num_vertices} vertices"
            )
        gv = p.global_vertices[p.owned]
        out[..., gv] = local[..., p.owned]
        filled[gv] = True
    if not filled.all():
        raise MeshError(f"{int((~filled).sum())} global vertices unfilled")
    return out
