"""Vertex orderings that improve 1-D compression locality.

The codecs consume per-vertex values as a 1-D stream, so their
decorrelation (block transforms, neighbor prediction) only sees values
that are *adjacent in storage order*. Mesh generators emit orders with
varying spatial coherence; a connectivity-aware reordering makes
storage neighbors mesh neighbors, which measurably improves ZFP-/SZ-
style ratios on the same data (see
``benchmarks/test_ablation_ordering.py``).

Orderings:

* ``bfs`` — breadth-first over the vertex adjacency from a boundary
  (or minimum-degree) seed; the classic Cuthill–McKee traversal.
* ``rcm`` — reverse Cuthill–McKee (BFS reversed; the usual bandwidth
  minimizer).
* ``spatial`` — Morton-style bit-interleaved sort of quantized
  coordinates; cheap, geometry-only.

All return a permutation ``perm`` with ``new_field = field[perm]``;
``inverse_permutation(perm)`` maps back.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["vertex_ordering", "inverse_permutation"]


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``inv`` such that ``field[perm][inv] == field``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=np.int64)
    return inv


def _bfs_order(mesh: TriangleMesh) -> np.ndarray:
    indptr, indices = mesh.vertex_adjacency()
    n = mesh.num_vertices
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # Start from a minimum-degree vertex; repeat per connected component.
    candidates = np.argsort(degree, kind="stable")
    for seed in candidates:
        if visited[seed]:
            continue
        queue = [int(seed)]
        visited[seed] = True
        while queue:
            next_queue: list[int] = []
            for u in queue:
                order[pos] = u
                pos += 1
                nbrs = indices[indptr[u] : indptr[u + 1]]
                # Visit neighbors in increasing-degree order (CM rule).
                nbrs = nbrs[np.argsort(degree[nbrs], kind="stable")]
                for w in nbrs:
                    if not visited[w]:
                        visited[w] = True
                        next_queue.append(int(w))
            queue = next_queue
    return order


def _morton_order(mesh: TriangleMesh, bits: int = 16) -> np.ndarray:
    lo, hi = mesh.bounding_box()
    span = np.maximum(hi - lo, 1e-300)
    q = ((mesh.vertices - lo) / span * (2**bits - 1)).astype(np.uint64)
    code = np.zeros(mesh.num_vertices, dtype=np.uint64)
    for b in range(bits):
        bit = np.uint64(1) << np.uint64(b)
        code |= ((q[:, 0] & bit) != 0).astype(np.uint64) << np.uint64(2 * b)
        code |= ((q[:, 1] & bit) != 0).astype(np.uint64) << np.uint64(2 * b + 1)
    return np.argsort(code, kind="stable").astype(np.int64)


def vertex_ordering(mesh: TriangleMesh, method: str = "rcm") -> np.ndarray:
    """Compute a compression-friendly vertex permutation.

    Returns ``perm`` (new position → old vertex index).
    """
    if mesh.num_vertices == 0:
        return np.zeros(0, dtype=np.int64)
    if method == "identity":
        return np.arange(mesh.num_vertices, dtype=np.int64)
    if method == "bfs":
        return _bfs_order(mesh)
    if method == "rcm":
        return _bfs_order(mesh)[::-1].copy()
    if method == "spatial":
        return _morton_order(mesh)
    raise MeshError(f"unknown ordering {method!r}")
