"""Synthetic unstructured-mesh builders.

The paper evaluates on three triangular meshes: an XGC1 poloidal plane
(toroidal cross-section ⇒ annulus-like), a GenASiS slice (disk), and a
CFD surface mesh around a jet nose (rectangle with a body cut out). These
builders produce meshes of matching topology and size. All of them return
:class:`~repro.mesh.triangle_mesh.TriangleMesh` and accept a ``seed`` so
datasets are reproducible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.spatial import Delaunay

from repro.errors import MeshError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = [
    "structured_rectangle",
    "delaunay_from_points",
    "disk",
    "annulus",
    "rectangle_with_cutout",
    "sunflower_points",
]


def structured_rectangle(
    nx: int,
    ny: int,
    *,
    width: float = 1.0,
    height: float = 1.0,
    jitter: float = 0.0,
    seed: int | None = None,
) -> TriangleMesh:
    """Triangulated ``nx × ny`` vertex grid; each quad split into 2 triangles.

    ``jitter`` perturbs interior vertices by up to that fraction of the
    grid spacing, producing an unstructured-looking but valid mesh.
    """
    if nx < 2 or ny < 2:
        raise MeshError("structured_rectangle needs nx, ny >= 2")
    xs = np.linspace(0.0, width, nx)
    ys = np.linspace(0.0, height, ny)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    vertices = np.column_stack([gx.ravel(), gy.ravel()])
    if jitter > 0:
        rng = np.random.default_rng(seed)
        dx = width / (nx - 1)
        dy = height / (ny - 1)
        interior = (
            (vertices[:, 0] > 0)
            & (vertices[:, 0] < width)
            & (vertices[:, 1] > 0)
            & (vertices[:, 1] < height)
        )
        noise = rng.uniform(-jitter, jitter, size=(len(vertices), 2))
        noise *= np.array([dx, dy]) * 0.49
        vertices[interior] += noise[interior]

    # Quad (i, j) has corners idx(i,j), idx(i+1,j), idx(i,j+1), idx(i+1,j+1).
    i, j = np.meshgrid(np.arange(nx - 1), np.arange(ny - 1), indexing="ij")
    v00 = (i * ny + j).ravel()
    v10 = ((i + 1) * ny + j).ravel()
    v01 = (i * ny + j + 1).ravel()
    v11 = ((i + 1) * ny + j + 1).ravel()
    tris = np.concatenate(
        [
            np.column_stack([v00, v10, v11]),
            np.column_stack([v00, v11, v01]),
        ]
    )
    return TriangleMesh(vertices, tris, validate=False)


def delaunay_from_points(points: np.ndarray) -> TriangleMesh:
    """Delaunay-triangulate a 2-D point cloud."""
    points = np.asarray(points, dtype=np.float64)
    if len(points) < 3:
        raise MeshError("need at least 3 points to triangulate")
    tri = Delaunay(points)
    return TriangleMesh(points, tri.simplices.astype(np.int64), validate=False)


def sunflower_points(
    n: int, radius: float = 1.0, center: tuple[float, float] = (0.0, 0.0)
) -> np.ndarray:
    """Vogel/sunflower spiral: n near-uniform points on a disk."""
    if n < 1:
        raise MeshError("need at least one point")
    k = np.arange(1, n + 1, dtype=np.float64)
    golden = np.pi * (3.0 - np.sqrt(5.0))
    r = radius * np.sqrt((k - 0.5) / n)
    theta = golden * k
    return np.column_stack(
        [center[0] + r * np.cos(theta), center[1] + r * np.sin(theta)]
    )


def disk(
    n_points: int,
    *,
    radius: float = 1.0,
    center: tuple[float, float] = (0.0, 0.0),
    seed: int | None = None,
    jitter: float = 0.0,
) -> TriangleMesh:
    """Near-uniform triangulated disk with ``n_points`` vertices."""
    pts = sunflower_points(n_points, radius=radius, center=center)
    if jitter > 0:
        rng = np.random.default_rng(seed)
        spacing = radius / np.sqrt(n_points)
        pts = pts + rng.uniform(-jitter, jitter, pts.shape) * spacing
    return delaunay_from_points(pts)


def annulus(
    n_rings: int,
    n_sectors: int,
    *,
    r_inner: float = 0.3,
    r_outer: float = 1.0,
    center: tuple[float, float] = (0.0, 0.0),
    twist: bool = True,
) -> TriangleMesh:
    """Structured triangulated annulus (XGC1 poloidal-plane-like topology).

    ``n_rings`` radial vertex rings × ``n_sectors`` angular positions;
    ``twist`` staggers alternate rings by half a sector for better-shaped
    triangles. Euler characteristic of the result is 0 (one hole).
    """
    if n_rings < 2 or n_sectors < 3:
        raise MeshError("annulus needs n_rings >= 2 and n_sectors >= 3")
    radii = np.linspace(r_inner, r_outer, n_rings)
    theta = np.linspace(0.0, 2 * np.pi, n_sectors, endpoint=False)
    verts = np.empty((n_rings * n_sectors, 2), dtype=np.float64)
    for ring, r in enumerate(radii):
        offs = (0.5 * (2 * np.pi / n_sectors)) if (twist and ring % 2) else 0.0
        t = theta + offs
        verts[ring * n_sectors : (ring + 1) * n_sectors, 0] = (
            center[0] + r * np.cos(t)
        )
        verts[ring * n_sectors : (ring + 1) * n_sectors, 1] = (
            center[1] + r * np.sin(t)
        )

    tris: list[tuple[int, int, int]] = []
    for ring in range(n_rings - 1):
        a0 = ring * n_sectors
        b0 = (ring + 1) * n_sectors
        for s in range(n_sectors):
            s1 = (s + 1) % n_sectors
            tris.append((a0 + s, a0 + s1, b0 + s))
            tris.append((a0 + s1, b0 + s1, b0 + s))
    return TriangleMesh(verts, np.asarray(tris, dtype=np.int64), validate=False)


def rectangle_with_cutout(
    n_points: int,
    *,
    width: float = 4.0,
    height: float = 2.0,
    body: Callable[[np.ndarray], np.ndarray] | None = None,
    boundary_layers: int = 3,
    seed: int | None = None,
) -> TriangleMesh:
    """Exterior-flow mesh: rectangle with a solid body removed (CFD-like).

    ``body(points) -> bool mask`` marks points inside the solid; the
    default body is an ellipse ("jet nose") near the left of the domain.
    Extra point rings are seeded along the body surface (``boundary_layers``)
    so the mesh is refined at the fluid/solid interface, as CFD meshes are.
    Triangles whose centroid falls inside the body are removed.
    """
    if body is None:

        def body(points: np.ndarray) -> np.ndarray:
            x = (points[:, 0] - width * 0.3) / (width * 0.12)
            y = (points[:, 1] - height * 0.5) / (height * 0.18)
            return x * x + y * y < 1.0

    rng = np.random.default_rng(seed)
    # Halton-like quasi-uniform cloud via stratified jitter.
    nx = int(np.sqrt(n_points * width / height))
    ny = max(2, n_points // max(nx, 1))
    gx, gy = np.meshgrid(
        np.linspace(0, width, nx), np.linspace(0, height, ny), indexing="ij"
    )
    pts = np.column_stack([gx.ravel(), gy.ravel()])
    interior = (
        (pts[:, 0] > 0) & (pts[:, 0] < width) & (pts[:, 1] > 0) & (pts[:, 1] < height)
    )
    jit = rng.uniform(-0.45, 0.45, pts.shape)
    jit *= np.array([width / max(nx - 1, 1), height / max(ny - 1, 1)])
    pts[interior] += jit[interior]

    keep = ~body(pts)
    pts = pts[keep]

    # Surface rings: sample the body outline by rejection + projection.
    cx, cy = width * 0.3, height * 0.5
    theta = np.linspace(0, 2 * np.pi, max(32, n_points // 40), endpoint=False)
    for layer in range(1, boundary_layers + 1):
        scale = 1.0 + 0.035 * layer
        ring = np.column_stack(
            [
                cx + width * 0.12 * scale * np.cos(theta),
                cy + height * 0.18 * scale * np.sin(theta),
            ]
        )
        inside_domain = (
            (ring[:, 0] > 0)
            & (ring[:, 0] < width)
            & (ring[:, 1] > 0)
            & (ring[:, 1] < height)
        )
        pts = np.vstack([pts, ring[inside_domain]])

    mesh = delaunay_from_points(pts)
    centroids = mesh.triangle_centroids()
    fluid = ~body(centroids)
    kept = mesh.triangles[fluid]
    mesh2 = TriangleMesh(mesh.vertices, kept, validate=False)
    compacted, _ = mesh2.compact()
    return compacted
