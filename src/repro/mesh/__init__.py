"""Unstructured triangular mesh substrate.

Canopus (paper §III-C) builds on a data model of unstructured triangular
meshes carrying per-vertex floating-point fields. This subpackage provides:

* :class:`~repro.mesh.triangle_mesh.TriangleMesh` — the immutable mesh
  container (vertices, triangles, derived adjacency);
* :func:`~repro.mesh.edge_collapse.decimate` — Algorithm 1 of the paper
  (shortest-edge-first collapse with a priority queue);
* :class:`~repro.mesh.locate.TriangleLocator` — uniform-grid point location
  with barycentric coordinates (used for delta calculation/restoration);
* :mod:`~repro.mesh.generators` — synthetic mesh builders used by the
  three evaluation datasets;
* :mod:`~repro.mesh.metrics`, :mod:`~repro.mesh.interpolation`,
  :mod:`~repro.mesh.io` — quality metrics, field interpolation, and
  (de)serialization.
"""

from repro.mesh.triangle_mesh import TriangleMesh
from repro.mesh.edge_collapse import KERNELS, DecimationResult, decimate
from repro.mesh.batch_collapse import decimate_batched
from repro.mesh.lineage import CollapseLineage
from repro.mesh.locate import TriangleLocator, barycentric_coordinates
from repro.mesh.interpolation import interpolate_at_points, interpolate_to_grid
from repro.mesh import generators, metrics
from repro.mesh.io import load_mesh, save_mesh
from repro.mesh.ordering import inverse_permutation, vertex_ordering
from repro.mesh.partition import MeshPartition, gather_field, partition_mesh

__all__ = [
    "TriangleMesh",
    "DecimationResult",
    "KERNELS",
    "decimate",
    "decimate_batched",
    "CollapseLineage",
    "TriangleLocator",
    "barycentric_coordinates",
    "interpolate_at_points",
    "interpolate_to_grid",
    "generators",
    "metrics",
    "load_mesh",
    "save_mesh",
    "MeshPartition",
    "partition_mesh",
    "gather_field",
    "vertex_ordering",
    "inverse_permutation",
]
