"""Round-based vectorized edge-collapse kernel (``method="batched"``).

The serial kernel (:mod:`repro.mesh.edge_collapse`) is a faithful
transcription of the paper's Algorithm 1: one heap pop, one collapse,
one neighborhood rewrite per iteration — all in Python. This module
trades the strict shortest-edge-first order for throughput: each *round*
selects a maximal set of short edges whose closed 1-rings are pairwise
disjoint and collapses them all at once with NumPy index remapping.

Selection is Luby-style with two twists that make it effective on
meshes. First, each round only admits *short* edges — those at or below
the round's median candidate priority — so the kernel still works
shortest-edges-first in aggregate. Second, ranks inside the pool come
from a deterministic integer hash of the edge's extended-id key, not
from the priority sort: edge lengths vary smoothly across a mesh, so
priority-ordered ranks have almost no local minima and would select
only a handful of edges per round, while hashed ranks are spatially
uncorrelated and select a constant fraction. An edge is selected iff
its rank is the minimum over the *closed* neighborhoods of both
endpoints; two selected edges therefore cannot share an endpoint or
even have adjacent endpoints — if a vertex ``a`` of one and ``b`` of
the other were adjacent, each edge's rank would have to be ≤ the
other's via ``m2[a] ≤ m1[b]``, forcing equal ranks and hence the same
edge. Selection is repeated within the round (blocking the closed
neighborhoods of already-selected endpoints) until the pool is
maximally consumed, so one expensive edge/link-condition rebuild is
amortized over many collapses. With 1-rings disjoint, no triangle is
touched by two collapses and untouched edges' link conditions stay
valid, so the whole round is a single gather/scatter.

The same robustness guards as the serial kernel apply, vectorized:

* *link condition* — per edge, ``#common neighbors`` (one sparse
  matrix product) must equal ``#shared triangles`` (edge multiplicity
  over the triangle soup). Failing edges sit out the round, accumulate
  a skip penalty, and are banned after ``_MAX_SKIPS`` failures.
* duplicate-triangle suppression after remapping.

Collapse lineage is recorded natively: one round = one generation group
of :class:`~repro.mesh.lineage.CollapseLineage` (sources within a round
are disjoint by construction), so plan replay of the batched kernel is
bit-identical to the kernel's own field coarsening.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy import sparse

from repro.errors import DecimationError
from repro.mesh.lineage import CollapseLineage
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace

__all__ = ["decimate_batched"]

# Shared with the serial kernel: an edge that fails the link condition
# this many times is dropped for good; until then its priority is
# inflated by _SKIP_PENALTY per failure.
_MAX_SKIPS = 8
_SKIP_PENALTY = 1.5


def _hash_ranks(gkey: np.ndarray) -> np.ndarray:
    """Deterministic pseudo-random unique ranks from packed edge keys.

    Murmur3's 64-bit finalizer decorrelates the spatially-smooth id
    space; argsort then assigns unique integer ranks (hash collisions
    merely fall back to index order). Keys are extended ids, so ranks
    are stable across runs and processes — decimation stays
    reproducible.
    """
    h = gkey.astype(np.uint64).copy()
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xFF51AFD7ED558CCD)
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xC4CEB9FE1A85EC53)
    h ^= h >> np.uint64(33)
    rank = np.empty(len(h), dtype=np.int64)
    rank[np.argsort(h, kind="stable")] = np.arange(len(h), dtype=np.int64)
    return rank


def decimate_batched(
    mesh: TriangleMesh,
    fields: Mapping[str, np.ndarray] | np.ndarray | None = None,
    ratio: float = 2.0,
    *,
    priority="length",
    placement: str = "midpoint",
    strict: bool = False,
    record_lineage: bool = False,
):
    """Decimate ``mesh`` with the round-based vectorized kernel.

    Accepts the same arguments as :func:`repro.mesh.edge_collapse.decimate`
    and returns the same :class:`~repro.mesh.edge_collapse.DecimationResult`.
    Callable priorities are evaluated per edge on *extended* vertex ids
    (original indices, then ``n_fine + k`` for the k-th merge), one call
    per live edge per round — prefer the named strategies, which are
    fully vectorized.
    """
    from repro.mesh.edge_collapse import DecimationResult

    if ratio < 1.0:
        raise DecimationError(f"decimation ratio must be >= 1, got {ratio}")
    if placement not in ("midpoint", "endpoint"):
        raise DecimationError(f"unknown placement {placement!r}")
    if isinstance(fields, np.ndarray):
        field_map: dict[str, np.ndarray] = {"data": fields}
    elif fields is None:
        field_map = {}
    else:
        field_map = dict(fields)
    for name, arr in field_map.items():
        if len(arr) != mesh.num_vertices:
            raise DecimationError(
                f"field {name!r} has {len(arr)} values for "
                f"{mesh.num_vertices} vertices"
            )

    n0 = mesh.num_vertices
    target_vertices = max(3, int(np.ceil(n0 / ratio)))
    target_cuts = n0 - target_vertices

    pos = np.array(mesh.vertices, dtype=np.float64)
    tris = np.array(mesh.triangles, dtype=np.int64)
    vals = {
        name: np.asarray(arr, dtype=np.float64).copy()
        for name, arr in field_map.items()
    }
    # Extended-id of each current (local) vertex; the k-th merge overall
    # creates id n0 + k, matching CollapseLineage's convention.
    gid = np.arange(n0, dtype=np.int64)
    next_gid = n0

    data_scale = 0.0
    for arr in vals.values():
        if arr.size:
            data_scale = max(data_scale, float(arr.max() - arr.min()))
    if data_scale <= 0.0:
        data_scale = 1.0

    # Lineage accumulators: one generation group per round.
    mrg_u: list[np.ndarray] = []
    mrg_v: list[np.ndarray] = []
    mrg_d: list[np.ndarray] = []
    group_sizes: list[int] = []

    # Link-condition failures, keyed by packed extended-id edge key.
    skip_count: dict[int, int] = {}

    cuts = 0
    skipped = 0
    rounds = 0
    exhausted = False

    while cuts < target_cuts:
        n = len(pos)
        if len(tris) == 0:
            exhausted = True
            break

        # --- live edge set + shared-triangle multiplicity ----------------
        raw = np.concatenate(
            [tris[:, [0, 1]], tris[:, [1, 2]], tris[:, [0, 2]]]
        )
        raw = np.sort(raw, axis=1)
        ekey, shared = np.unique(raw[:, 0] * n + raw[:, 1], return_counts=True)
        eu = ekey // n
        ev = ekey % n
        n_edges = len(eu)
        if n_edges == 0:
            exhausted = True
            break

        # --- priorities ---------------------------------------------------
        if callable(priority):
            prio = np.fromiter(
                (priority(int(gid[a]), int(gid[b])) for a, b in zip(eu, ev)),
                np.float64,
                n_edges,
            )
        else:
            d = pos[eu] - pos[ev]
            prio = np.hypot(d[:, 0], d[:, 1])
            if priority == "data_aware":
                jump = np.zeros(n_edges, dtype=np.float64)
                for arr in vals.values():
                    np.maximum(
                        jump, np.abs(arr[eu] - arr[ev]) / data_scale, out=jump
                    )
                prio = prio * (1.0 + jump)
            elif priority != "length":
                raise DecimationError(
                    f"unknown priority strategy: {priority!r}"
                )

        # --- skip penalties / bans (keyed on extended ids) ---------------
        gmin = np.minimum(gid[eu], gid[ev])
        gmax = np.maximum(gid[eu], gid[ev])
        gkey = (gmin << 32) | gmax
        banned = np.zeros(n_edges, dtype=bool)
        if skip_count:
            sk = np.fromiter(skip_count.keys(), np.int64, len(skip_count))
            sv = np.fromiter(skip_count.values(), np.int64, len(skip_count))
            so = np.argsort(sk)
            sk, sv = sk[so], sv[so]
            loc = np.searchsorted(sk, gkey)
            loc_c = np.minimum(loc, len(sk) - 1)
            hit = sk[loc_c] == gkey
            counts = np.where(hit, sv[loc_c], 0)
            banned = counts >= _MAX_SKIPS
            prio = prio * _SKIP_PENALTY ** counts

        # --- link condition, vectorized -----------------------------------
        und_u = np.concatenate([eu, ev])
        und_v = np.concatenate([ev, eu])
        adj = sparse.csr_matrix(
            (np.ones(len(und_u), dtype=np.int32), (und_u, und_v)),
            shape=(n, n),
        )
        common = np.asarray((adj @ adj)[eu, ev]).ravel()
        link_ok = common == shared
        fails = np.flatnonzero(~link_ok & ~banned)
        if len(fails):
            skipped += len(fails)
            for k in gkey[fails]:
                k = int(k)
                skip_count[k] = skip_count.get(k, 0) + 1

        candidate = link_ok & ~banned
        if not candidate.any():
            if not len(fails):
                exhausted = True
                break
            rounds += 1
            continue

        # --- short-edge pool: at or below the median candidate priority ---
        pool = candidate & (
            prio <= np.quantile(prio[candidate], 0.5)
        )
        if not pool.any():  # degenerate priorities; fall back to all
            pool = candidate.copy()

        # --- sub-iterated Luby selection over the pool ---------------------
        rnk = _hash_ranks(gkey)
        big = np.int64(n_edges)
        merged_mask = np.zeros(n, dtype=bool)
        sel_parts: list[np.ndarray] = []
        n_sel = 0
        remaining = target_cuts - cuts
        avail = pool.copy()
        while avail.any() and n_sel < remaining:
            rank_eff = np.where(avail, rnk, big)
            m1 = np.full(n, big, dtype=np.int64)
            np.minimum.at(m1, eu, rank_eff)
            np.minimum.at(m1, ev, rank_eff)
            # Propagate over ALL mesh edges: conflicts come from mesh
            # adjacency, not just pool membership.
            m2 = m1.copy()
            np.minimum.at(m2, eu, m1[ev])
            np.minimum.at(m2, ev, m1[eu])
            selected = avail & (rank_eff == m2[eu]) & (rank_eff == m2[ev])
            sel = np.flatnonzero(selected)
            if len(sel) == 0:
                break  # unreachable while avail is non-empty; safety net
            if n_sel + len(sel) > remaining:
                sel = sel[np.argsort(rnk[sel])][: remaining - n_sel]
            sel_parts.append(sel)
            n_sel += len(sel)
            # Block the closed neighborhoods of the merged endpoints so
            # later sub-iterations stay 1-ring disjoint from this one
            # (their link conditions are then also still valid). Blocking
            # radiates exactly one hop from merged vertices — recomputed
            # from merged_mask so it never compounds across sub-iterations.
            merged_mask[eu[sel]] = True
            merged_mask[ev[sel]] = True
            blocked = merged_mask.copy()
            blocked[und_v[merged_mask[und_u]]] = True
            avail &= ~blocked[eu] & ~blocked[ev]
        if n_sel == 0:
            if not len(fails):
                exhausted = True
                break
            rounds += 1
            continue
        sel = np.concatenate(sel_parts)
        su, sv_ = eu[sel], ev[sel]

        # --- collapse the whole round at once -----------------------------
        merged_pos = (
            (pos[su] + pos[sv_]) / 2.0 if placement == "midpoint"
            else pos[su]
        )
        new_gids = next_gid + np.arange(n_sel, dtype=np.int64)
        next_gid += n_sel
        mrg_u.append(gid[su])
        mrg_v.append(gid[sv_])
        mrg_d.append(new_gids)
        group_sizes.append(n_sel)

        merged = np.zeros(n, dtype=bool)
        merged[su] = True
        merged[sv_] = True
        survivors = np.flatnonzero(~merged)
        ns = len(survivors)
        remap = np.empty(n, dtype=np.int64)
        remap[survivors] = np.arange(ns, dtype=np.int64)
        seq = ns + np.arange(n_sel, dtype=np.int64)
        remap[su] = seq
        remap[sv_] = seq

        pos = np.concatenate([pos[survivors], merged_pos])
        gid = np.concatenate([gid[survivors], new_gids])
        for name, arr in vals.items():
            m = (
                (arr[su] + arr[sv_]) / 2.0 if placement == "midpoint"
                else arr[su]
            )
            vals[name] = np.concatenate([arr[survivors], m])

        t2 = remap[tris]
        deg = (
            (t2[:, 0] == t2[:, 1])
            | (t2[:, 1] == t2[:, 2])
            | (t2[:, 0] == t2[:, 2])
        )
        t2 = t2[~deg]
        if len(t2):
            canon = np.sort(t2, axis=1)
            nn = len(pos)
            ck = (canon[:, 0] * nn + canon[:, 1]) * nn + canon[:, 2]
            _, first = np.unique(ck, return_index=True)
            t2 = t2[np.sort(first)]
        tris = t2

        cuts += n_sel
        rounds += 1

    if exhausted and strict:
        raise DecimationError(
            f"batched kernel exhausted after {cuts}/{target_cuts} collapses"
        )

    out_mesh = TriangleMesh(pos, tris, validate=False)
    achieved = n0 / max(1, out_mesh.num_vertices)
    lineage = None
    if record_lineage:
        k = sum(group_sizes)
        offsets = np.zeros(len(group_sizes) + 1, dtype=np.int64)
        if group_sizes:
            np.cumsum(group_sizes, out=offsets[1:])
        lineage = CollapseLineage(
            n_fine=n0,
            src_u=(
                np.concatenate(mrg_u) if mrg_u else np.empty(0, np.int64)
            ),
            src_v=(
                np.concatenate(mrg_v) if mrg_v else np.empty(0, np.int64)
            ),
            dst=np.concatenate(mrg_d) if mrg_d else np.empty(0, np.int64),
            group_offsets=offsets,
            alive_ids=gid.copy(),
            placement=placement,
        )
        assert lineage.num_merges == k
    tracer = trace.get_tracer()
    if tracer is not None:
        tracer.metrics.counter("decimate.batched.rounds").inc(rounds)
        tracer.metrics.counter("decimate.batched.collapses").inc(cuts)
        tracer.metrics.counter("decimate.queue.link_skips").inc(skipped)
    return DecimationResult(
        mesh=out_mesh,
        fields=vals,
        achieved_ratio=achieved,
        collapses=cuts,
        skipped=skipped,
        exhausted=exhausted,
        queue_stats={"rounds": rounds, "link_skips": skipped},
        lineage=lineage,
    )
