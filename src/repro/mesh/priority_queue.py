"""Lazy-deletion binary heap keyed by edge priority.

Algorithm 1 of the paper pops the shortest edge, collapses it, then inserts
the new edges created around the merged vertex. Edge priorities change as
neighborhoods are rewritten, so the queue supports *updates* and
*removals*. A classic lazy-deletion heap gives O(log n) push/pop — matching
the complexity the paper cites ("dominated by the cost of the insert
operation in a priority queue, which is typically O(log N)") — without the
bookkeeping of a full indexed heap: stale entries are skipped at pop time
by comparing against the authoritative ``priority_of`` map.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable

__all__ = ["EdgePriorityQueue"]

EdgeKey = tuple[int, int]


def edge_key(u: int, v: int) -> EdgeKey:
    """Canonical undirected key (min, max) for an edge."""
    return (u, v) if u < v else (v, u)


class EdgePriorityQueue:
    """Min-heap of undirected edges with lazy deletion.

    Entries are ``(priority, (u, v))``. The authoritative priority lives in
    :attr:`priority_of`; heap entries whose priority disagrees are stale
    and skipped when popped.
    """

    __slots__ = ("_heap", "priority_of", "_pushes", "_stale_pops")

    def __init__(self, items: Iterable[tuple[EdgeKey, float]] = ()) -> None:
        self.priority_of: dict[EdgeKey, float] = {}
        self._heap: list[tuple[float, EdgeKey]] = []
        self._pushes = 0
        self._stale_pops = 0
        for key, prio in items:
            self.push(key[0], key[1], prio)

    def __len__(self) -> int:
        return len(self.priority_of)

    def __contains__(self, key: EdgeKey) -> bool:
        return edge_key(*key) in self.priority_of

    def push(self, u: int, v: int, priority: float) -> None:
        """Insert edge (u, v) or update its priority."""
        key = edge_key(u, v)
        self.priority_of[key] = priority
        heapq.heappush(self._heap, (priority, key))
        self._pushes += 1

    def discard(self, u: int, v: int) -> None:
        """Remove edge (u, v) if present (lazily; heap entry skipped later)."""
        self.priority_of.pop(edge_key(u, v), None)

    def pop(self) -> tuple[EdgeKey, float]:
        """Pop and return ``((u, v), priority)`` of the minimum live edge.

        Raises
        ------
        IndexError
            If the queue holds no live edges.
        """
        while self._heap:
            priority, key = heapq.heappop(self._heap)
            live = self.priority_of.get(key)
            if live is not None and live == priority:
                del self.priority_of[key]
                return key, priority
            self._stale_pops += 1
        raise IndexError("pop from empty EdgePriorityQueue")

    def peek(self) -> tuple[EdgeKey, float]:
        """Return the minimum live edge without removing it."""
        while self._heap:
            priority, key = self._heap[0]
            live = self.priority_of.get(key)
            if live is not None and live == priority:
                return key, priority
            heapq.heappop(self._heap)
            self._stale_pops += 1
        raise IndexError("peek at empty EdgePriorityQueue")

    @property
    def stats(self) -> dict[str, int]:
        """Instrumentation: total pushes and stale entries skipped."""
        return {
            "pushes": self._pushes,
            "stale_pops": self._stale_pops,
            "live": len(self.priority_of),
            "heap_size": len(self._heap),
        }
