"""Unified public façade for the Canopus reproduction.

One blessed import surface for the common workflows::

    from repro.api import Session, write_campaign

* :class:`Session` / :class:`CampaignHandle` — the read surface: open a
  hierarchy once, then ``session.open(name)`` and
  ``campaign.restore(var, level=..., tolerance=..., region=...)``,
  ``restore_many``, ``stats``. Both in-process analytics and the HTTP
  read tier (:mod:`repro.service`) run on this exact API;
* :func:`write_campaign` — Canopus-encode a timestep series of one
  variable with shared geometry;
* :class:`QueryPlanner` / :class:`RetrievalPlan` plus
  :func:`stats_query` / :func:`blob_query` — accuracy-aware retrieval
  planning and per-chunk summary pushdown (see ``docs/query.md``);
* :func:`trace_session` — dual-clock tracing (wall + simulated I/O
  time) of everything executed inside the ``with`` block, exportable as
  Chrome trace-event JSON (see :mod:`repro.obs`).

The PR 1 helpers :func:`open_dataset` and :func:`read_progressive`
remain as thin wrappers but are deprecated in favour of the session
surface (they warn once per process).

The classes behind these helpers are re-exported here too, so
``repro.api`` is a stable one-stop namespace. (The historical
``repro.io.api`` shim, deprecated since PR 1, has been removed.)

Storage is pluggable end to end: pass ``backend=`` to
:func:`~repro.storage.hierarchy.two_tier_titan` (or build tiers over
any :class:`~repro.storage.backend.ObjectStore` from
:func:`~repro.storage.backend.make_backend`), and pick the placement
policy per dataset with ``placement="walk"`` (fastest-first capacity
walk) or ``"cost"`` (the explainable
:class:`~repro.storage.placement.PlacementEngine` plan).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.core.campaign import CampaignReader, CampaignWriter, StepReport
from repro.core.decode_engine import DecodeEngine
from repro.core.encode_scheduler import (
    EncodeScheduler,
    ScaleoutReport,
    encode_campaign_scaleout,
)
from repro.core.decoder import CanopusDecoder, LevelData
from repro.core.encoder import CanopusEncoder
from repro.core.notation import LevelScheme
from repro.core.parallel import PartitionedDecoder, encode_partitioned
from repro.core.progressive import ProgressiveReader
from repro.core.restored_cache import (
    GeometryCache,
    RestoredLevelCache,
    dataset_fingerprint,
    get_geometry_cache,
    get_restored_cache,
)
from repro.deprecation import warn_once
from repro.errors import BPFormatError, CanopusError, QueryError
from repro.query import (
    PlanDecision,
    QueryPlanner,
    RetrievalPlan,
    blob_query,
    stats_query,
)
from repro.io.cache import RangeCache
from repro.io.dataset import BPDataset
from repro.io.engine import EngineStats, RetrievalEngine
from repro.io.xmlconfig import parse_config
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import (
    SLO,
    JsonlLogger,
    MetricsRegistry,
    RequestTrace,
    TraceBuffer,
    TraceContext,
    Tracer,
    current_context,
    get_registry,
    render_prometheus,
    trace_session,
)
from repro.session import CampaignHandle, Session
from repro.storage.backend import (
    FilesystemBackend,
    MemoryBackend,
    ObjectStore,
    ShardedBackend,
    make_backend,
)
from repro.storage.hierarchy import StorageHierarchy, two_tier_titan
from repro.storage.placement import (
    PlacementEngine,
    PlacementPlan,
    ProductSpec,
)
from repro.storage.policy import TierManager

__all__ = [
    # helpers (the blessed entry points)
    "Session",
    "CampaignHandle",
    "write_campaign",
    "trace_session",
    # deprecated thin wrappers (PR 1 surface)
    "open_dataset",
    "read_progressive",
    "read_progressive_many",
    # re-exported building blocks
    "BPDataset",
    "CampaignReader",
    "CampaignWriter",
    "CanopusDecoder",
    "CanopusEncoder",
    "DecodeEngine",
    "EncodeScheduler",
    "EngineStats",
    "FilesystemBackend",
    "GeometryCache",
    "JsonlLogger",
    "LevelData",
    "LevelScheme",
    "MemoryBackend",
    "MetricsRegistry",
    "ObjectStore",
    "PartitionedDecoder",
    "PlacementEngine",
    "PlacementPlan",
    "PlanDecision",
    "ProductSpec",
    "ProgressiveReader",
    "QueryError",
    "QueryPlanner",
    "RangeCache",
    "RequestTrace",
    "RetrievalPlan",
    "RestoredLevelCache",
    "RetrievalEngine",
    "SLO",
    "ScaleoutReport",
    "ShardedBackend",
    "StepReport",
    "StorageHierarchy",
    "TierManager",
    "TraceBuffer",
    "TraceContext",
    "Tracer",
    "TriangleMesh",
    "blob_query",
    "current_context",
    "dataset_fingerprint",
    "encode_campaign_scaleout",
    "encode_partitioned",
    "get_geometry_cache",
    "get_registry",
    "get_restored_cache",
    "make_backend",
    "parse_config",
    "render_prometheus",
    "stats_query",
    "two_tier_titan",
]


def open_dataset(
    name: str,
    hierarchy: StorageHierarchy,
    *,
    mode: str = "r",
    transports=None,
    verify_checksums: bool = True,
    cache_bytes: int = 64 << 20,
    workers: int = 4,
    placement: str = "walk",
) -> BPDataset:
    """Open (``mode="r"``) or create (``mode="w"``) a BP dataset.

    Every read goes through the dataset's retrieval engine: checksum
    verification, a ``cache_bytes``-budgeted LRU range cache, and up to
    ``workers`` concurrent range fetches for batched/prefetched reads.
    ``placement`` selects the write-side policy: the paper's
    fastest-first capacity ``walk`` or the ``cost``-based
    :class:`PlacementEngine` plan applied at close.

    .. deprecated:: PR 6
        For reading, prefer ``Session(hierarchy).open(name)`` — the
        session surface shared with the HTTP read tier.
    """
    if mode == "r":
        warn_once(
            "api.open_dataset",
            "repro.api.open_dataset(mode='r') is deprecated; use "
            "Session(hierarchy).open(name) instead",
            stacklevel=2,
        )
    if mode not in ("r", "w"):
        raise BPFormatError(f"mode must be 'r' or 'w', not {mode!r}")
    return BPDataset(
        name,
        hierarchy,
        mode=mode,
        transports=transports,
        verify_checksums=verify_checksums,
        cache_bytes=cache_bytes,
        workers=workers,
        placement=placement,
    )


def write_campaign(
    hierarchy: StorageHierarchy,
    name: str,
    var: str,
    mesh: TriangleMesh,
    steps: Mapping[int, np.ndarray] | Iterable[np.ndarray],
    scheme: LevelScheme,
    *,
    codec: str = "zfp",
    codec_params: dict | None = None,
    estimator: str = "mean",
    priority: str = "length",
    placement: str = "walk",
    processes: int | None = None,
    window: int = 4,
    start_method: str | None = None,
) -> list[StepReport]:
    """Canopus-encode a timestep series and flush it to the hierarchy.

    ``steps`` is either a mapping ``{step: field}`` or an iterable of
    fields (implicitly steps ``0, 1, ...``). Geometry (mesh chain +
    mappings) is refactored and stored once and shared by every step.
    Returns the per-step write reports; the dataset is closed (subfiles
    + catalog flushed) before returning.

    With ``processes > 1`` the steps encode on the shared-memory
    process-pool scheduler (:func:`encode_campaign_scaleout`): at most
    ``window`` raw timesteps in flight, products bit-identical to the
    in-process path. Per-step ``io_seconds`` are 0 either way (writes
    are buffered until close).
    """
    if isinstance(steps, Mapping):
        items = sorted(steps.items())
    else:
        items = list(enumerate(steps))
    if not items:
        raise CanopusError("write_campaign needs at least one timestep")
    if processes is not None and processes > 1:
        report, _ = encode_campaign_scaleout(
            hierarchy, name, var, mesh, scheme, items,
            processes=processes, window=window, start_method=start_method,
            codec=codec, codec_params=codec_params, estimator=estimator,
            priority=priority, placement=placement,
        )
        reports = []
        for step, data in items:
            compressed, stats = report.step_records[step]
            reports.append(
                StepReport(
                    step=step,
                    compressed_bytes=compressed,
                    original_bytes=int(np.asarray(data).nbytes),
                    refactor_seconds=(
                        stats["replay_seconds"] + stats["delta_seconds"]
                    ),
                    compress_seconds=stats["compress_seconds"],
                    io_seconds=0.0,
                )
            )
        return reports
    writer = CampaignWriter(
        hierarchy,
        name,
        var,
        mesh,
        scheme,
        codec=codec,
        codec_params=codec_params,
        estimator=estimator,
        priority=priority,
        placement=placement,
    )
    try:
        reports = [writer.write_step(step, data) for step, data in items]
    finally:
        writer.close()
    return reports


def read_progressive(
    dataset: BPDataset | CanopusDecoder,
    var: str,
    *,
    pipeline: bool = True,
    lookahead: int = 2,
    min_significance: float = 0.0,
) -> ProgressiveReader:
    """Progressive (level-by-level) reader for one variable.

    Accepts an open dataset or an existing decoder. Pipelining is on by
    default: upcoming levels' byte ranges are prefetched through the
    retrieval engine while the current level decompresses, overlapping
    tier I/O with compute; restored fields stay bit-identical to the
    serial path. ``min_significance`` makes every refinement skip
    chunks whose recorded correction magnitude is below the threshold
    (bounded-lossy retrieval; requires the variable to be stored with
    spatial chunks to save any I/O).

    .. deprecated:: PR 6
        Prefer ``Session(hierarchy).open(name).restore(var,
        level=..., tolerance=...)``; for explicit level-by-level
        iteration keep constructing :class:`ProgressiveReader` directly.
    """
    warn_once(
        "api.read_progressive",
        "repro.api.read_progressive is deprecated; use "
        "Session(hierarchy).open(name).restore(var, level=..., "
        "tolerance=...) instead",
        stacklevel=2,
    )
    decoder = (
        dataset if isinstance(dataset, CanopusDecoder)
        else CanopusDecoder(dataset)
    )
    return ProgressiveReader(
        decoder,
        var,
        pipeline=pipeline,
        lookahead=lookahead,
        min_significance=min_significance,
    )


def read_progressive_many(
    dataset: BPDataset,
    variables,
    *,
    level: int = 0,
    workers: int | None = None,
    region=None,
    min_significance: float = 0.0,
    use_restored_cache: bool = True,
) -> dict[str, LevelData]:
    """Restore several variables concurrently; returns ``{var: LevelData}``.

    The :class:`DecodeEngine` fans the restore chains out over a thread
    pool (``workers=None`` inherits the dataset engine's width), decodes
    spatial chunks of each delta in parallel, shares decoded geometry
    process-wide, and publishes/reuses finished levels through the
    process-wide :class:`RestoredLevelCache` — a repeated call returns
    cached fields with zero I/O. Results are bit-identical to restoring
    each variable serially.
    """
    engine = DecodeEngine(
        dataset,
        workers=workers,
        use_restored_cache=use_restored_cache,
    )
    return engine.restore_many(
        variables, level, region=region, min_significance=min_significance
    )
