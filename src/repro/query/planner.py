"""Accuracy-aware retrieval planning from per-chunk summaries.

``Session.restore(tolerance=τ)`` historically *measured* its way down
the level chain: apply a delta, compute its RMS, stop when it drops
below τ — paying full I/O for every level it inspected. The encoder now
persists each product's value summary (:class:`~repro.io.query.ChunkStats`)
in the catalog, and the first two moments aggregate exactly across
chunks, so the RMS the progressive loop would measure after each level
is *computable from metadata alone*:

    rms(level) = sqrt( Σ vsumsq / Σ count )  over surviving chunks

:class:`QueryPlanner` walks the level chain on summaries only (the
progressive-retrieval framework of arXiv:2308.11759 — fetch exactly the
components the requested accuracy needs), emits an explainable
:class:`~repro.query.plan.RetrievalPlan`, then executes it: one
``prefetch`` batch for every surviving product, one engine restore. The
chunk-survival rules (region bounding box, ``min_significance``) are
the same tests :meth:`CanopusDecoder._read_delta` applies, so the
executed restore reads exactly the planned set and the result is
bit-identical to the measure-as-you-go loop.

Plans whose surviving products lack summaries come back with
``complete=False`` — the caller falls back to the progressive loop
(datasets written before summaries existed stay fully supported).
"""

from __future__ import annotations

import numpy as np

from repro.core.decode_engine import DecodeEngine
from repro.core.decoder import LevelData
from repro.core.notation import (
    chunk_key,
    delta_key,
    level_key,
    mapping_key,
    mesh_key,
)
from repro.core.restored_cache import get_geometry_cache
from repro.errors import QueryError, RestorationError
from repro.io.query import ChunkStats
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.query.plan import FETCH, SKIP, PlanDecision, RetrievalPlan

__all__ = ["QueryPlanner"]


def _bump(name: str, n: int | float = 1) -> None:
    """Count in the global registry and the active tracer's registry."""
    get_registry().counter(name).inc(n)
    tracer = trace.get_tracer()
    if tracer is not None and tracer.metrics is not get_registry():
        tracer.metrics.counter(name).inc(n)


def normalize_region(region) -> tuple[np.ndarray, np.ndarray] | None:
    """Validate and canonicalize a ``(lo_xy, hi_xy)`` window.

    Raises :class:`QueryError` (a ``ValueError`` carrying the
    ``bad-request`` wire code) when the window is empty — a query over
    nothing would otherwise silently degrade to a base-only restore.
    """
    if region is None:
        return None
    lo, hi = (np.asarray(b, dtype=np.float64).ravel() for b in region)
    if lo.shape != (2,) or hi.shape != (2,):
        raise QueryError(
            f"region must be ((x0, y0), (x1, y1)); got {region!r}"
        )
    if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
        raise QueryError(f"region bounds must be finite; got {region!r}")
    if np.any(lo > hi):
        raise QueryError(
            f"empty region: lo {lo.tolist()} exceeds hi {hi.tolist()}"
        )
    return lo, hi


class QueryPlanner:
    """Plans and executes accuracy-aware restores over one engine."""

    def __init__(self, engine: DecodeEngine) -> None:
        self.engine = engine
        self.dataset = engine.dataset
        self.decoder = engine.decoder

    # ------------------------------------------------------------------
    def plan_restore(
        self,
        var: str,
        *,
        tolerance: float | None = None,
        level: int | None = None,
        region: tuple | None = None,
        min_significance: float = 0.0,
    ) -> RetrievalPlan:
        """Plan one restore without touching payload bytes.

        Exactly one of ``tolerance``/``level`` chooses the target (like
        :meth:`Session.restore`; neither means full accuracy). The
        returned plan lists every product with a fetch/skip decision;
        ``plan.complete`` is False when summaries were missing and the
        tolerance target could not be certified.
        """
        if tolerance is not None and level is not None:
            raise RestorationError("plan takes level or tolerance, not both")
        if tolerance is not None and tolerance <= 0:
            raise QueryError(
                "tolerance must be > 0 (use level=0 for full accuracy)"
            )
        window = normalize_region(region)
        scheme = self.decoder.scheme(var)
        with trace.span(
            "query.plan", "query",
            {"var": var,
             "mode": "tolerance" if tolerance is not None else "level",
             "tolerance": tolerance},
        ):
            plan = self._plan(
                var, scheme, tolerance, level, window, min_significance
            )
        _bump("query.plan.calls")
        return plan

    def _plan(
        self, var, scheme, tolerance, level, window, min_significance
    ) -> RetrievalPlan:
        base_level = scheme.base_level
        if level is not None:
            scheme.validate_level(int(level))
        mode = "tolerance" if tolerance is not None else "level"
        plan = RetrievalPlan(
            var=var,
            mode=mode,
            target_level=0 if level is None else int(level),
            tolerance=tolerance,
            region=None if window is None else (
                [float(v) for v in window[0]],
                [float(v) for v in window[1]],
            ),
            min_significance=float(min_significance),
        )

        # Base estimate: always read (both modes start from it).
        for key, kind in (
            (level_key(var, base_level), "base"),
            (mesh_key(var, base_level), "geometry"),
        ):
            self._decide(
                plan, key, kind, base_level, FETCH, "base estimate"
            )

        explicit_target = plan.target_level
        stopped_at: int | None = None
        for lvl in range(base_level - 1, -1, -1):
            if mode == "level" and lvl < explicit_target:
                stopped_at = explicit_target
                break
            if stopped_at is not None:
                break
            self._decide_geometry(plan, var, lvl, FETCH, "restore chain")
            survivors, pruned, rms = self._survey_level(
                plan, var, lvl, window, min_significance
            )
            del survivors, pruned  # decisions already recorded
            if rms is not None and not np.isnan(rms):
                plan.level_rms[lvl] = float(rms)
            if mode != "tolerance":
                continue
            if rms is None:
                # A surviving product without a summary: the stopping
                # rule cannot be evaluated from metadata. Plan the rest
                # of the chain conservatively and flag the plan.
                plan.complete = False
                continue
            # Mirror refine_until: stop after the first applied delta
            # whose RMS ≤ τ; NaN (nothing survived the filter) never
            # stops — "nothing read" must not look like convergence.
            if not np.isnan(rms) and rms <= tolerance:
                stopped_at = lvl
        if mode == "tolerance":
            plan.target_level = (
                stopped_at if stopped_at is not None else 0
            )
        # Everything finer than the target is provably unnecessary.
        reason = (
            f"tolerance {tolerance:g} met at level {plan.target_level}"
            if mode == "tolerance" and stopped_at is not None
            else f"below target level {plan.target_level}"
        )
        for lvl in range(plan.target_level - 1, -1, -1):
            self._decide_geometry(plan, var, lvl, SKIP, reason)
            self._skip_level(plan, var, lvl, reason)
        return plan

    # ------------------------------------------------------------------
    def _meta(self, var: str) -> dict:
        return self.decoder._var_meta(var)

    def _decide(
        self, plan, key, kind, level, action, reason
    ) -> None:
        if key not in self.dataset.catalog:
            return
        rec = self.dataset.inq(key)
        plan.decisions.append(
            PlanDecision(
                key=key, kind=kind, level=level,
                nbytes=rec.length, action=action, reason=reason,
            )
        )

    def _decide_geometry(self, plan, var, lvl, action, reason) -> None:
        self._decide(
            plan, mapping_key(var, lvl), "geometry", lvl, action, reason
        )
        self._decide(
            plan, mesh_key(var, lvl), "geometry", lvl, action, reason
        )

    def _level_chunks(self, var: str, lvl: int) -> int:
        meta = self._meta(var)
        chunks = int(meta.get("chunks", 1))
        if chunks == 1:
            return 1
        return int(
            meta.get("chunks_per_level", {}).get(str(lvl), chunks)
        )

    def _survey_level(
        self, plan, var, lvl, window, min_significance
    ):
        """Fetch/skip every product of one delta level; predicted RMS.

        Applies the same survival tests as
        :meth:`CanopusDecoder._read_delta` (bounding-box intersection,
        ``|max| >= min_significance``), so execution reads exactly this
        set. Returns ``(survivors, pruned, rms)`` where ``rms`` is the
        count-weighted RMS over surviving summaries, NaN when nothing
        survives, or ``None`` when a surviving product has no summary.
        """
        meta = self._meta(var)
        survivors: list = []
        pruned: list = []
        if int(meta.get("chunks", 1)) == 1:
            key = delta_key(var, lvl)
            if key not in self.dataset.catalog:
                plan.complete = False
                return survivors, pruned, None
            rec = self.dataset.inq(key)
            # Unchunked deltas cannot be pruned: the decoder always
            # applies the whole level (region/significance only gate
            # spatial chunks), so the RMS covers every vertex.
            self._decide(
                plan, key, "delta", lvl, FETCH, "whole-level delta"
            )
            survivors.append(rec)
        else:
            for c in range(self._level_chunks(var, lvl)):
                key = chunk_key(var, lvl, c)
                if key not in self.dataset.catalog:
                    continue
                rec = self.dataset.inq(key)
                action, reason = FETCH, "chunk survives filters"
                if window is not None:
                    lo, hi = window
                    x0, y0, x1, y1 = rec.attrs["bbox"]
                    if x1 < lo[0] or x0 > hi[0] or y1 < lo[1] or y0 > hi[1]:
                        action, reason = SKIP, "bbox outside region"
                if action == FETCH and min_significance > 0.0:
                    stats = rec.attrs.get("stats")
                    if (
                        stats is not None
                        and stats["vabs_max"] < min_significance
                    ):
                        action, reason = SKIP, (
                            f"|max| {stats['vabs_max']:.3e} < "
                            f"min_significance {min_significance:g}"
                        )
                self._decide(plan, key, "chunk", lvl, action, reason)
                self._decide(plan, key + "/idx", "index", lvl, action, reason)
                (survivors if action == FETCH else pruned).append(rec)
        if not survivors:
            return survivors, pruned, float("nan")
        parts = []
        for rec in survivors:
            raw = rec.attrs.get("stats")
            if raw is None:
                return survivors, pruned, None
            parts.append(ChunkStats(**raw))
        merged = ChunkStats.merge(parts)
        rms = merged.rms if merged.count else float("nan")
        return survivors, pruned, rms

    def _skip_level(self, plan, var, lvl, reason) -> None:
        meta = self._meta(var)
        if int(meta.get("chunks", 1)) == 1:
            self._decide(plan, delta_key(var, lvl), "delta", lvl, SKIP, reason)
            return
        for c in range(self._level_chunks(var, lvl)):
            key = chunk_key(var, lvl, c)
            self._decide(plan, key, "chunk", lvl, SKIP, reason)
            self._decide(plan, key + "/idx", "index", lvl, SKIP, reason)

    # ------------------------------------------------------------------
    def execute(self, plan: RetrievalPlan) -> LevelData:
        """Run a plan: one batched prefetch, then one engine restore.

        The prefetch moves every surviving product's bytes as a single
        overlapped engine batch — the focused/filtered chain previously
        paid per-level, per-chunk charges — and the restore applies the
        same filters the plan was built with, so it consumes exactly
        the prefetched set. Results are bit-identical to the
        progressive loop with the same arguments.
        """
        window = (
            None
            if plan.region is None
            else tuple(
                np.asarray(b, dtype=np.float64) for b in plan.region
            )
        )
        with trace.span(
            "query.execute", "query",
            {"var": plan.var, "target": plan.target_level,
             "planned_bytes": plan.planned_bytes,
             "pruned_chunks": plan.pruned_chunks},
        ):
            # Geometry already decoded into the shared cache never hits
            # storage again — prefetching its ranges would charge the
            # plan for bytes the restore won't read.
            cache = (
                get_geometry_cache() if self.decoder.share_geometry else None
            )
            keys = [
                d.key
                for d in plan.decisions
                if d.fetched
                and not (
                    cache is not None
                    and d.kind == "geometry"
                    and cache.has(self.dataset, d.key)
                )
            ]
            if keys:
                self.dataset.prefetch(keys, label=f"{plan.var}:query_plan")
            state = self.engine.restore(
                plan.var,
                plan.target_level,
                region=window,
                min_significance=plan.min_significance,
            )
        _bump("query.plan.executed")
        _bump("query.plan.planned_bytes", plan.planned_bytes)
        _bump("query.plan.skipped_bytes", plan.skipped_bytes)
        _bump("query.pruned_chunks", plan.pruned_chunks)
        _bump("query.plan.levels_skipped", len(plan.skipped_levels))
        return state

    def restore(
        self,
        var: str,
        *,
        tolerance: float | None = None,
        level: int | None = None,
        region: tuple | None = None,
        min_significance: float = 0.0,
    ) -> tuple[LevelData, RetrievalPlan]:
        """Plan + execute in one call; returns ``(state, plan)``."""
        plan = self.plan_restore(
            var,
            tolerance=tolerance,
            level=level,
            region=region,
            min_significance=min_significance,
        )
        return self.execute(plan), plan

    # ------------------------------------------------------------------
    def note_plan(self, tracker, plan: RetrievalPlan, now: float) -> int:
        """Feed a plan's fetched products into an access tracker.

        Each fetched product bumps its *subfile* (the tier-file granule
        :meth:`PlacementEngine.plan_replacement` weighs), closing the
        elastic loop: delta levels that queries actually touch gain
        replacement weight and migrate toward fast tiers. Returns the
        number of records noted.
        """
        noted = 0
        for d in plan.decisions:
            if not d.fetched or d.key not in self.dataset.catalog:
                continue
            rec = self.dataset.inq(d.key)
            if rec.subfile:
                tracker.note(rec.subfile, now)
                noted += 1
        return noted
