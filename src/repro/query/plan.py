"""Explainable retrieval plans (the read-side `PlacementPlan`).

A :class:`RetrievalPlan` records, product by product, what one
accuracy-aware query will fetch and what it proved it can skip — the
explainability surface of the planner, mirroring
:class:`~repro.storage.placement.PlacementPlan` on the write/placement
side. Plans are pure data: building one touches only catalog metadata
(per-chunk summaries, bounding boxes, byte lengths), never payload
bytes, so ``plan → inspect → execute`` is the intended workflow and an
unexecuted plan costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PlanDecision", "RetrievalPlan"]

#: Decision actions.
FETCH = "fetch"
SKIP = "skip"


@dataclass(frozen=True)
class PlanDecision:
    """One stored product's fate under the plan, and why.

    ``kind`` distinguishes the base estimate, delta payloads (whole or
    spatially chunked), and geometry (mesh/mapping) products; ``reason``
    is the one-line justification (``"bbox outside region"``,
    ``"tolerance met at level 1"``, ...).
    """

    key: str
    kind: str
    level: int
    nbytes: int
    action: str
    reason: str

    @property
    def fetched(self) -> bool:
        return self.action == FETCH


@dataclass
class RetrievalPlan:
    """Explainable outcome of planning one accuracy-aware retrieval.

    Attributes
    ----------
    var / mode:
        The variable and how the target was chosen: ``"tolerance"``
        (accuracy-driven, from per-level delta summaries) or
        ``"level"`` (explicit level request).
    target_level:
        The level the executed restore will stop at.
    tolerance / region / min_significance:
        The query shape. ``region`` is stored as plain ``(lo, hi)``
        coordinate lists so the plan serializes.
    complete:
        True when every surviving product carried a summary, i.e. the
        planner could *certify* the target level from metadata alone.
        Incomplete plans are advisory — callers fall back to the
        measure-as-you-go progressive loop.
    level_rms:
        Planner-predicted applied-delta RMS per delta level (from the
        count-weighted merge of surviving chunk summaries) — exactly
        the statistic :meth:`ProgressiveReader.refine_until` would
        measure after applying that level.
    """

    var: str
    mode: str
    target_level: int
    tolerance: float | None = None
    region: tuple | None = None
    min_significance: float = 0.0
    complete: bool = True
    decisions: list[PlanDecision] = field(default_factory=list)
    level_rms: dict[int, float] = field(default_factory=dict)

    # -- derived accounting --------------------------------------------
    @property
    def planned_bytes(self) -> int:
        return sum(d.nbytes for d in self.decisions if d.fetched)

    @property
    def skipped_bytes(self) -> int:
        return sum(d.nbytes for d in self.decisions if not d.fetched)

    @property
    def pruned_chunks(self) -> int:
        return sum(
            1
            for d in self.decisions
            if not d.fetched and d.kind == "chunk"
        )

    @property
    def skipped_levels(self) -> list[int]:
        """Delta levels the plan proved it never needs to read."""
        fetched = {d.level for d in self.decisions if d.fetched}
        return sorted(
            {
                d.level
                for d in self.decisions
                if not d.fetched and d.kind in ("delta", "chunk")
            }
            - fetched
        )

    def fetch_keys(self) -> list[str]:
        """Catalog keys to batch through one prefetch, in plan order."""
        return [d.key for d in self.decisions if d.fetched]

    # -- presentation ---------------------------------------------------
    def explain(self) -> str:
        """Human-readable plan dump (one line per product)."""
        shape = [f"target level {self.target_level} ({self.mode})"]
        if self.tolerance is not None:
            shape.append(f"tolerance {self.tolerance:g}")
        if self.region is not None:
            shape.append(f"region {self.region}")
        if self.min_significance:
            shape.append(f"min_significance {self.min_significance:g}")
        lines = [
            f"retrieval plan for {self.var!r}: " + ", ".join(shape),
            f"  fetch {self.planned_bytes} B, skip {self.skipped_bytes} B "
            f"({self.pruned_chunks} chunk(s) pruned; "
            f"certified={self.complete})",
        ]
        for lvl in sorted(self.level_rms, reverse=True):
            lines.append(
                f"  level {lvl}: predicted delta rms "
                f"{self.level_rms[lvl]:.3e}"
            )
        for d in self.decisions:
            lines.append(
                f"  [{d.action}] {d.key}: {d.kind} L{d.level}, "
                f"{d.nbytes} B ({d.reason})"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "var": self.var,
            "mode": self.mode,
            "target_level": self.target_level,
            "tolerance": self.tolerance,
            "region": self.region,
            "min_significance": self.min_significance,
            "complete": self.complete,
            "planned_bytes": self.planned_bytes,
            "skipped_bytes": self.skipped_bytes,
            "pruned_chunks": self.pruned_chunks,
            "level_rms": {str(k): v for k, v in self.level_rms.items()},
            "decisions": [
                {
                    "key": d.key,
                    "kind": d.kind,
                    "level": d.level,
                    "nbytes": d.nbytes,
                    "action": d.action,
                    "reason": d.reason,
                }
                for d in self.decisions
            ],
        }
