"""Accuracy-aware retrieval planning and summary pushdown.

Readers ask for an *answer* — "this field in region R to tolerance τ",
"min/max/mean over R", "blobs above v" — instead of a storage-level
artifact. :class:`QueryPlanner` turns accuracy requests into explainable
:class:`RetrievalPlan`\\ s built purely from the catalog's per-chunk
summaries, and :mod:`repro.query.pushdown` answers statistics/blob
predicates inside the data node, restoring nothing for pruned regions.

See ``docs/query.md`` for planner semantics, the summary format, and
the service routes.
"""

from repro.query.plan import PlanDecision, RetrievalPlan
from repro.query.planner import QueryPlanner, normalize_region
from repro.query.pushdown import blob_query, stats_query

__all__ = [
    "PlanDecision",
    "RetrievalPlan",
    "QueryPlanner",
    "normalize_region",
    "blob_query",
    "stats_query",
]
