"""In-storage predicate evaluation over per-chunk summaries.

OASIS-style analytics offloading: statistics and blob-count predicates
execute *inside the data node* against the catalog's per-chunk
summaries, so a query over a pruned region never restores a full field
— often it touches no payload bytes at all.

Two query shapes:

* :func:`stats_query` — min/max/mean/RMS/count of a variable over an
  optional region, answered from the encoder's ``field_stats``
  summaries (the whole-variable summary for unbounded queries, the
  count-weighted merge of intersecting level-0 chunk summaries for
  windowed ones). **Region semantics are chunk-granular**: a windowed
  aggregate covers every vertex of each chunk whose bounding box
  intersects the window. Datasets without summaries fall back to a
  restore-and-reduce (reported via ``"pushdown": false``).
* :func:`blob_query` — bright-blob detection over a region. Chunk
  summaries prune first: chunks whose recorded field maximum cannot
  reach the threshold are discarded, and when *no* chunk survives the
  answer is "zero blobs" with **zero restores**. Otherwise a single
  focused (region-filtered) restore feeds the paper's raster + blob
  detector over the window only.

Both report what they pruned, and bump ``query.pushdown.*`` /
``query.pruned_chunks`` counters.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.blob import BlobDetectorParams, detect_blobs
from repro.analytics.raster import RasterSpec, rasterize
from repro.core.decode_engine import DecodeEngine
from repro.core.notation import chunk_key
from repro.io.query import ChunkStats
from repro.obs import trace
from repro.query.planner import _bump, normalize_region

__all__ = ["stats_query", "blob_query"]


def _field_stats(attrs: dict) -> ChunkStats | None:
    raw = attrs.get("field_stats")
    return None if raw is None else ChunkStats(**raw)


def _level0_chunk_records(engine: DecodeEngine, var: str) -> list:
    """Level-0 delta chunk records (each carries its original-field
    summary and bbox; together they partition the full-accuracy mesh)."""
    meta = engine.decoder._var_meta(var)
    chunks = int(meta.get("chunks", 1))
    if chunks == 1:
        return []
    n_chunks = int(meta.get("chunks_per_level", {}).get("0", chunks))
    records = []
    for c in range(n_chunks):
        key = chunk_key(var, 0, c)
        if key in engine.dataset.catalog:
            records.append(engine.dataset.inq(key))
    return records


def _intersects(bbox, window) -> bool:
    lo, hi = window
    x0, y0, x1, y1 = bbox
    return not (x1 < lo[0] or x0 > hi[0] or y1 < lo[1] or y0 > hi[1])


def _region_mask(mesh, window) -> np.ndarray:
    v = np.asarray(mesh.vertices, dtype=np.float64)
    lo, hi = window
    return (
        (v[:, 0] >= lo[0]) & (v[:, 0] <= hi[0])
        & (v[:, 1] >= lo[1]) & (v[:, 1] <= hi[1])
    )


def _stats_row(stats: ChunkStats) -> dict:
    return {
        "vmin": stats.vmin,
        "vmax": stats.vmax,
        "vabs_max": stats.vabs_max,
        "mean": stats.mean,
        "rms": stats.rms,
        "count": stats.count,
    }


# ---------------------------------------------------------------------------
def stats_query(
    engine: DecodeEngine, var: str, *, region=None
) -> dict:
    """Aggregate statistics of ``var`` (optionally over a region).

    Answered from catalog summaries whenever they exist — zero payload
    I/O, zero restores. The response records how it was answered:
    ``pushdown`` (summaries vs. restore fallback), ``restores`` (0 on
    the pushdown path), and chunk pruning counts for windowed queries.
    """
    window = normalize_region(region)
    meta = engine.decoder._var_meta(var)
    _bump("query.pushdown.stats_calls")
    with trace.span(
        "query.pushdown.stats", "query",
        {"var": var, "windowed": window is not None},
    ):
        result = {
            "var": var,
            "region": None if window is None else (
                [float(v) for v in window[0]],
                [float(v) for v in window[1]],
            ),
            "granularity": "exact" if window is None else "chunk",
            "restores": 0,
            "chunks": 0,
            "pruned_chunks": 0,
        }
        if window is None:
            whole = _field_stats(meta)
            if whole is not None:
                _bump("query.pushdown.summary_hits")
                result.update(pushdown=True, stats=_stats_row(whole))
                return result
        else:
            records = _level0_chunk_records(engine, var)
            if records:
                hits = [r for r in records if _intersects(r.attrs["bbox"], window)]
                pruned = len(records) - len(hits)
                parts = [_field_stats(r.attrs) for r in hits]
                if all(p is not None for p in parts):
                    _bump("query.pushdown.summary_hits")
                    _bump("query.pruned_chunks", pruned)
                    merged = ChunkStats.merge(parts)
                    result.update(
                        pushdown=True,
                        chunks=len(hits),
                        pruned_chunks=pruned,
                        stats=_stats_row(merged),
                    )
                    return result

        # Fallback: datasets written before summaries existed. Restore
        # the full field once and reduce exactly over the window.
        _bump("query.pushdown.fallback_restores")
        state = engine.restore(var, 0)
        values = state.field
        if window is not None:
            mask = _region_mask(state.mesh, window)
            values = values[..., mask]
            result["granularity"] = "exact"
        result.update(
            pushdown=False,
            restores=1,
            stats=_stats_row(ChunkStats.of(values)),
        )
        return result


# ---------------------------------------------------------------------------
def blob_query(
    engine: DecodeEngine,
    var: str,
    *,
    threshold: float,
    region=None,
    shape: tuple[int, int] = (128, 128),
    params: BlobDetectorParams | None = None,
) -> dict:
    """Count/locate bright blobs of ``var`` above a field-value threshold.

    Summary pruning first: a chunk whose recorded field maximum is below
    ``threshold`` provably contains no blob pixel, so a window where
    every chunk is pruned answers "no blobs" without restoring anything.
    Surviving windows pay one *focused* restore (delta chunks outside
    the window are never read) and run the paper's raster + blob
    detector over the window only. Blob centers come back in world
    coordinates (pixel-center mapping of the raster grid).
    """
    window = normalize_region(region)
    _bump("query.pushdown.blob_calls")
    with trace.span(
        "query.pushdown.blobs", "query",
        {"var": var, "threshold": threshold,
         "windowed": window is not None},
    ):
        meta = engine.decoder._var_meta(var)
        result = {
            "var": var,
            "threshold": float(threshold),
            "region": None if window is None else (
                [float(v) for v in window[0]],
                [float(v) for v in window[1]],
            ),
            "restores": 0,
            "candidate_chunks": 0,
            "pruned_chunks": 0,
            "count": 0,
            "blobs": [],
        }
        records = _level0_chunk_records(engine, var)
        candidates = []
        if records:
            for rec in records:
                if window is not None and not _intersects(
                    rec.attrs["bbox"], window
                ):
                    continue
                fs = _field_stats(rec.attrs)
                if fs is not None and fs.vmax < threshold:
                    continue  # provably below threshold everywhere
                candidates.append(rec)
            pruned = len(records) - len(candidates)
            result["candidate_chunks"] = len(candidates)
            result["pruned_chunks"] = pruned
            _bump("query.pruned_chunks", pruned)
            if not candidates:
                # Every chunk pruned from summaries: zero payload bytes,
                # zero restores, provably zero blobs.
                _bump("query.pushdown.summary_hits")
                result["pushdown"] = True
                return result
        else:
            whole = _field_stats(meta)
            if whole is not None and whole.vmax < threshold:
                _bump("query.pushdown.summary_hits")
                result["pushdown"] = True
                return result

        # Window (or whole domain) may contain blobs: one focused
        # restore, rasterize the window, detect.
        _bump("query.pushdown.blob_restores")
        state = engine.restore(var, 0, region=window)
        result["restores"] = 1
        result["pushdown"] = bool(result["pruned_chunks"])
        if window is None:
            lo, hi = state.mesh.bounding_box()
        else:
            lo, hi = window
        whole = _field_stats(meta)
        field = np.asarray(state.plane(0), dtype=np.float64)
        vmin = whole.vmin if whole is not None else float(field.min())
        vmax = whole.vmax if whole is not None else float(field.max())
        if vmax <= vmin:
            vmax = vmin + 1.0
        spec = RasterSpec(
            shape=tuple(shape),
            bounds=(tuple(float(v) for v in lo), tuple(float(v) for v in hi)),
            vmin=vmin,
            vmax=vmax,
        )
        image = rasterize(state.mesh, field, spec)
        if params is None:
            # Field-value threshold → intensity threshold under the
            # spec's fixed normalization.
            t = 255.0 * (threshold - vmin) / (vmax - vmin)
            t = float(np.clip(t, 1.0, 254.0))
            params = BlobDetectorParams(
                min_threshold=t,
                max_threshold=255.0,
                threshold_step=max(1.0, (255.0 - t) / 8.0),
                min_area=4.0,
                max_area=float(shape[0] * shape[1]),
                min_repeatability=1,
            )
        blobs = detect_blobs(image, params)
        ny, nx = spec.shape
        span = (hi[0] - lo[0], hi[1] - lo[1])
        result["count"] = len(blobs)
        result["blobs"] = [
            {
                "center": [
                    float(lo[0] + (b.center[0] + 0.5) * span[0] / nx),
                    float(lo[1] + (b.center[1] + 0.5) * span[1] / ny),
                ],
                "diameter": float(b.diameter),
                "area": float(b.area),
                "repeatability": int(b.repeatability),
            }
            for b in blobs
        ]
        return result
