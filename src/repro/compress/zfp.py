"""ZFP-style fixed-accuracy floating-point codec.

ZFP (Lindstrom 2014) compresses blocks of floating-point values by
aligning them to a block-common exponent, applying a reversible integer
decorrelating transform, reordering coefficients by expected magnitude,
and embedded-coding the result so truncation yields a bounded error.

This from-scratch reproduction keeps each of those mechanisms in a
1-D form suitable for per-vertex unstructured-mesh data:

* values are quantized to a uniform step derived from the error
  tolerance (fixed-accuracy mode), giving a hard ``|x − x̂| ≤ step/2``
  guarantee;
* each 16-value block is decorrelated by a 4-level reversible integer
  S-transform (Haar lifting), the 1-D analogue of ZFP's lifted block
  transform — smooth input concentrates energy in the low-frequency
  classes and drives the detail coefficients toward zero;
* coefficients are mapped to unsigned via zigzag and grouped into five
  frequency classes ``[DC, d4, d3, d2, d1]``; each class in each block is
  stored at the minimal bit width for its largest coefficient (the
  embedded-coding analogue: leading-zero planes cost nothing but the
  7-bit width field).

The *smoother the signal, the smaller the payload* — which is exactly the
property Canopus exploits when it feeds deltas instead of raw levels to
the compressor (paper Fig. 5: "Canopus serves as a pre-conditioner for
compression algorithms").

A ``tolerance=0`` codec degrades to a lossless fallback (byte-shuffled
zlib), since quantization cannot be exact.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import Compressor, register_codec
from repro.compress.bitstream import pack_uint, unpack_uint, unpack_uint_segments
from repro.compress.lossless import shuffle_compress, shuffle_decompress
from repro.errors import CompressionError

__all__ = ["ZFPCompressor", "BLOCK", "CLASS_SIZES"]

BLOCK = 16
#: Coefficient class sizes after the 4-level transform: DC, then detail
#: levels from coarsest to finest.
CLASS_SIZES = (1, 1, 2, 4, 8)
_N_CLASSES = len(CLASS_SIZES)
_WIDTH_BITS = 7  # widths are 0..64
# Quantized magnitudes above 2**_MAX_QBITS risk int64 overflow inside the
# transform (which can grow values by ~BLOCK).
_MAX_QBITS = 58

_MODE_CONSTANT = 0
_MODE_CODED = 1
_MODE_LOSSLESS = 2


def _forward_transform(q: np.ndarray) -> np.ndarray:
    """4-level integer S-transform over (nblocks, 16) int64.

    Returns coefficients ordered ``[DC, d4, d3(2), d2(4), d1(8)]``.
    Exactly invertible in integer arithmetic.
    """
    x = q
    details = []
    for _ in range(4):
        a = x[:, 0::2]
        b = x[:, 1::2]
        d = a - b
        s = b + (d >> 1)  # floor((a + b) / 2)
        details.append(d)
        x = s
    # x is (nblocks, 1) DC; details are fine→coarse, so reverse.
    return np.concatenate([x] + details[::-1], axis=1)


def _inverse_transform(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_forward_transform`."""
    s = coeffs[:, :1]
    pos = 1
    for level in range(4):  # coarse → fine
        size = 1 << level
        d = coeffs[:, pos : pos + size]
        pos += size
        b = s - (d >> 1)
        a = d + b
        out = np.empty((coeffs.shape[0], 2 * size), dtype=np.int64)
        out[:, 0::2] = a
        out[:, 1::2] = b
        s = out
    return s


def _zigzag(q: np.ndarray) -> np.ndarray:
    """Map signed int64 → unsigned uint64 with |q| monotone."""
    return ((q << 1) ^ (q >> 63)).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.uint64)
    return ((u >> np.uint64(1)) ^ (~(u & np.uint64(1)) + np.uint64(1))).astype(
        np.int64
    )


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Exact per-element bit length of uint64 values (vectorized)."""
    v = values.astype(np.uint64).copy()
    bits = np.zeros(v.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = (v >> np.uint64(shift)) > 0
        bits[mask] += shift
        v[mask] >>= np.uint64(shift)
    bits[values > 0] += 1
    return bits


class ZFPCompressor(Compressor):
    """Fixed-accuracy / fixed-rate ZFP-style codec.

    Parameters
    ----------
    tolerance:
        Absolute error bound (mode="absolute") or fraction of the data
        range (mode="relative"). ``0`` selects the lossless fallback.
    mode:
        ``"absolute"`` or ``"relative"``.
    rate:
        Fixed-rate mode (like ZFP's ``-r``): target *bits per value*,
        1..64. Overrides ``tolerance``; the encoder picks the largest
        quantization step whose payload fits the byte budget
        ``ceil(rate × n / 8)``, so output size is predictable — what a
        capacity-planned tier placement needs. Error is then data-
        dependent (no hard bound).
    """

    name = "zfp"

    def __init__(
        self,
        tolerance: float = 1e-6,
        mode: str = "absolute",
        rate: float | None = None,
    ):
        if tolerance < 0:
            raise CompressionError("tolerance must be >= 0")
        if mode not in ("absolute", "relative"):
            raise CompressionError(f"unknown mode {mode!r}")
        if rate is not None and not 1.0 <= rate <= 64.0:
            raise CompressionError("rate must be in [1, 64] bits/value")
        self.tolerance = float(tolerance)
        self.mode = mode
        self.rate = rate
        self.lossless = tolerance == 0.0 and rate is None

    def max_error(self) -> float:
        """Absolute-mode bound; relative/rate modes are data-dependent."""
        if self.lossless or self.rate is not None:
            return 0.0 if self.lossless else float("inf")
        return self.tolerance

    # ------------------------------------------------------------------
    def _encode_payload(self, data: np.ndarray) -> bytes:
        if data.size == 0:
            return struct.pack("<Bd", _MODE_CONSTANT, 0.0)
        if self.lossless:
            return struct.pack("<B", _MODE_LOSSLESS) + shuffle_compress(data)

        lo = float(data.min())
        hi = float(data.max())
        if hi == lo:
            return struct.pack("<Bd", _MODE_CONSTANT, lo)

        if self.rate is not None:
            return self._encode_fixed_rate(data, lo, hi)

        if self.mode == "relative":
            step = self.tolerance * (hi - lo)
        else:
            step = self.tolerance
        if step <= 0:
            return struct.pack("<B", _MODE_LOSSLESS) + shuffle_compress(data)
        # Quantization error is step/2; use the full budget.
        step = 2.0 * step
        return self._encode_with_step(data, step, lo, hi)

    def _encode_fixed_rate(
        self, data: np.ndarray, lo: float, hi: float
    ) -> bytes:
        """Pick the finest step whose payload fits the rate budget.

        Payload size is monotone non-increasing in the step, so an
        integer bisection over the step exponent converges in ~7 probes.
        """
        budget = int(np.ceil(self.rate * data.size / 8.0))
        span_exp = int(np.ceil(np.log2(max(hi - lo, 1e-300))))
        exp_lo = span_exp - 62  # finest step we can quantize with
        exp_hi = span_exp + 2  # coarser than the range → ~1 bit/block
        best: bytes | None = None
        while exp_lo <= exp_hi:
            mid = (exp_lo + exp_hi) // 2
            blob = self._encode_with_step(data, 2.0**mid, lo, hi)
            if len(blob) <= budget:
                best = blob
                exp_hi = mid - 1  # fits → try a finer step
            else:
                exp_lo = mid + 1
        if best is None:
            # Even the coarsest step misses the budget (tiny arrays where
            # headers dominate); fall back to the coarsest encoding.
            best = self._encode_with_step(data, 2.0 ** (span_exp + 2), lo, hi)
        return best

    def _encode_with_step(
        self, data: np.ndarray, step: float, lo: float, hi: float
    ) -> bytes:
        if max(abs(lo), abs(hi)) / step >= 2.0**_MAX_QBITS:
            raise CompressionError(
                "tolerance too small relative to data magnitude "
                f"(needs > {_MAX_QBITS} bits per value)"
            )

        n = data.size
        nblocks = (n + BLOCK - 1) // BLOCK
        padded = np.empty(nblocks * BLOCK, dtype=np.float64)
        padded[:n] = data
        padded[n:] = data[-1]  # edge replication → zero detail coefficients

        q = np.round(padded / step).astype(np.int64).reshape(nblocks, BLOCK)
        coeffs = _forward_transform(q)
        u = _zigzag(coeffs)

        # Per-block per-class minimal widths.
        widths = np.empty((nblocks, _N_CLASSES), dtype=np.int64)
        pos = 0
        for c, size in enumerate(CLASS_SIZES):
            seg = u[:, pos : pos + size]
            pos += size
            widths[:, c] = _bit_lengths(seg.max(axis=1))

        header = struct.pack("<BdQ", _MODE_CODED, step, nblocks)
        width_bytes = pack_uint(widths.ravel(), _WIDTH_BITS).tobytes()

        # Payload: class-major, then ascending width; block order within a
        # (class, width) group. Deterministic given the widths header.
        parts: list[bytes] = []
        pos = 0
        for c, size in enumerate(CLASS_SIZES):
            seg = u[:, pos : pos + size]
            pos += size
            wc = widths[:, c]
            for w in np.unique(wc):
                if w == 0:
                    continue
                members = seg[wc == w].ravel()
                parts.append(pack_uint(members, int(w)).tobytes())
        return header + width_bytes + b"".join(parts)

    # ------------------------------------------------------------------
    def _decode_payload(self, payload: bytes, count: int) -> np.ndarray:
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        mode = payload[0]
        if mode == _MODE_CONSTANT:
            (value,) = struct.unpack_from("<d", payload, 1)
            return np.full(count, value, dtype=np.float64)
        if mode == _MODE_LOSSLESS:
            return shuffle_decompress(payload[1:], count)
        if mode != _MODE_CODED:
            raise CompressionError(f"corrupt zfp payload (mode={mode})")

        step, nblocks = struct.unpack_from("<dQ", payload, 1)
        offset = 1 + 16
        n_width_vals = nblocks * _N_CLASSES
        width_nbytes = (n_width_vals * _WIDTH_BITS + 7) // 8
        width_area = np.frombuffer(
            payload, dtype=np.uint8, count=width_nbytes, offset=offset
        )
        widths = unpack_uint(width_area, n_width_vals, _WIDTH_BITS).reshape(
            nblocks, _N_CLASSES
        ).astype(np.int64)
        body = np.frombuffer(payload, dtype=np.uint8, offset=offset + width_nbytes)

        # Walk the class-major / ascending-width group layout once to
        # recover every group's (bit offset, member count, width), then
        # decode all groups in one batched pass — the widths header
        # fully determines the layout, and each group was packed
        # separately so it starts and ends on a byte boundary.
        groups: list[tuple[int, int, np.ndarray]] = []  # (class, width, sel)
        segments: list[tuple[int, int, int]] = []
        bitpos = 0
        for c, size in enumerate(CLASS_SIZES):
            wc = widths[:, c]
            for w in np.unique(wc):
                if w == 0:
                    continue
                sel = wc == w
                n_members = int(sel.sum()) * size
                groups.append((c, int(w), sel))
                segments.append((bitpos, n_members, int(w)))
                bitpos += (n_members * int(w) + 7) // 8 * 8

        u = np.zeros((nblocks, BLOCK), dtype=np.uint64)
        class_pos = np.concatenate(([0], np.cumsum(CLASS_SIZES)))
        for (c, _w, sel), vals in zip(
            groups, unpack_uint_segments(body, segments)
        ):
            size = CLASS_SIZES[c]
            pos = int(class_pos[c])
            u[sel, pos : pos + size] = vals.reshape(-1, size)

        coeffs = _unzigzag(u)
        q = _inverse_transform(coeffs)
        out = q.astype(np.float64).ravel() * step
        return out[:count]


def _factory(**params) -> ZFPCompressor:
    return ZFPCompressor(**params)


register_codec("zfp", _factory)
