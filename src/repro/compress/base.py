"""Compressor interface and registry.

Canopus treats the floating-point compressor as a pluggable stage
(paper §III-C3: "Canopus has integrated ZFP … We are in the process of
integrating other compression libraries such as SZ and FPC"). Codecs here
are self-describing: ``encode`` produces a payload whose header records the
codec name, dtype, and length, so ``decode_auto`` can reverse any payload
without out-of-band context — mirroring how ADIOS stores the transform id
in variable metadata.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import CompressionError, UnknownCodecError
from repro.obs import trace

__all__ = [
    "Compressor",
    "CompressionResult",
    "register_codec",
    "get_codec",
    "available_codecs",
    "decode_auto",
    "compress_with_stats",
]

_MAGIC = b"RPC1"  # repro-compressor container, version 1


class Compressor(ABC):
    """Abstract floating-point codec.

    Subclasses implement :meth:`_encode_payload` / :meth:`_decode_payload`
    on raw float64 arrays; the base class wraps payloads in a
    self-describing envelope.
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: True when decode(encode(x)) == x exactly.
    lossless: bool = False

    # -- envelope -------------------------------------------------------
    def encode(self, data: np.ndarray) -> bytes:
        """Compress a 1-D float array into a self-describing payload."""
        tracer = trace.get_tracer()
        if tracer is None:
            return self._encode(data)
        arr = np.ascontiguousarray(data, dtype=np.float64).ravel()
        with tracer.span(
            f"codec.{self.name}.encode", "compress", {"codec": self.name}
        ) as sp:
            blob = self._encode(arr)
            sp.note(in_bytes=int(arr.nbytes), out_bytes=len(blob))
            tracer.metrics.counter(
                "codec.bytes_in", codec=self.name, op="encode"
            ).inc(int(arr.nbytes))
            tracer.metrics.counter(
                "codec.bytes_out", codec=self.name, op="encode"
            ).inc(len(blob))
            return blob

    def _encode(self, data: np.ndarray) -> bytes:
        data = np.ascontiguousarray(data, dtype=np.float64).ravel()
        if data.size and not np.isfinite(data).all():
            raise CompressionError(
                f"{self.name}: non-finite values are not supported"
            )
        payload = self._encode_payload(data)
        name_b = self.name.encode("ascii")
        header = _MAGIC + struct.pack(
            "<BQ", len(name_b), data.size
        ) + name_b
        return header + payload

    def decode(self, blob: bytes) -> np.ndarray:
        """Decompress a payload produced by this codec."""
        tracer = trace.get_tracer()
        if tracer is None:
            return self._decode(blob)
        with tracer.span(
            f"codec.{self.name}.decode", "compress",
            {"codec": self.name, "in_bytes": len(blob)},
        ):
            return self._decode(blob)

    def _decode(self, blob: bytes) -> np.ndarray:
        name, count, payload = _split_envelope(blob)
        if name != self.name:
            raise CompressionError(
                f"payload was encoded with {name!r}, not {self.name!r}"
            )
        out = self._decode_payload(payload, count)
        if out.size != count:
            raise CompressionError(
                f"{self.name}: decoded {out.size} values, expected {count}"
            )
        return out

    @abstractmethod
    def _encode_payload(self, data: np.ndarray) -> bytes:
        """Codec-specific body encoding (data is float64, 1-D, finite)."""

    @abstractmethod
    def _decode_payload(self, payload: bytes, count: int) -> np.ndarray:
        """Codec-specific body decoding; must return ``count`` float64s."""

    def max_error(self) -> float:
        """Guaranteed absolute error bound (0 for lossless codecs)."""
        return 0.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _split_envelope(blob: bytes) -> tuple[str, int, bytes]:
    if len(blob) < 13 or blob[:4] != _MAGIC:
        raise CompressionError("not a repro compressor payload")
    name_len, count = struct.unpack_from("<BQ", blob, 4)
    name = blob[13 : 13 + name_len].decode("ascii")
    return name, count, blob[13 + name_len :]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., Compressor]] = {}


def register_codec(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a codec factory under ``name`` (idempotent overwrite)."""
    _REGISTRY[name] = factory


def get_codec(name: str, **params) -> Compressor:
    """Instantiate a registered codec, e.g. ``get_codec("zfp", tolerance=1e-3)``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownCodecError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**params)


def available_codecs() -> list[str]:
    return sorted(_REGISTRY)


def decode_auto(blob: bytes, **params) -> np.ndarray:
    """Decode any payload by dispatching on its embedded codec name.

    ``params`` are forwarded to the codec factory (lossy codecs ignore
    the tolerance on decode, so defaults usually suffice).
    """
    name, _, _ = _split_envelope(blob)
    codec = get_codec(name, **params)
    return codec.decode(blob)


# ---------------------------------------------------------------------------
# measurement helper
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CompressionResult:
    """Round-trip measurement of one codec on one array."""

    codec: str
    original_bytes: int
    compressed_bytes: int
    max_abs_error: float
    encode_seconds: float
    decode_seconds: float

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed); >1 is a win."""
        return self.original_bytes / max(1, self.compressed_bytes)

    @property
    def normalized_size(self) -> float:
        """Compressed / original, the paper's Fig. 5 y-axis."""
        return self.compressed_bytes / max(1, self.original_bytes)


def compress_with_stats(codec: Compressor, data: np.ndarray) -> CompressionResult:
    """Encode + decode once, returning sizes, error, and timings."""
    import time

    data = np.ascontiguousarray(data, dtype=np.float64).ravel()
    t0 = time.perf_counter()
    blob = codec.encode(data)
    t1 = time.perf_counter()
    out = codec.decode(blob)
    t2 = time.perf_counter()
    err = float(np.max(np.abs(out - data))) if data.size else 0.0
    return CompressionResult(
        codec=codec.name,
        original_bytes=data.nbytes,
        compressed_bytes=len(blob),
        max_abs_error=err,
        encode_seconds=t1 - t0,
        decode_seconds=t2 - t1,
    )
