"""FPC-style lossless double-precision codec.

FPC (Burtscher & Ratanaworabhan 2009) predicts each double with two
context predictors (FCM and DFCM), XORs the value with the better
prediction, and encodes the XOR residual as a leading-zero-byte count
plus the nonzero remainder bytes.

Two predictor configurations are provided:

* ``"delta"`` (default) — predict by the previous value. This keeps
  FPC's residual coding stage intact while remaining fully vectorizable
  (the XOR chain has no sequential hash state). It is the configuration
  used inside the pipelines.
* ``"fcm"`` / ``"dfcm"`` — faithful sequential reference predictors with
  hash tables, as in the paper. O(n) Python loops; used by the tests and
  the compressor ablation on modest sizes.

Like FPC, the leading-zero-byte count is encoded in 3 bits covering
{0,1,2,3,5,6,7,8} (a count of 4 is stored as 3 — one extra byte), and
two headers share a byte.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import Compressor, register_codec
from repro.errors import CompressionError

__all__ = ["FPCCompressor"]

# lzb values representable in 3 bits, FPC-style (4 is mapped down to 3).
_LZB_CODES = np.array([0, 1, 2, 3, 5, 6, 7, 8], dtype=np.int64)
_CODE_OF_LZB = np.array([0, 1, 2, 3, 3, 4, 5, 6, 7], dtype=np.uint8)
_TABLE_BITS = 12  # predictor hash-table size = 2**bits


def _leading_zero_bytes(x: np.ndarray) -> np.ndarray:
    """Leading-zero-byte count (0..8) of uint64 values, vectorized."""
    lzb = np.full(x.shape, 8, dtype=np.int64)
    found = np.zeros(x.shape, dtype=bool)
    for byte in range(8):
        b = (x >> np.uint64(56 - 8 * byte)) & np.uint64(0xFF)
        hit = (~found) & (b != 0)
        lzb[hit] = byte
        found |= hit
    return lzb


def _residual_bytes(x: np.ndarray, nbytes: np.ndarray) -> bytes:
    """Big-endian tail bytes of each value, keeping the low ``nbytes``."""
    be = x.astype(">u8").view(np.uint8).reshape(-1, 8)
    parts = []
    for nb in range(1, 9):
        sel = nbytes == nb
        if sel.any():
            parts.append((nb, np.flatnonzero(sel), be[sel, 8 - nb :]))
    total = int(nbytes.sum())
    out = np.empty(total, dtype=np.uint8)
    offsets = np.zeros(len(x) + 1, dtype=np.int64)
    np.cumsum(nbytes, out=offsets[1:])
    for nb, idx, chunk in parts:
        starts = offsets[idx]
        pos = starts[:, None] + np.arange(nb)[None, :]
        out[pos.ravel()] = chunk.ravel()
    return out.tobytes()


def _sequential_predict(data_u64: np.ndarray, kind: str) -> np.ndarray:
    """Reference FCM/DFCM prediction stream (sequential, as in the paper)."""
    n = data_u64.size
    pred = np.zeros(n, dtype=np.uint64)
    size = 1 << _TABLE_BITS
    mask = size - 1
    table = [0] * size
    hash_ = 0
    last = 0
    for i in range(n):
        if kind == "fcm":
            pred[i] = table[hash_]
            table[hash_] = int(data_u64[i])
            hash_ = ((hash_ << 6) ^ (int(data_u64[i]) >> 48)) & mask
        else:  # dfcm: predict the delta
            pred[i] = (table[hash_] + last) & 0xFFFFFFFFFFFFFFFF
            delta = (int(data_u64[i]) - last) & 0xFFFFFFFFFFFFFFFF
            table[hash_] = delta
            hash_ = ((hash_ << 2) ^ (delta >> 40)) & mask
            last = int(data_u64[i])
    return pred


class FPCCompressor(Compressor):
    """Lossless XOR-predictive codec (see module docstring)."""

    name = "fpc"
    lossless = True

    def __init__(self, predictor: str = "delta"):
        if predictor not in ("delta", "fcm", "dfcm"):
            raise CompressionError(f"unknown predictor {predictor!r}")
        self.predictor = predictor

    # ------------------------------------------------------------------
    def _encode_payload(self, data: np.ndarray) -> bytes:
        if data.size == 0:
            return struct.pack("<B", 0)
        u = data.view(np.uint64)
        if self.predictor == "delta":
            pred = np.empty_like(u)
            pred[0] = 0
            pred[1:] = u[:-1]
        else:
            pred = _sequential_predict(u, self.predictor)
        resid = u ^ pred

        lzb = _leading_zero_bytes(resid)
        codes = _CODE_OF_LZB[lzb]
        nbytes = 8 - _LZB_CODES[codes]  # lzb=4 stored as 3 → 5 tail bytes

        # Two 3-bit codes per header byte (4 bits each with a spare bit,
        # mirroring FPC's 1-bit predictor selector slot).
        padded = codes
        if padded.size % 2:
            padded = np.append(padded, 0)
        headers = ((padded[0::2] << 4) | padded[1::2]).astype(np.uint8)
        body = _residual_bytes(resid, nbytes)
        return (
            struct.pack("<B", {"delta": 0, "fcm": 1, "dfcm": 2}[self.predictor])
            + headers.tobytes()
            + body
        )

    # ------------------------------------------------------------------
    def _decode_payload(self, payload: bytes, count: int) -> np.ndarray:
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        kind = payload[0]
        n_header = (count + 1) // 2
        headers = np.frombuffer(payload, dtype=np.uint8, count=n_header, offset=1)
        codes = np.empty(n_header * 2, dtype=np.uint8)
        codes[0::2] = headers >> 4
        codes[1::2] = headers & 0x0F
        codes = codes[:count]
        nbytes = 8 - _LZB_CODES[codes]

        body = np.frombuffer(payload, dtype=np.uint8, offset=1 + n_header)
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(nbytes, out=offsets[1:])
        if offsets[-1] != body.size:
            raise CompressionError("fpc: residual byte stream truncated")

        resid = np.zeros(count, dtype=np.uint64)
        for nb in range(1, 9):
            sel = nbytes == nb
            if not sel.any():
                continue
            starts = offsets[:-1][sel]
            pos = starts[:, None] + np.arange(nb)[None, :]
            chunk = body[pos]  # (k, nb) big-endian tail bytes
            vals = np.zeros(chunk.shape[0], dtype=np.uint64)
            for b in range(nb):
                vals = (vals << np.uint64(8)) | chunk[:, b].astype(np.uint64)
            resid[sel] = vals

        if kind == 0:
            # XOR-prefix reconstruction: u[i] = resid[i] ^ u[i-1], i.e. a
            # prefix XOR. NumPy has no cumulative-XOR primitive, but it is a
            # Hillis–Steele scan: successive doubling, log2(n) passes.
            u = resid.copy()
            shift = 1
            while shift < count:
                u[shift:] ^= u[:-shift].copy()
                shift *= 2
        elif kind in (1, 2):
            # Sequential reference predictors must replay the table updates.
            u = np.empty(count, dtype=np.uint64)
            size = 1 << _TABLE_BITS
            mask = size - 1
            table = [0] * size
            hash_ = 0
            last = 0
            for i in range(count):
                if kind == 1:
                    value = int(resid[i]) ^ table[hash_]
                    table[hash_] = value
                    hash_ = ((hash_ << 6) ^ (value >> 48)) & mask
                else:
                    pred = (table[hash_] + last) & 0xFFFFFFFFFFFFFFFF
                    value = int(resid[i]) ^ pred
                    delta = (value - last) & 0xFFFFFFFFFFFFFFFF
                    table[hash_] = delta
                    hash_ = ((hash_ << 2) ^ (delta >> 40)) & mask
                    last = value
                u[i] = value
        else:
            raise CompressionError(f"corrupt fpc payload (kind={kind})")
        return u.view(np.float64).copy()


register_codec("fpc", lambda **p: FPCCompressor(**p))
