"""Lossless helpers shared by the codecs.

``shuffle_compress`` byte-transposes the float64 stream before zlib —
the classic "byte shuffle" filter (as in HDF5/Blosc): byte *k* of every
value is grouped together, so slowly-varying exponent/top-mantissa bytes
form long runs that deflate well. This is the lossless fallback used by
the ZFP-style codec at ``tolerance=0`` and by the raw/"none" codec.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compress.base import Compressor, register_codec
from repro.errors import CompressionError

__all__ = [
    "shuffle_compress",
    "shuffle_decompress",
    "RawCompressor",
    "DeflateCompressor",
]

_ITEM = 8  # float64


def shuffle_compress(data: np.ndarray, level: int = 6) -> bytes:
    """Byte-shuffle a float64 array and deflate it."""
    data = np.ascontiguousarray(data, dtype=np.float64)
    raw = data.view(np.uint8).reshape(-1, _ITEM)
    shuffled = np.ascontiguousarray(raw.T)
    return zlib.compress(shuffled.tobytes(), level)


def shuffle_decompress(blob: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`shuffle_compress`."""
    raw = zlib.decompress(bytes(blob))
    if len(raw) != count * _ITEM:
        raise CompressionError(
            f"shuffle payload holds {len(raw)} bytes, expected {count * _ITEM}"
        )
    arr = np.frombuffer(raw, dtype=np.uint8).reshape(_ITEM, count)
    return np.ascontiguousarray(arr.T).view(np.float64).ravel().copy()


class RawCompressor(Compressor):
    """Identity codec: stores the raw float64 bytes.

    The "no reduction" baseline; useful for isolating I/O costs in the
    pipeline benchmarks.
    """

    name = "raw"
    lossless = True

    def _encode_payload(self, data: np.ndarray) -> bytes:
        return data.tobytes()

    def _decode_payload(self, payload: bytes, count: int) -> np.ndarray:
        if len(payload) != count * _ITEM:
            raise CompressionError("raw payload size mismatch")
        return np.frombuffer(payload, dtype=np.float64).copy()


class DeflateCompressor(Compressor):
    """Byte-shuffled zlib — a generic lossless floating-point compressor.

    Stands in for the "lossless compression usually achieves less than a
    2X reduction ratio" baseline the paper cites (§V).
    """

    name = "deflate"
    lossless = True

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise CompressionError("zlib level must be 0..9")
        self.level = level

    def _encode_payload(self, data: np.ndarray) -> bytes:
        return struct.pack("<B", self.level) + shuffle_compress(data, self.level)

    def _decode_payload(self, payload: bytes, count: int) -> np.ndarray:
        return shuffle_decompress(payload[1:], count)


register_codec("raw", lambda **p: RawCompressor(**p))
register_codec("deflate", lambda **p: DeflateCompressor(**p))
