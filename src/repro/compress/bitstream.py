"""Bit-level packing primitives.

The ZFP-style codec stores each block's transform coefficients at a
per-class bit width, so payloads are not byte aligned. These helpers pack
and unpack fixed-width unsigned integers into a dense MSB-first bit
stream using vectorized NumPy (``packbits``/shift tricks) — a Python
per-bit loop would dominate the entire encode cost.

Two layers:

* :func:`pack_uint` / :func:`unpack_uint` — bulk fixed-width codecs over
  whole arrays (the fast path);
* :class:`BitWriter` / :class:`BitReader` — a streaming interface for
  composing several bulk segments plus small scalar headers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitstreamError

__all__ = ["pack_uint", "unpack_uint", "BitWriter", "BitReader"]


def pack_uint(values: np.ndarray, width: int) -> np.ndarray:
    """Pack unsigned integers into an MSB-first bit array of uint8.

    Parameters
    ----------
    values:
        1-D array of non-negative integers, each representable in
        ``width`` bits.
    width:
        Bits per value, 0..64. Width 0 packs nothing.

    Returns
    -------
    uint8 array of ``ceil(len(values) * width / 8)`` bytes.
    """
    if not 0 <= width <= 64:
        raise BitstreamError(f"width must be in [0, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if width == 0 or values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if width < 64 and values.size and int(values.max()) >> width:
        raise BitstreamError(
            f"value {int(values.max())} does not fit in {width} bits"
        )
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel())


def unpack_uint(
    packed: np.ndarray, count: int, width: int, bit_offset: int = 0
) -> np.ndarray:
    """Inverse of :func:`pack_uint`.

    Parameters
    ----------
    packed:
        uint8 array holding the bit stream.
    count:
        Number of values to decode.
    width:
        Bits per value.
    bit_offset:
        Starting bit position within ``packed``.
    """
    if not 0 <= width <= 64:
        raise BitstreamError(f"width must be in [0, 64], got {width}")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    end_bit = bit_offset + count * width
    if end_bit > packed.size * 8:
        raise BitstreamError(
            f"bitstream underflow: need {end_bit} bits, have {packed.size * 8}"
        )
    first_byte = bit_offset // 8
    last_byte = (end_bit + 7) // 8
    bits = np.unpackbits(packed[first_byte:last_byte])
    start = bit_offset - first_byte * 8
    bits = bits[start : start + count * width].reshape(count, width)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (bits.astype(np.uint64) << shifts[None, :]).sum(
        axis=1, dtype=np.uint64
    )


class BitWriter:
    """Accumulates bit segments; finalizes to bytes.

    Segments are byte-concatenated lazily; scalar writes go through a
    small staging buffer. All positions are tracked in bits so readers
    can mirror the layout exactly.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._bitpos = 0

    @property
    def bit_position(self) -> int:
        return self._bitpos

    def write_uint(self, value: int, width: int) -> None:
        """Write a single unsigned integer of ``width`` bits."""
        self.write_array(np.array([value], dtype=np.uint64), width)

    def write_array(self, values: np.ndarray, width: int) -> None:
        """Write a fixed-width array segment (bit-aligned, no padding)."""
        packed = pack_uint(values, width)
        nbits = len(np.atleast_1d(values)) * width
        self._chunks.append((packed, nbits))  # type: ignore[arg-type]
        self._bitpos += nbits

    def getvalue(self) -> bytes:
        """Concatenate all segments into a dense byte string."""
        if not self._chunks:
            return b""
        # Fast path: all segments byte-aligned at their joints.
        total_bits = 0
        aligned = True
        for _, nbits in self._chunks:  # type: ignore[misc]
            if total_bits % 8:
                aligned = False
                break
            total_bits += nbits
        if aligned:
            return b"".join(
                chunk.tobytes() for chunk, _ in self._chunks  # type: ignore[misc]
            )
        # General path: re-expand to bits and repack once.
        parts = []
        for chunk, nbits in self._chunks:  # type: ignore[misc]
            bits = np.unpackbits(chunk)[:nbits]
            parts.append(bits)
        return np.packbits(np.concatenate(parts)).tobytes()


class BitReader:
    """Sequential reader mirroring :class:`BitWriter`'s layout."""

    def __init__(self, data: bytes | np.ndarray) -> None:
        self._data = np.frombuffer(bytes(data), dtype=np.uint8)
        self._bitpos = 0

    @property
    def bit_position(self) -> int:
        return self._bitpos

    @property
    def bits_remaining(self) -> int:
        return self._data.size * 8 - self._bitpos

    def read_uint(self, width: int) -> int:
        return int(self.read_array(1, width)[0])

    def read_array(self, count: int, width: int) -> np.ndarray:
        values = unpack_uint(self._data, count, width, self._bitpos)
        self._bitpos += count * width
        return values

    def skip(self, nbits: int) -> None:
        if self._bitpos + nbits > self._data.size * 8:
            raise BitstreamError("skip past end of stream")
        self._bitpos += nbits
