"""Bit-level packing primitives.

The ZFP-style codec stores each block's transform coefficients at a
per-class bit width, so payloads are not byte aligned. These helpers pack
and unpack fixed-width unsigned integers into a dense MSB-first bit
stream using vectorized NumPy (``packbits``/shift tricks) — a Python
per-bit loop would dominate the entire encode cost.

Three layers:

* :func:`pack_uint` / :func:`unpack_uint` — bulk fixed-width codecs over
  whole arrays (the fast path);
* :func:`unpack_uint_segments` — one-pass decode of many fixed-width
  segments sharing a byte stream (the ZFP-style codec's per-(class,
  width) groups), batched by width so the cost is a handful of NumPy
  ops instead of one unpack call per group;
* :class:`BitWriter` / :class:`BitReader` — a streaming interface for
  composing several bulk segments plus small scalar headers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitstreamError

__all__ = [
    "pack_uint",
    "unpack_uint",
    "unpack_uint_segments",
    "BitWriter",
    "BitReader",
]


def pack_uint(values: np.ndarray, width: int) -> np.ndarray:
    """Pack unsigned integers into an MSB-first bit array of uint8.

    Parameters
    ----------
    values:
        1-D array of non-negative integers, each representable in
        ``width`` bits.
    width:
        Bits per value, 0..64. Width 0 packs nothing.

    Returns
    -------
    uint8 array of ``ceil(len(values) * width / 8)`` bytes.
    """
    if not 0 <= width <= 64:
        raise BitstreamError(f"width must be in [0, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if width == 0 or values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if width < 64 and values.size and int(values.max()) >> width:
        raise BitstreamError(
            f"value {int(values.max())} does not fit in {width} bits"
        )
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel())


def _bits_to_uint(bits: np.ndarray, width: int) -> np.ndarray:
    """Combine a ``(count, width)`` MSB-first 0/1 matrix into uint64 values.

    Two regimes, both far cheaper than a per-bit shift-and-sum over a
    ``(count, width)`` uint64 temporary:

    * tiny widths ride a float64 dot product (exact below 2**52);
    * wider values are right-aligned into whole bytes, collapsed with one
      ``np.packbits(axis=1)`` call, and the resulting <= 8 byte columns
      are shift-OR'ed together.
    """
    if width <= 4:
        weights = np.float64(2.0) ** np.arange(width - 1, -1, -1)
        return (bits @ weights).astype(np.uint64)
    # packbits pads the trailing partial byte with zeros on the right, so
    # the packed bytes hold ``value << pad`` — one final shift fixes it.
    nbytes = (width + 7) // 8
    by = np.packbits(bits, axis=1)
    out = by[:, 0].astype(np.uint64)
    for k in range(1, nbytes):
        out = (out << np.uint64(8)) | by[:, k]
    pad = nbytes * 8 - width
    if pad:
        out >>= np.uint64(pad)
    return out


def unpack_uint(
    packed: np.ndarray, count: int, width: int, bit_offset: int = 0
) -> np.ndarray:
    """Inverse of :func:`pack_uint`.

    Parameters
    ----------
    packed:
        uint8 array holding the bit stream.
    count:
        Number of values to decode.
    width:
        Bits per value.
    bit_offset:
        Starting bit position within ``packed``.
    """
    if not 0 <= width <= 64:
        raise BitstreamError(f"width must be in [0, 64], got {width}")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    end_bit = bit_offset + count * width
    if end_bit > packed.size * 8:
        raise BitstreamError(
            f"bitstream underflow: need {end_bit} bits, have {packed.size * 8}"
        )
    first_byte = bit_offset // 8
    last_byte = (end_bit + 7) // 8
    bits = np.unpackbits(packed[first_byte:last_byte])
    start = bit_offset - first_byte * 8
    bits = bits[start : start + count * width].reshape(count, width)
    return _bits_to_uint(bits, width)


def unpack_uint_segments(
    packed: np.ndarray,
    segments: list[tuple[int, int, int]],
) -> list[np.ndarray]:
    """Decode many fixed-width segments of one bit stream in bulk.

    Parameters
    ----------
    packed:
        uint8 array holding the shared bit stream.
    segments:
        ``(bit_offset, count, width)`` triples, in any order. Segments
        may not overlap bits they do not own, but gaps (padding) between
        them are fine.

    Returns
    -------
    One uint64 array per segment, in the order given.

    The stream's bits are expanded exactly once (``np.unpackbits``),
    then segments are decoded *grouped by width*: all values of one
    width — across every segment that uses it — are stacked and handed
    to one :func:`_bits_to_uint` call. A payload with dozens of small
    groups (the ZFP-style codec's class×width layout) costs a few NumPy
    ops per distinct width instead of per group.
    """
    if not segments:
        return []
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    end_bit = 0
    for bit_offset, count, width in segments:
        if not 0 <= width <= 64:
            raise BitstreamError(f"width must be in [0, 64], got {width}")
        if count < 0 or bit_offset < 0:
            raise BitstreamError("negative count/bit_offset")
        end_bit = max(end_bit, bit_offset + count * width)
    if end_bit > packed.size * 8:
        raise BitstreamError(
            f"bitstream underflow: need {end_bit} bits, have {packed.size * 8}"
        )
    bits = np.unpackbits(packed[: (end_bit + 7) // 8])

    results: list[np.ndarray | None] = [None] * len(segments)
    by_width: dict[int, list[int]] = {}
    for i, (bit_offset, count, width) in enumerate(segments):
        if width == 0 or count == 0:
            results[i] = np.zeros(count, dtype=np.uint64)
        else:
            by_width.setdefault(width, []).append(i)

    for width, idxs in by_width.items():
        counts = [segments[i][1] for i in idxs]
        chunks = [
            bits[segments[i][0] : segments[i][0] + n * width].reshape(n, width)
            for i, n in zip(idxs, counts)
        ]
        stacked = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        values = _bits_to_uint(stacked, width)
        pos = 0
        for i, n in zip(idxs, counts):
            results[i] = values[pos : pos + n]
            pos += n
    return results  # type: ignore[return-value]


class BitWriter:
    """Accumulates bit segments; finalizes to bytes.

    Segments are byte-concatenated lazily; scalar writes go through a
    small staging buffer. All positions are tracked in bits so readers
    can mirror the layout exactly.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._bitpos = 0

    @property
    def bit_position(self) -> int:
        return self._bitpos

    def write_uint(self, value: int, width: int) -> None:
        """Write a single unsigned integer of ``width`` bits."""
        self.write_array(np.array([value], dtype=np.uint64), width)

    def write_array(self, values: np.ndarray, width: int) -> None:
        """Write a fixed-width array segment (bit-aligned, no padding)."""
        packed = pack_uint(values, width)
        nbits = len(np.atleast_1d(values)) * width
        self._chunks.append((packed, nbits))  # type: ignore[arg-type]
        self._bitpos += nbits

    def getvalue(self) -> bytes:
        """Concatenate all segments into a dense byte string."""
        if not self._chunks:
            return b""
        # Fast path: all segments byte-aligned at their joints.
        total_bits = 0
        aligned = True
        for _, nbits in self._chunks:  # type: ignore[misc]
            if total_bits % 8:
                aligned = False
                break
            total_bits += nbits
        if aligned:
            return b"".join(
                chunk.tobytes() for chunk, _ in self._chunks  # type: ignore[misc]
            )
        # General path: re-expand to bits and repack once.
        parts = []
        for chunk, nbits in self._chunks:  # type: ignore[misc]
            bits = np.unpackbits(chunk)[:nbits]
            parts.append(bits)
        return np.packbits(np.concatenate(parts)).tobytes()


class BitReader:
    """Sequential reader mirroring :class:`BitWriter`'s layout."""

    def __init__(self, data: bytes | np.ndarray) -> None:
        self._data = np.frombuffer(bytes(data), dtype=np.uint8)
        self._bitpos = 0

    @property
    def bit_position(self) -> int:
        return self._bitpos

    @property
    def bits_remaining(self) -> int:
        return self._data.size * 8 - self._bitpos

    def read_uint(self, width: int) -> int:
        return int(self.read_array(1, width)[0])

    def read_array(self, count: int, width: int) -> np.ndarray:
        values = unpack_uint(self._data, count, width, self._bitpos)
        self._bitpos += count * width
        return values

    def skip(self, nbits: int) -> None:
        if self._bitpos + nbits > self._data.size * 8:
            raise BitstreamError("skip past end of stream")
        self._bitpos += nbits
