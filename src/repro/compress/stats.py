"""Signal smoothness metrics.

The paper's central compression observation (Fig. 4, §III-C2) is that the
deltas between adjacent accuracy levels are *smoother* than the levels
themselves, and therefore compress better. These metrics quantify that:
lower total variation / second-difference energy / standard deviation ⇒
smoother ⇒ smaller ZFP-style payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SmoothnessStats", "smoothness", "smoothness_table"]


@dataclass(frozen=True)
class SmoothnessStats:
    """Summary statistics of one signal."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    total_variation: float
    second_diff_rms: float

    @property
    def value_range(self) -> float:
        return self.max - self.min

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "total_variation": self.total_variation,
            "second_diff_rms": self.second_diff_rms,
        }


def smoothness(data: np.ndarray) -> SmoothnessStats:
    """Compute smoothness statistics of a 1-D signal."""
    data = np.ascontiguousarray(data, dtype=np.float64).ravel()
    if data.size == 0:
        return SmoothnessStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    tv = float(np.abs(np.diff(data)).mean()) if data.size > 1 else 0.0
    d2 = (
        float(np.sqrt(np.mean(np.diff(data, n=2) ** 2)))
        if data.size > 2
        else 0.0
    )
    return SmoothnessStats(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std()),
        min=float(data.min()),
        max=float(data.max()),
        total_variation=tv,
        second_diff_rms=d2,
    )


def smoothness_table(signals: dict[str, np.ndarray]) -> list[dict[str, float]]:
    """Tabulate smoothness stats for several named signals (Fig. 4 rows)."""
    rows = []
    for name, data in signals.items():
        row: dict[str, float] = {"signal": name}  # type: ignore[dict-item]
        row.update(smoothness(data).as_dict())
        rows.append(row)
    return rows
