"""Floating-point compression substrate.

From-scratch reproductions of the codecs the paper uses or plans to use
(§III-C3): ZFP (fixed-accuracy block transform coding), SZ (error-bounded
predictive coding), and FPC (lossless XOR-predictive coding), plus plain
byte-shuffled deflate and a raw baseline. All codecs share the
self-describing envelope of :mod:`repro.compress.base` and live in a
registry keyed by name, mirroring how ADIOS selects data transforms.
"""

from repro.compress.base import (
    CompressionResult,
    Compressor,
    available_codecs,
    compress_with_stats,
    decode_auto,
    get_codec,
    register_codec,
)
from repro.compress.fpc import FPCCompressor
from repro.compress.lossless import DeflateCompressor, RawCompressor
from repro.compress.stats import SmoothnessStats, smoothness, smoothness_table
from repro.compress.sz import SZCompressor
from repro.compress.zfp import ZFPCompressor

__all__ = [
    "Compressor",
    "CompressionResult",
    "available_codecs",
    "compress_with_stats",
    "decode_auto",
    "get_codec",
    "register_codec",
    "ZFPCompressor",
    "SZCompressor",
    "FPCCompressor",
    "DeflateCompressor",
    "RawCompressor",
    "SmoothnessStats",
    "smoothness",
    "smoothness_table",
]
