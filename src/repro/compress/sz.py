"""SZ-style error-bounded predictive codec.

SZ (Di & Cappello 2016) predicts each value from its decompressed
neighbors (constant/linear curve fitting), quantizes the prediction
residual into error-bounded bins, entropy-codes the bin indices, and
stores unpredictable values verbatim.

This reproduction works on the *quantized integer lattice*: values are
first snapped to ``q = round(x / (2·tol))`` (so any reconstruction of
``q`` is within the error bound), then the predictor runs exactly on the
integers. That keeps the SZ guarantee while making both encode and
decode fully vectorizable (prediction residuals become 1st/2nd-order
differences; reconstruction becomes cumulative sums).

Predictors:

* ``"lorenzo"`` — 1-D Lorenzo: predict by the previous value
  (residual = first difference);
* ``"linear"``  — two-point linear extrapolation
  (residual = second difference);
* ``"auto"``    — encode both, keep the smaller payload (SZ's
  best-fit-predictor selection, hoisted to whole-array granularity).

Residuals are zigzag-mapped to one byte each, with an escape code for
outliers (SZ's "unpredictable data" path), and both streams are
deflated.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compress.base import Compressor, register_codec
from repro.compress.lossless import shuffle_compress, shuffle_decompress
from repro.errors import CompressionError

__all__ = ["SZCompressor"]

_ESCAPE = 255  # u8 residual value marking an outlier
_MODE_CONSTANT = 0
_MODE_LORENZO = 1
_MODE_LINEAR = 2
_MODE_LOSSLESS = 3
_MAX_QBITS = 62


def _zigzag(v: np.ndarray) -> np.ndarray:
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.uint64)
    return ((u >> np.uint64(1)) ^ (~(u & np.uint64(1)) + np.uint64(1))).astype(
        np.int64
    )


def _encode_residuals(res: np.ndarray, level: int = 6) -> bytes:
    """Byte-bin residuals with an outlier escape stream, then deflate."""
    zz = _zigzag(res)
    small = zz < _ESCAPE
    u8 = np.where(small, zz, _ESCAPE).astype(np.uint8)
    outliers = res[~small].astype(np.int64)
    main = zlib.compress(u8.tobytes(), level)
    side = zlib.compress(outliers.tobytes(), level)
    return struct.pack("<QQ", len(main), len(outliers)) + main + side


def _decode_residuals(blob: bytes, count: int) -> np.ndarray:
    main_len, n_out = struct.unpack_from("<QQ", blob, 0)
    off = 16
    u8 = np.frombuffer(zlib.decompress(blob[off : off + main_len]), dtype=np.uint8)
    if u8.size != count:
        raise CompressionError("sz: residual stream length mismatch")
    side = np.frombuffer(zlib.decompress(blob[off + main_len :]), dtype=np.int64)
    if side.size != n_out:
        raise CompressionError("sz: outlier stream length mismatch")
    res = _unzigzag(u8.astype(np.uint64))
    res[u8 == _ESCAPE] = side
    return res


class SZCompressor(Compressor):
    """Error-bounded predictive codec (see module docstring).

    Parameters
    ----------
    tolerance:
        Absolute error bound; ``0`` selects a lossless fallback.
    predictor:
        ``"lorenzo"``, ``"linear"``, or ``"auto"``.
    """

    name = "sz"

    def __init__(self, tolerance: float = 1e-6, predictor: str = "auto"):
        if tolerance < 0:
            raise CompressionError("tolerance must be >= 0")
        if predictor not in ("lorenzo", "linear", "auto"):
            raise CompressionError(f"unknown predictor {predictor!r}")
        self.tolerance = float(tolerance)
        self.predictor = predictor
        self.lossless = tolerance == 0.0

    def max_error(self) -> float:
        return self.tolerance

    # ------------------------------------------------------------------
    def _encode_payload(self, data: np.ndarray) -> bytes:
        if data.size == 0:
            return struct.pack("<Bd", _MODE_CONSTANT, 0.0)
        if self.lossless:
            return struct.pack("<B", _MODE_LOSSLESS) + shuffle_compress(data)
        step = 2.0 * self.tolerance
        amax = float(np.abs(data).max())
        if amax / step >= 2.0**_MAX_QBITS:
            raise CompressionError("tolerance too small for data magnitude")
        q = np.round(data / step).astype(np.int64)
        if q.min() == q.max():
            return struct.pack("<Bd", _MODE_CONSTANT, float(q[0]) * step)

        candidates: list[tuple[int, bytes]] = []
        if self.predictor in ("lorenzo", "auto"):
            res = np.diff(q)
            body = struct.pack("<dq", step, int(q[0])) + _encode_residuals(res)
            candidates.append((_MODE_LORENZO, body))
        if self.predictor in ("linear", "auto"):
            if q.size >= 2:
                res = np.diff(q, n=2)
                body = struct.pack(
                    "<dqq", step, int(q[0]), int(q[1])
                ) + _encode_residuals(res)
                candidates.append((_MODE_LINEAR, body))
        mode, body = min(candidates, key=lambda mb: len(mb[1]))
        return struct.pack("<B", mode) + body

    # ------------------------------------------------------------------
    def _decode_payload(self, payload: bytes, count: int) -> np.ndarray:
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        mode = payload[0]
        if mode == _MODE_CONSTANT:
            (value,) = struct.unpack_from("<d", payload, 1)
            return np.full(count, value, dtype=np.float64)
        if mode == _MODE_LOSSLESS:
            return shuffle_decompress(payload[1:], count)
        if mode == _MODE_LORENZO:
            step, q0 = struct.unpack_from("<dq", payload, 1)
            res = _decode_residuals(payload[1 + 16 :], count - 1)
            q = np.empty(count, dtype=np.int64)
            q[0] = q0
            np.cumsum(res, out=q[1:]) if count > 1 else None
            q[1:] += q0
            return q.astype(np.float64) * step
        if mode == _MODE_LINEAR:
            step, q0, q1 = struct.unpack_from("<dqq", payload, 1)
            res = _decode_residuals(payload[1 + 24 :], count - 2)
            d = np.empty(count - 1, dtype=np.int64)
            if count >= 2:
                d[0] = q1 - q0
                if count > 2:
                    np.cumsum(res, out=d[1:])
                    d[1:] += d[0]
            q = np.empty(count, dtype=np.int64)
            q[0] = q0
            np.cumsum(d, out=q[1:])
            q[1:] += q0
            return q.astype(np.float64) * step
        raise CompressionError(f"corrupt sz payload (mode={mode})")


register_codec("sz", lambda **p: SZCompressor(**p))
