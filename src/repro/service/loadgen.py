"""Load harness: hundreds of concurrent simulated clients.

Drives a running :class:`~repro.service.servicenode.CanopusService`
with ``clients`` concurrent :class:`~repro.service.client.ServiceClient`
tasks, each issuing a deterministic round-robin mix of restore requests
over ``(variable, level)`` pairs, optionally verifying every payload
bit-for-bit against reference fields. The serial baseline
(:func:`serial_baseline`) issues the same mix one-request-at-a-time on
one connection — the "every consumer links the library and waits its
turn" world the service replaces — so
``concurrent.rps / serial.rps`` is the elasticity headline
(``benchmarks/test_service_load.py`` asserts it and records
``BENCH_service.json``).

:class:`ServiceThread` hosts the service on a dedicated thread + event
loop so harness clients and service handlers run on different OS
threads, the same separation a real deployment has.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServiceError
from repro.obs.metrics import Histogram
from repro.service.client import ServiceClient
from repro.service.servicenode import CanopusService

__all__ = ["LoadReport", "ServiceThread", "run_load", "serial_baseline"]


@dataclass
class LoadReport:
    """Aggregate of one load run."""

    clients: int
    requests: int = 0
    failures: int = 0
    mismatches: int = 0
    bytes_served: int = 0
    wall_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mbps(self) -> float:
        if not self.wall_seconds:
            return 0.0
        return self.bytes_served / self.wall_seconds / 1e6

    def latency_summary(self) -> dict:
        """Latency distribution through the obs bucketed histogram.

        Using :class:`~repro.obs.metrics.Histogram` (fixed log-spaced
        buckets + interpolated :meth:`~repro.obs.metrics.Histogram.quantile`)
        keeps these numbers directly comparable to the server-side
        ``service.request_seconds`` histograms and to the Prometheus
        exposition.
        """
        if not self.latencies:
            return {
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        hist = Histogram("loadgen.latency")
        for dt in self.latencies:
            hist.observe(dt)
        return {
            "mean": hist.mean,
            "p50": hist.quantile(0.50),
            "p95": hist.quantile(0.95),
            "p99": hist.quantile(0.99),
            "max": float(hist.max),
        }

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "failures": self.failures,
            "mismatches": self.mismatches,
            "bytes_served": self.bytes_served,
            "wall_seconds": self.wall_seconds,
            "rps": self.rps,
            "mbps": self.mbps,
            "latency": self.latency_summary(),
        }


def _mix(
    variables: list[str], levels: list[int], client_index: int, i: int
) -> tuple[str, int]:
    """Deterministic (var, level) pick for request ``i`` of one client."""
    n = client_index + i
    return variables[n % len(variables)], levels[n % len(levels)]


async def _client_task(
    host: str,
    port: int,
    token: str,
    campaign: str,
    variables: list[str],
    levels: list[int],
    client_index: int,
    requests: int,
    expected: dict[tuple[str, int], np.ndarray] | None,
    report: LoadReport,
    lock: asyncio.Lock,
) -> None:
    client = ServiceClient(host, port, token=token)
    try:
        for i in range(requests):
            var, level = _mix(variables, levels, client_index, i)
            t0 = time.perf_counter()
            try:
                fieldvals, meta = await client.restore(
                    campaign, var, level=level
                )
            except Exception:
                async with lock:
                    report.failures += 1
                continue
            dt = time.perf_counter() - t0
            ok = True
            if expected is not None:
                ref = expected.get((var, level))
                ok = ref is not None and np.array_equal(
                    np.asarray(fieldvals), ref
                )
            async with lock:
                report.requests += 1
                report.bytes_served += meta["bytes"]
                report.latencies.append(dt)
                if not ok:
                    report.mismatches += 1
    finally:
        await client.close()


async def run_load(
    host: str,
    port: int,
    campaign: str,
    variables,
    *,
    clients: int,
    requests_per_client: int,
    levels=(0,),
    token: str = "",
    expected: dict[tuple[str, int], np.ndarray] | None = None,
) -> LoadReport:
    """Drive ``clients`` concurrent clients; returns the aggregate."""
    variables = list(variables)
    levels = [int(lv) for lv in levels]
    if not variables or clients < 1 or requests_per_client < 1:
        raise ServiceError("run_load needs variables, clients, requests >= 1")
    report = LoadReport(clients=clients)
    lock = asyncio.Lock()
    t0 = time.perf_counter()
    await asyncio.gather(
        *(
            _client_task(
                host, port, token, campaign, variables, levels,
                ci, requests_per_client, expected, report, lock,
            )
            for ci in range(clients)
        )
    )
    report.wall_seconds = time.perf_counter() - t0
    return report


async def serial_baseline(
    host: str,
    port: int,
    campaign: str,
    variables,
    *,
    requests: int,
    levels=(0,),
    token: str = "",
    expected: dict[tuple[str, int], np.ndarray] | None = None,
) -> LoadReport:
    """One connection, one request at a time — the pre-service world."""
    report = LoadReport(clients=1)
    lock = asyncio.Lock()
    t0 = time.perf_counter()
    await _client_task(
        host, port, token, campaign, list(variables),
        [int(lv) for lv in levels], 0, requests, expected, report, lock,
    )
    report.wall_seconds = time.perf_counter() - t0
    return report


class ServiceThread:
    """Host a :class:`CanopusService` on its own thread + event loop.

    The pattern every test/benchmark needs: start, learn the bound
    port, hammer it from the caller's own loop, stop. ``stop()`` joins
    the thread after the service has fully shut down.
    """

    def __init__(self, service: CanopusService) -> None:
        self.service = service
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._shutdown: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        if self._thread is not None:
            raise ServiceError("service thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceError("service thread failed to start in time")
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self.service.host, self.service.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            self._shutdown = asyncio.Event()
            try:
                # start_server begins accepting immediately; no
                # serve_forever needed.
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001 — report to starter
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self._shutdown.wait()
            await self.service.stop()

        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if self._shutdown is not None:
            loop.call_soon_threadsafe(self._shutdown.set)
        thread.join(timeout)
        self._loop = None
        self._thread = None
        self._shutdown = None

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
