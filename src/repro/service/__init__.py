"""Canopus-as-a-service: an asyncio multi-tenant HTTP read tier.

HSDS-style split in one process (and one import surface):

* **service node** (:mod:`repro.service.servicenode`) — stateless
  request handling: HTTP parsing, per-tenant bearer-token auth +
  quota/rate accounting, routing, response assembly, ETag/cursor
  negotiation;
* **data node** (:mod:`repro.service.datanode`) — owns the storage
  hierarchy/backends and runs the
  :class:`~repro.core.decode_engine.DecodeEngine` near the bytes on a
  bounded executor, so blocking decode work never stalls the event
  loop. All tenants share the process-wide restored-level/geometry
  caches and each dataset's retrieval-engine prefetch pipeline;
* **client** (:mod:`repro.service.client`) — a stdlib asyncio client
  used by the test suite, the load harness, and as the reference for
  external consumers;
* **load harness** (:mod:`repro.service.loadgen`) — drives hundreds of
  concurrent simulated clients and aggregates per-tenant results
  (``benchmarks/test_service_load.py`` writes ``BENCH_service.json``).

Quick start::

    from repro.service import CanopusService, ServiceClient, TenantConfig

    service = CanopusService(hierarchy, tenants=[TenantConfig("alice", token="s3cret")])
    host, port = await service.start()
    async with ServiceClient(host, port, token="s3cret") as client:
        info = await client.open_campaign("fig9-multi")
        field, meta = await client.restore("fig9-multi", "dpot", level=0)

or from the shell: ``repro serve --root /path/to/store --port 8080``
(add ``--tracing`` for the ``/v1/trace*`` endpoints and ``traceparent``
propagation, then ``repro obs report --url ...`` for a live view of the
slowest requests and SLO burn rates).
"""

from repro.service.client import ServiceClient
from repro.service.datanode import DataNode
from repro.service.http import Request, Response
from repro.service.loadgen import LoadReport, run_load, serial_baseline
from repro.service.servicenode import CanopusService, ServiceNode
from repro.service.tenants import TenantConfig, TenantRegistry

__all__ = [
    "CanopusService",
    "DataNode",
    "LoadReport",
    "Request",
    "Response",
    "ServiceClient",
    "ServiceNode",
    "TenantConfig",
    "TenantRegistry",
    "run_load",
    "serial_baseline",
]
