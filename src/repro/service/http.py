"""Minimal HTTP/1.1 over asyncio streams (stdlib only).

The container image has no third-party HTTP stack, so the read tier
speaks a deliberately small slice of HTTP/1.1: request line + headers +
``Content-Length`` bodies, keep-alive connections, no chunked encoding,
no TLS. That slice is enough for ``curl``, for the bundled
:class:`~repro.service.client.ServiceClient`, and for hundreds of
concurrent load-generator connections, while keeping the parser a few
dozen auditable lines.

Both sides live here: :func:`read_request` / :meth:`Response.render`
serve the listener, and :class:`ClientConnection` issues requests and
parses :class:`Response` frames back.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServiceError

__all__ = [
    "ClientConnection",
    "REASONS",
    "Request",
    "Response",
    "read_request",
]

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard caps keeping one misbehaving client from ballooning the parser.
MAX_LINE = 16 * 1024
MAX_HEADERS = 100
MAX_BODY = 64 << 20


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    @property
    def traceparent(self) -> str | None:
        """Raw W3C ``traceparent`` header, if the caller sent one."""
        return self.headers.get("traceparent")

    def json(self):
        try:
            return json.loads(self.body.decode("utf-8") or "null")
        except ValueError as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from exc


@dataclass
class Response:
    """One HTTP response, rendered with Content-Length framing."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def json(
        cls, payload, *, status: int = 200, headers: dict | None = None
    ) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        hdrs = {"content-type": "application/json"}
        if headers:
            hdrs.update(headers)
        return cls(status=status, headers=hdrs, body=body)

    @classmethod
    def binary(
        cls,
        body: bytes,
        *,
        status: int = 200,
        content_type: str = "application/octet-stream",
        headers: dict | None = None,
    ) -> "Response":
        hdrs = {"content-type": content_type}
        if headers:
            hdrs.update(headers)
        return cls(status=status, headers=hdrs, body=bytes(body))

    def parsed_json(self):
        return json.loads(self.body.decode("utf-8") or "null")

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    @property
    def request_id(self) -> str | None:
        """The server-assigned ``x-request-id`` (= trace id), if any."""
        return self.headers.get("x-request-id")

    def render(self, *, keep_alive: bool = True) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("content-length", str(len(self.body)))
        headers.setdefault(
            "connection", "keep-alive" if keep_alive else "close"
        )
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def _read_head(reader: asyncio.StreamReader) -> list[str] | None:
    """Read request/status line + headers; None on clean EOF."""
    lines: list[str] = []
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and not lines:
                return None  # connection closed between requests
            raise ServiceError("truncated HTTP frame") from exc
        except asyncio.LimitOverrunError as exc:
            raise ServiceError("HTTP line too long") from exc
        if len(raw) > MAX_LINE:
            raise ServiceError("HTTP line too long")
        line = raw.decode("latin-1").rstrip("\r\n")
        if not line:
            if not lines:
                continue  # tolerate leading blank lines
            return lines
        lines.append(line)
        if len(lines) > MAX_HEADERS + 1:
            raise ServiceError("too many HTTP headers")


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise ServiceError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY:
        raise ServiceError(f"unacceptable content-length {length}")
    if length == 0:
        return b""
    return await reader.readexactly(length)


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; returns None when the peer closed cleanly."""
    lines = await _read_head(reader)
    if lines is None:
        return None
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServiceError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query={k: v for k, v in parse_qsl(split.query, keep_blank_values=True)},
        headers=headers,
        body=body,
    )


class ClientConnection:
    """One keep-alive client connection (used by tests and the loadgen).

    Not a general HTTP client: exactly one in-flight request per
    connection, Content-Length framing only — the same slice the server
    speaks.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ClientConnection":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE
        )
        return self

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def request(
        self,
        method: str,
        target: str,
        *,
        headers: dict[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        if self._writer is None:
            await self.connect()
        assert self._writer is not None and self._reader is not None
        hdrs = {"host": f"{self.host}:{self.port}"}
        if headers:
            hdrs.update({k.lower(): v for k, v in headers.items()})
        hdrs["content-length"] = str(len(body))
        lines = [f"{method.upper()} {target} HTTP/1.1"]
        lines.extend(f"{k}: {v}" for k, v in hdrs.items())
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> Response:
        assert self._reader is not None
        lines = await _read_head(self._reader)
        if lines is None:
            raise ServiceError("server closed connection mid-request")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ServiceError(f"malformed status line {lines[0]!r}")
        status = int(parts[1])
        headers = _parse_headers(lines[1:])
        body = await _read_body(self._reader, headers)
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return Response(status=status, headers=headers, body=body)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ClientConnection":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()
