"""High-level asyncio client for the Canopus read tier.

Wraps one keep-alive :class:`~repro.service.http.ClientConnection` with
typed methods mirroring the endpoint surface. Non-2xx responses raise
the *same* exception classes the server mapped from — the wire contract
is the ``code`` string, so ``except VariableNotFoundError`` works the
same whether the library runs in-process or behind the service.

.. code-block:: python

    async with ServiceClient(host, port, token="s3cret") as client:
        info = await client.open_campaign("fig9-multi")
        field, meta = await client.restore("fig9-multi", "dpot", level=1)
        finer, meta = await client.restore(
            "fig9-multi", "dpot", level=0, cursor=meta["cursor"]
        )
"""

from __future__ import annotations

import io

import numpy as np

from repro.errors import (
    AuthError,
    ConflictError,
    QuotaError,
    ReproError,
    RestorationError,
    ServiceError,
    StorageError,
    VariableNotFoundError,
)
from repro.obs import context as obs_context
from repro.service.http import ClientConnection, Response

__all__ = ["ServiceClient"]

#: Wire code → exception raised client-side (subset that matters to
#: callers; anything unrecognized raises plain ReproError).
_CODE_TO_ERROR: dict[str, type[ReproError]] = {
    "unauthorized": AuthError,
    "quota-exceeded": QuotaError,
    "not-found": VariableNotFoundError,
    "conflict": ConflictError,
    "bad-request": RestorationError,
    "bad-format": RestorationError,
    "storage": StorageError,
    "capacity": StorageError,
    "service": ServiceError,
}


def _raise_for(response: Response) -> None:
    if response.status < 400:
        return
    try:
        payload = response.parsed_json()
    except ValueError:
        payload = {}
    code = payload.get("code", "internal")
    message = payload.get("error", f"HTTP {response.status}")
    cls = _CODE_TO_ERROR.get(code, ReproError)
    if cls is QuotaError:
        retry = float(response.header("retry-after", "1.0") or 1.0)
        raise QuotaError(message, retry_after=retry)
    raise cls(message)


class ServiceClient:
    """One tenant's connection to a running :class:`CanopusService`.

    Every request carries a W3C ``traceparent`` header: when the caller
    already runs inside a trace context (e.g. under
    :func:`repro.api.trace_session` behind a service of its own) that
    context's trace id is forwarded, otherwise a fresh one is minted per
    request. The id the server answered under comes back in each
    ``meta["request_id"]`` — quote it to ``GET /v1/trace/{id}``
    (:meth:`trace`) to see where that exact request spent its time.
    """

    def __init__(self, host: str, port: int, *, token: str = "") -> None:
        self.token = token
        self._conn = ClientConnection(host, port)
        #: x-request-id of the most recent response (None before any).
        self.last_request_id: str | None = None

    # -- plumbing -------------------------------------------------------
    def _headers(self, extra: dict | None = None) -> dict[str, str]:
        headers: dict[str, str] = {}
        if self.token:
            headers["authorization"] = f"Bearer {self.token}"
        ctx = obs_context.current()
        if ctx is not None and ctx.trace_id:
            headers["traceparent"] = ctx.traceparent()
        else:
            headers["traceparent"] = obs_context.format_traceparent(
                obs_context.new_trace_id(), obs_context.new_span_id()
            )
        if extra:
            headers.update(extra)
        return headers

    def _note_response(self, resp: Response) -> None:
        rid = resp.header("x-request-id")
        if rid:
            self.last_request_id = rid

    async def _get(self, target: str, *, headers: dict | None = None) -> Response:
        resp = await self._conn.request(
            "GET", target, headers=self._headers(headers)
        )
        self._note_response(resp)
        return resp

    @staticmethod
    def _query(params: dict) -> str:
        pairs = [
            f"{k}={v}" for k, v in params.items() if v is not None and v != ""
        ]
        return "?" + "&".join(pairs) if pairs else ""

    @staticmethod
    def _region_param(region) -> str | None:
        if region is None:
            return None
        lo, hi = region
        return (
            ",".join(repr(float(v)) for v in np.asarray(lo).ravel())
            + ":"
            + ",".join(repr(float(v)) for v in np.asarray(hi).ravel())
        )

    # -- endpoints ------------------------------------------------------
    async def healthz(self) -> bool:
        resp = await self._get("/healthz")
        return resp.status == 200 and resp.parsed_json().get("ok") is True

    async def open_campaign(self, name: str) -> dict:
        resp = await self._conn.request(
            "POST", f"/v1/campaigns/{name}/open", headers=self._headers()
        )
        self._note_response(resp)
        _raise_for(resp)
        return resp.parsed_json()

    async def restore(
        self,
        name: str,
        var: str,
        *,
        level: int | None = None,
        tolerance: float | None = None,
        region=None,
        min_significance: float = 0.0,
        cursor: str | None = None,
        if_none_match: str | None = None,
    ) -> tuple[np.ndarray | None, dict]:
        """Restore a variable; returns ``(field, meta)``.

        ``field`` is ``None`` on a 304 (the ``if_none_match`` cursor
        already names the result). ``meta`` carries ``level``,
        ``cursor``, ``rms``, ``cache`` and the raw byte count.
        """
        params: dict = {
            "level": level,
            "tolerance": tolerance,
            "min_significance": min_significance or None,
            "cursor": cursor,
        }
        params["region"] = self._region_param(region)
        headers = {}
        if if_none_match:
            headers["if-none-match"] = f'"{if_none_match}"'
        resp = await self._get(
            f"/v1/campaigns/{name}/vars/{var}/restore" + self._query(params),
            headers=headers,
        )
        _raise_for(resp)
        meta = {
            "cursor": resp.header("x-canopus-cursor"),
            "cache": resp.header("x-canopus-cache"),
            "bytes": len(resp.body),
            "status": resp.status,
            "request_id": resp.header("x-request-id"),
        }
        if resp.status == 304:
            return None, meta
        meta["level"] = int(resp.header("x-canopus-level", "-1"))
        rms_raw = resp.header("x-canopus-rms", "nan") or "nan"
        meta["rms"] = float(rms_raw)
        field = np.load(io.BytesIO(resp.body), allow_pickle=False)
        return field, meta

    async def stats(
        self, name: str, var: str, *, level: int | None = None
    ) -> list[dict]:
        resp = await self._get(
            f"/v1/campaigns/{name}/vars/{var}/stats"
            + self._query({"level": level})
        )
        _raise_for(resp)
        return resp.parsed_json()["chunks"]

    async def plan(
        self,
        name: str,
        var: str,
        *,
        level: int | None = None,
        tolerance: float | None = None,
        region=None,
        min_significance: float = 0.0,
    ) -> dict:
        """Explain a restore without executing it (the retrieval plan)."""
        resp = await self._get(
            f"/v1/campaigns/{name}/vars/{var}/plan"
            + self._query(
                {
                    "level": level,
                    "tolerance": tolerance,
                    "min_significance": min_significance or None,
                    "region": self._region_param(region),
                }
            )
        )
        _raise_for(resp)
        return resp.parsed_json()["plan"]

    async def query_stats(
        self, name: str, var: str, *, region=None
    ) -> dict:
        """Pushdown aggregate statistics over an optional region.

        Executes against per-chunk summaries inside the data node —
        a pruned/summarized query ships no field bytes at all.
        """
        resp = await self._get(
            "/v1/query/stats"
            + self._query(
                {
                    "campaign": name,
                    "var": var,
                    "region": self._region_param(region),
                }
            )
        )
        _raise_for(resp)
        return resp.parsed_json()

    async def query_blobs(
        self,
        name: str,
        var: str,
        *,
        threshold: float,
        region=None,
        shape: tuple[int, int] | None = None,
    ) -> dict:
        """Pushdown blob detection above a field-value threshold."""
        resp = await self._get(
            "/v1/query/blobs"
            + self._query(
                {
                    "campaign": name,
                    "var": var,
                    "threshold": repr(float(threshold)),
                    "region": self._region_param(region),
                    "shape": (
                        None if shape is None
                        else ",".join(str(int(v)) for v in shape)
                    ),
                }
            )
        )
        _raise_for(resp)
        return resp.parsed_json()

    async def read_raw(
        self,
        name: str,
        key: str,
        *,
        start: int = 0,
        length: int | None = None,
    ) -> tuple[bytes, dict]:
        resp = await self._get(
            f"/v1/campaigns/{name}/raw/{key}"
            + self._query({"start": start or None, "length": length})
        )
        _raise_for(resp)
        meta = {
            k[len("x-canopus-") :]: v
            for k, v in resp.headers.items()
            if k.startswith("x-canopus-")
        }
        return resp.body, meta

    async def metrics(self, *, format: str | None = None) -> dict | str:
        """Server metrics: parsed JSON, or raw text for ``"prometheus"``."""
        target = "/v1/metrics"
        if format:
            target += f"?format={format}"
        resp = await self._get(target)
        _raise_for(resp)
        if format == "prometheus":
            return resp.body.decode("utf-8")
        return resp.parsed_json()

    async def traces(self, *, limit: int = 20) -> dict:
        """Summaries of recently kept request traces (newest first)."""
        resp = await self._get(f"/v1/traces?limit={int(limit)}")
        _raise_for(resp)
        return resp.parsed_json()

    async def trace(self, trace_id: str) -> dict:
        """One kept request trace with its full span tree.

        Raises :class:`VariableNotFoundError` when the id was dropped
        by sampling or already evicted from the ring.
        """
        resp = await self._get(f"/v1/trace/{trace_id}")
        _raise_for(resp)
        return resp.parsed_json()

    async def close(self) -> None:
        await self._conn.close()

    async def __aenter__(self) -> "ServiceClient":
        await self._conn.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
