"""Per-tenant authentication, quotas, and usage accounting.

Every request to the read tier carries a bearer token; the registry
resolves it to a :class:`TenantConfig` and enforces three independent
budgets before any bytes move:

* **rate** — at most ``max_requests`` requests per rolling
  ``window_seconds`` window;
* **bytes** — at most ``max_bytes`` response bytes per window (charged
  as responses are assembled, checked at admission);
* **concurrency** — at most ``max_inflight`` requests simultaneously
  inside the data node (protects the bounded executor from one tenant
  queueing out everyone else).

Violations raise :class:`~repro.errors.QuotaError` (wire code
``quota-exceeded`` → 429 with ``Retry-After``); unknown/missing tokens
raise :class:`~repro.errors.AuthError` (``unauthorized`` → 401).
Accounting is mirrored into :mod:`repro.obs` counters labeled by
tenant (``service.requests{tenant=...}``, ``service.bytes_served``,
``service.quota_rejections``, ``service.sim_read_seconds``), so one
``registry.snapshot()`` shows who is using the tier and how much.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AuthError, ConfigError, QuotaError
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["TenantConfig", "TenantRegistry", "TenantUsage"]


@dataclass(frozen=True)
class TenantConfig:
    """Static description of one tenant (name, credential, budgets)."""

    name: str
    token: str
    #: Requests allowed per window (None = unlimited).
    max_requests: int | None = None
    #: Response bytes allowed per window (None = unlimited).
    max_bytes: int | None = None
    #: Concurrent in-flight requests (None = unlimited).
    max_inflight: int | None = None
    #: Length of the rolling accounting window, in seconds.
    window_seconds: float = 1.0

    @classmethod
    def from_dict(cls, raw: dict) -> "TenantConfig":
        try:
            return cls(
                name=str(raw["name"]),
                token=str(raw["token"]),
                max_requests=raw.get("max_requests"),
                max_bytes=raw.get("max_bytes"),
                max_inflight=raw.get("max_inflight"),
                window_seconds=float(raw.get("window_seconds", 1.0)),
            )
        except KeyError as exc:
            raise ConfigError(f"tenant config missing {exc.args[0]!r}") from exc


@dataclass
class TenantUsage:
    """Mutable per-tenant accounting state (registry-internal)."""

    window_start: float = 0.0
    window_requests: int = 0
    window_bytes: int = 0
    inflight: int = 0
    total_requests: int = 0
    total_bytes: int = 0
    total_sim_read_seconds: float = 0.0
    rejected: int = 0

    def snapshot(self) -> dict:
        return {
            "inflight": self.inflight,
            "window_requests": self.window_requests,
            "window_bytes": self.window_bytes,
            "total_requests": self.total_requests,
            "total_bytes": self.total_bytes,
            "total_sim_read_seconds": self.total_sim_read_seconds,
            "rejected": self.rejected,
        }


class TenantRegistry:
    """Token → tenant resolution plus thread-safe quota accounting.

    The registry is shared between the event loop (admission) and the
    data-node executor threads (sim-read attribution), so every state
    change happens under one lock. ``clock`` is injectable for
    deterministic window tests.
    """

    def __init__(
        self,
        tenants: list[TenantConfig] | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._by_token: dict[str, TenantConfig] = {}
        self._by_name: dict[str, TenantConfig] = {}
        self._usage: dict[str, TenantUsage] = {}
        self._clock = clock
        self.metrics = metrics if metrics is not None else get_registry()
        for tenant in tenants or []:
            self.add(tenant)

    # -- construction ---------------------------------------------------
    def add(self, tenant: TenantConfig) -> None:
        with self._lock:
            if tenant.token in self._by_token:
                raise ConfigError(
                    f"duplicate tenant token for {tenant.name!r}"
                )
            if any(t.name == tenant.name for t in self._by_token.values()):
                raise ConfigError(f"duplicate tenant name {tenant.name!r}")
            self._by_token[tenant.token] = tenant
            self._by_name[tenant.name] = tenant
            self._usage[tenant.name] = TenantUsage()

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "TenantRegistry":
        """Load ``[{"name":..., "token":..., ...}, ...]`` from JSON."""
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read tenants file {path}: {exc}") from exc
        if not isinstance(raw, list):
            raise ConfigError("tenants file must hold a JSON list")
        return cls([TenantConfig.from_dict(item) for item in raw], **kwargs)

    @classmethod
    def open_access(cls, **kwargs) -> "TenantRegistry":
        """Single anonymous tenant with no budgets (dev mode)."""
        return cls([TenantConfig(name="anonymous", token="")], **kwargs)

    def tenants(self) -> list[TenantConfig]:
        with self._lock:
            return sorted(self._by_token.values(), key=lambda t: t.name)

    def find(self, name: str) -> TenantConfig | None:
        """Tenant by name (used for context-based charge attribution)."""
        with self._lock:
            return self._by_name.get(name)

    # -- authentication -------------------------------------------------
    def authenticate(self, authorization: str | None) -> TenantConfig:
        """Resolve an ``Authorization`` header value to a tenant."""
        token = ""
        if authorization:
            scheme, _, credential = authorization.partition(" ")
            if scheme.lower() != "bearer" or not credential.strip():
                raise AuthError("expected 'Authorization: Bearer <token>'")
            token = credential.strip()
        with self._lock:
            tenant = self._by_token.get(token)
        if tenant is None:
            raise AuthError("unknown or missing bearer token")
        return tenant

    # -- admission / accounting ----------------------------------------
    def _roll_window(self, tenant: TenantConfig, usage: TenantUsage) -> None:
        now = self._clock()
        if now - usage.window_start >= tenant.window_seconds:
            usage.window_start = now
            usage.window_requests = 0
            usage.window_bytes = 0

    def admit(self, tenant: TenantConfig) -> None:
        """Admit one request or raise :class:`QuotaError` (429)."""
        with self._lock:
            usage = self._usage[tenant.name]
            self._roll_window(tenant, usage)
            retry = max(
                0.0,
                tenant.window_seconds - (self._clock() - usage.window_start),
            )
            if (
                tenant.max_inflight is not None
                and usage.inflight >= tenant.max_inflight
            ):
                usage.rejected += 1
                self._count("service.quota_rejections", tenant, 1)
                raise QuotaError(
                    f"tenant {tenant.name!r} has {usage.inflight} requests "
                    f"in flight (limit {tenant.max_inflight})",
                    retry_after=retry or tenant.window_seconds,
                )
            if (
                tenant.max_requests is not None
                and usage.window_requests >= tenant.max_requests
            ):
                usage.rejected += 1
                self._count("service.quota_rejections", tenant, 1)
                raise QuotaError(
                    f"tenant {tenant.name!r} exceeded {tenant.max_requests} "
                    f"requests / {tenant.window_seconds}s",
                    retry_after=retry or tenant.window_seconds,
                )
            if (
                tenant.max_bytes is not None
                and usage.window_bytes >= tenant.max_bytes
            ):
                usage.rejected += 1
                self._count("service.quota_rejections", tenant, 1)
                raise QuotaError(
                    f"tenant {tenant.name!r} exceeded {tenant.max_bytes} "
                    f"bytes / {tenant.window_seconds}s",
                    retry_after=retry or tenant.window_seconds,
                )
            usage.inflight += 1
            usage.window_requests += 1
            usage.total_requests += 1
        self._count("service.requests", tenant, 1)

    def release(self, tenant: TenantConfig) -> None:
        with self._lock:
            usage = self._usage[tenant.name]
            usage.inflight = max(0, usage.inflight - 1)

    def charge_bytes(self, tenant: TenantConfig, nbytes: int) -> None:
        """Account response bytes (debited against the window budget)."""
        with self._lock:
            usage = self._usage[tenant.name]
            usage.window_bytes += nbytes
            usage.total_bytes += nbytes
        self._count("service.bytes_served", tenant, nbytes)

    def charge_sim_read(self, tenant: TenantConfig, seconds: float) -> None:
        """Attribute simulated tier-read seconds to a tenant."""
        with self._lock:
            self._usage[tenant.name].total_sim_read_seconds += seconds
        self.metrics.counter(
            "service.sim_read_seconds", tenant=tenant.name
        ).inc(seconds)

    def _count(self, name: str, tenant: TenantConfig, n) -> None:
        self.metrics.counter(name, tenant=tenant.name).inc(n)

    # -- reporting ------------------------------------------------------
    def usage(self, name: str | None = None) -> dict:
        """Per-tenant usage snapshot (all tenants, or one by name)."""
        with self._lock:
            if name is not None:
                return self._usage[name].snapshot()
            return {
                tenant: usage.snapshot()
                for tenant, usage in sorted(self._usage.items())
            }
