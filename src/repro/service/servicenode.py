"""Service node: stateless HTTP handlers in front of the data node.

Everything here is per-request and touches no storage: parse, resolve
the tenant (bearer token), admit against quotas, route, then assemble
the response from whatever the :class:`~repro.service.datanode.DataNode`
returns. Library errors translate 1:1 to wire responses through the
stable code → status map in :mod:`repro.errors`; every response body
for an error is ``{"error": ..., "code": ...}``.

Endpoints (all under ``/v1`` except the health probe):

====================================================  ======================
``GET  /healthz``                                     liveness (no auth)
``POST /v1/campaigns/{name}/open``                    open + describe
``GET  /v1/campaigns/{name}``                         describe (idempotent)
``GET  .../vars/{var}/restore?level=|tolerance=``     restore (npy body)
``GET  .../vars/{var}/stats?level=``                  per-chunk summaries
``GET  .../vars/{var}/plan?level=|tolerance=``        explain the retrieval
``GET  .../raw/{key}?start=&length=``                 ranged raw product
``GET  /v1/query/stats?campaign=&var=[&region=]``     pushdown statistics
``GET  /v1/query/blobs?campaign=&var=&threshold=``    pushdown blob detect
``GET  /v1/metrics[?format=prometheus]``              obs + tenant usage
``GET  /v1/traces?limit=``                            kept trace summaries
``GET  /v1/trace/{id}``                               one full span tree
====================================================  ======================

Restore responses carry ``ETag``/``X-Canopus-Cursor`` (the resumable
delta cursor), ``X-Canopus-Level``, shape/dtype, and the delta-RMS of
the last applied refinement; ``If-None-Match`` with the cursor of the
requested state short-circuits to 304 with no body.

Every request is observable end to end: the node accepts a W3C
``traceparent`` header (or starts a fresh trace), activates the trace
context for the request's whole asyncio + executor journey, echoes the
trace id back as ``x-request-id``, feeds per-route/per-tenant latency
histograms and SLO burn rates, writes one JSONL access-log line, and —
when tracing is enabled — seals the request's span tree into the
:class:`~repro.obs.trace.TraceBuffer` served by the ``/v1/trace*``
routes.
"""

from __future__ import annotations

import asyncio
import io
import threading
import time

import numpy as np

from repro.errors import (
    QuotaError,
    ReproError,
    RestorationError,
    ServiceError,
    error_code,
    http_status,
)
from repro.obs import context as obs_context
from repro.obs import trace
from repro.obs.logs import JsonlLogger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.prom import render_prometheus
from repro.obs.slo import SLO
from repro.obs.trace import TraceBuffer, Tracer
from repro.service.datanode import DataNode
from repro.service.http import Request, Response, read_request
from repro.service.tenants import TenantConfig, TenantRegistry
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["CanopusService", "ServiceNode"]

NPY_CONTENT_TYPE = "application/x-npy"


def _parse_float(query: dict, name: str) -> float | None:
    raw = query.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except ValueError:
        raise RestorationError(f"query param {name!r} must be a number")


def _parse_int(query: dict, name: str) -> int | None:
    raw = query.get(name)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise RestorationError(f"query param {name!r} must be an integer")


def _parse_region(query: dict) -> tuple[np.ndarray, np.ndarray] | None:
    """``region=x0,y0:x1,y1`` → (lo, hi) float arrays."""
    raw = query.get("region")
    if raw is None or raw == "":
        return None
    lo_s, sep, hi_s = raw.partition(":")
    if not sep:
        raise RestorationError(
            "region must be 'lo0,lo1,...:hi0,hi1,...'"
        )
    try:
        lo = np.array([float(v) for v in lo_s.split(",")])
        hi = np.array([float(v) for v in hi_s.split(",")])
    except ValueError:
        raise RestorationError("region coordinates must be numbers")
    if lo.shape != hi.shape or lo.size == 0:
        raise RestorationError("region lo/hi must have the same length")
    return lo, hi


def _parse_shape(query: dict) -> tuple[int, int]:
    """``shape=ny,nx`` raster grid (defaults to 128x128)."""
    raw = query.get("shape")
    if raw is None or raw == "":
        return (128, 128)
    try:
        dims = tuple(int(v) for v in raw.split(","))
    except ValueError:
        raise RestorationError("shape must be 'ny,nx' integers")
    if len(dims) != 2 or any(d < 1 for d in dims):
        raise RestorationError("shape must be two positive integers")
    return dims


def _require_param(query: dict, name: str) -> str:
    value = query.get(name)
    if not value:
        raise RestorationError(f"query param {name!r} is required")
    return value


def _npy_bytes(array: np.ndarray) -> bytes:
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(array), allow_pickle=False)
    return buf.getvalue()


class ServiceNode:
    """Stateless request handling over one data node."""

    def __init__(
        self,
        datanode: DataNode,
        tenants: TenantRegistry,
        *,
        metrics: MetricsRegistry | None = None,
        trace_buffer: TraceBuffer | None = None,
        access_log: JsonlLogger | None = None,
        slo_target_seconds: float = 0.5,
        slo_objective: float = 0.95,
    ) -> None:
        self.datanode = datanode
        self.tenants = tenants
        self.metrics = metrics if metrics is not None else get_registry()
        self.trace_buffer = trace_buffer
        self.access_log = access_log
        self.slo_target_seconds = float(slo_target_seconds)
        self.slo_objective = float(slo_objective)
        self._slos: dict[str, SLO] = {}
        self._slo_lock = threading.Lock()

    # -- dispatch -------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        """Route one request; never raises (errors become responses).

        This is where a request's observable identity is established:
        an incoming ``traceparent`` is honored (invalid ones are treated
        as absent), otherwise a fresh trace id is minted; the context is
        active for the whole request — asyncio hops and, via explicit
        propagation, every executor thread the request touches.
        """
        t0 = time.perf_counter()
        upstream = obs_context.parse_traceparent(request.traceparent)
        if upstream is not None:
            ctx = upstream
            head_sampled: bool | None = upstream.sampled
        else:
            ctx = obs_context.TraceContext(trace_id=obs_context.new_trace_id())
            head_sampled = None
        token = obs_context.activate(ctx)
        route = self._route_template(request)
        error: str | None = None
        try:
            try:
                response = await self._dispatch(request, route)
            except QuotaError as exc:
                response = Response.json(
                    {"error": str(exc), "code": exc.code},
                    status=http_status(exc),
                    headers={"retry-after": f"{exc.retry_after:.3f}"},
                )
            except ReproError as exc:
                response = Response.json(
                    {"error": str(exc), "code": error_code(exc)},
                    status=http_status(exc),
                )
            except Exception as exc:  # noqa: BLE001 — the wire must answer
                error = f"{type(exc).__name__}: {exc}"
                response = Response.json(
                    {"error": error, "code": "internal"},
                    status=500,
                )
            tenant_name = (obs_context.current() or ctx).tenant
            self._finish_request(
                request,
                response,
                route=route,
                tenant=tenant_name,
                wall_seconds=time.perf_counter() - t0,
                error=error,
                head_sampled=head_sampled,
                trace_id=ctx.trace_id,
            )
        finally:
            obs_context.deactivate(token)
        return response

    def _finish_request(
        self,
        request: Request,
        response: Response,
        *,
        route: str,
        tenant: str,
        wall_seconds: float,
        error: str | None,
        head_sampled: bool | None,
        trace_id: str,
    ) -> None:
        """Account one finished request and stamp its identity headers."""
        self.metrics.counter(
            "service.responses", status=str(response.status)
        ).inc()
        failed = error is not None or response.status >= 500
        if route != "/healthz":
            self.metrics.histogram(
                "service.request_seconds",
                route=route,
                tenant=tenant or "-",
            ).observe(wall_seconds)
            self._slo_for(route).observe(wall_seconds, error=failed)
        if self.access_log is not None:
            self.access_log.access(
                method=request.method,
                path=request.path,
                status=response.status,
                wall_seconds=wall_seconds,
                route=route,
                trace_id=trace_id,
                tenant=tenant,
                error=error,
            )
        if self.trace_buffer is not None:
            self.trace_buffer.finish(
                trace_id,
                route=route,
                method=request.method,
                tenant=tenant,
                status=response.status,
                wall_seconds=wall_seconds,
                error=error,
                sampled=head_sampled,
            )
        response.headers.setdefault("x-request-id", trace_id)
        response.headers.setdefault(
            "traceparent",
            obs_context.format_traceparent(
                trace_id,
                obs_context.new_span_id(),
                sampled=True if head_sampled is None else head_sampled,
            ),
        )

    def _slo_for(self, route: str) -> SLO:
        slo = self._slos.get(route)
        if slo is None:
            with self._slo_lock:
                slo = self._slos.get(route)
                if slo is None:
                    slo = SLO(
                        route,
                        target_seconds=self.slo_target_seconds,
                        objective=self.slo_objective,
                        registry=self.metrics,
                    )
                    self._slos[route] = slo
        return slo

    @staticmethod
    def _route_template(request: Request) -> str:
        """Low-cardinality route label for metrics/SLOs/traces."""
        if request.path == "/healthz":
            return "/healthz"
        parts = [p for p in request.path.split("/") if p]
        if parts[:1] != ["v1"]:
            return "other"
        rest = parts[1:]
        if rest == ["metrics"]:
            return "/v1/metrics"
        if rest[:1] == ["traces"]:
            return "/v1/traces"
        if rest[:1] == ["trace"]:
            return "/v1/trace/{id}"
        if rest[:1] == ["query"] and len(rest) == 2:
            if rest[1] in ("stats", "blobs"):
                return f"/v1/query/{rest[1]}"
        if rest[:1] == ["campaigns"] and len(rest) >= 2:
            tail = rest[2:]
            if tail == ["open"]:
                return "/v1/campaigns/{name}/open"
            if not tail:
                return "/v1/campaigns/{name}"
            if len(tail) == 3 and tail[0] == "vars" and tail[2] == "restore":
                return "/v1/campaigns/{name}/vars/{var}/restore"
            if len(tail) == 3 and tail[0] == "vars" and tail[2] == "stats":
                return "/v1/campaigns/{name}/vars/{var}/stats"
            if len(tail) == 3 and tail[0] == "vars" and tail[2] == "plan":
                return "/v1/campaigns/{name}/vars/{var}/plan"
            if tail[:1] == ["raw"]:
                return "/v1/campaigns/{name}/raw/{key}"
        return "other"

    async def _dispatch(self, request: Request, route: str) -> Response:
        if request.path == "/healthz":
            return Response.json({"ok": True})
        tenant = self.tenants.authenticate(request.header("authorization"))
        # Record the tenant on the request context: executor jobs copy
        # the context, so SimClock charges and spans inherit it; the
        # token is dropped deliberately — handle() resets the whole
        # context when the request ends.
        obs_context.bind_tenant(tenant.name)
        self.tenants.admit(tenant)
        try:
            with trace.span(
                f"http {request.method} {route}", "service",
                {"path": request.path, "tenant": tenant.name},
            ):
                response = await self._route(request, tenant)
            self.tenants.charge_bytes(tenant, len(response.body))
            return response
        finally:
            self.tenants.release(tenant)

    async def _route(self, request: Request, tenant: TenantConfig) -> Response:
        parts = [p for p in request.path.split("/") if p]
        if parts[:1] != ["v1"]:
            return self._not_found(request)
        if parts[1:] == ["metrics"] and request.method == "GET":
            return self._metrics(request)
        if parts[1:] == ["traces"] and request.method == "GET":
            return self._traces(request)
        if len(parts) == 3 and parts[1] == "trace" and request.method == "GET":
            return self._trace(parts[2])
        if len(parts) == 3 and parts[1] == "query" and request.method == "GET":
            if parts[2] == "stats":
                return await self._query_stats(request, tenant)
            if parts[2] == "blobs":
                return await self._query_blobs(request, tenant)
        if len(parts) >= 3 and parts[1] == "campaigns":
            name = parts[2]
            rest = parts[3:]
            if rest == ["open"] and request.method == "POST":
                return await self._open(name, tenant)
            if not rest and request.method == "GET":
                return await self._open(name, tenant)
            if (
                len(rest) == 3
                and rest[0] == "vars"
                and rest[2] == "restore"
                and request.method == "GET"
            ):
                return await self._restore(request, name, rest[1], tenant)
            if (
                len(rest) == 3
                and rest[0] == "vars"
                and rest[2] == "stats"
                and request.method == "GET"
            ):
                return await self._stats(request, name, rest[1], tenant)
            if (
                len(rest) == 3
                and rest[0] == "vars"
                and rest[2] == "plan"
                and request.method == "GET"
            ):
                return await self._plan(request, name, rest[1], tenant)
            if len(rest) >= 2 and rest[0] == "raw" and request.method == "GET":
                key = "/".join(rest[1:])
                return await self._raw(request, name, key, tenant)
        return self._not_found(request)

    @staticmethod
    def _not_found(request: Request) -> Response:
        return Response.json(
            {
                "error": f"no route for {request.method} {request.path}",
                "code": "not-found",
            },
            status=404,
        )

    # -- handlers -------------------------------------------------------
    async def _open(self, name: str, tenant: TenantConfig) -> Response:
        info = await self.datanode.open_campaign(name, tenant=tenant)
        return Response.json(info)

    async def _restore(
        self, request: Request, name: str, var: str, tenant: TenantConfig
    ) -> Response:
        level = _parse_int(request.query, "level")
        tolerance = _parse_float(request.query, "tolerance")
        min_significance = _parse_float(request.query, "min_significance") or 0.0
        region = _parse_region(request.query)
        cursor = request.query.get("cursor") or None
        if_none_match = (
            request.header("if-none-match", "") or ""
        ).strip('"') or None
        result = await self.datanode.restore(
            name,
            var,
            level=level,
            tolerance=tolerance,
            region=region,
            min_significance=min_significance,
            cursor=cursor,
            if_none_match=if_none_match,
            tenant=tenant,
        )
        cache_header = "hit" if result.cache_hit else "miss"
        self.metrics.counter(
            f"service.cache.{'hits' if result.cache_hit else 'misses'}",
            tenant=tenant.name,
        ).inc()
        common = {
            "etag": f'"{result.cursor}"',
            "x-canopus-cursor": result.cursor,
            "x-canopus-cache": cache_header,
        }
        if result.state is None:
            return Response(status=304, headers=common)
        state = result.state
        body = _npy_bytes(state.field)
        rms = state.last_delta_rms
        headers = {
            **common,
            "x-canopus-level": str(state.level),
            "x-canopus-shape": ",".join(str(n) for n in state.field.shape),
            "x-canopus-dtype": str(state.field.dtype),
            "x-canopus-rms": repr(float(rms)),
            "x-canopus-vertices": str(state.mesh.num_vertices),
        }
        return Response.binary(
            body, content_type=NPY_CONTENT_TYPE, headers=headers
        )

    async def _stats(
        self, request: Request, name: str, var: str, tenant: TenantConfig
    ) -> Response:
        level = _parse_int(request.query, "level")
        rows = await self.datanode.stats(
            name, var, level=level, tenant=tenant
        )
        return Response.json({"campaign": name, "var": var, "chunks": rows})

    async def _plan(
        self, request: Request, name: str, var: str, tenant: TenantConfig
    ) -> Response:
        level = _parse_int(request.query, "level")
        tolerance = _parse_float(request.query, "tolerance")
        min_significance = _parse_float(request.query, "min_significance") or 0.0
        region = _parse_region(request.query)
        plan = await self.datanode.plan(
            name,
            var,
            level=level,
            tolerance=tolerance,
            region=region,
            min_significance=min_significance,
            tenant=tenant,
        )
        return Response.json({"campaign": name, "plan": plan})

    async def _query_stats(
        self, request: Request, tenant: TenantConfig
    ) -> Response:
        name = _require_param(request.query, "campaign")
        var = _require_param(request.query, "var")
        region = _parse_region(request.query)
        result = await self.datanode.query_stats(
            name, var, region=region, tenant=tenant
        )
        return Response.json({"campaign": name, **result})

    async def _query_blobs(
        self, request: Request, tenant: TenantConfig
    ) -> Response:
        name = _require_param(request.query, "campaign")
        var = _require_param(request.query, "var")
        threshold = _parse_float(request.query, "threshold")
        if threshold is None:
            raise RestorationError("query param 'threshold' is required")
        region = _parse_region(request.query)
        shape = _parse_shape(request.query)
        result = await self.datanode.query_blobs(
            name,
            var,
            threshold=threshold,
            region=region,
            shape=shape,
            tenant=tenant,
        )
        return Response.json({"campaign": name, **result})

    async def _raw(
        self, request: Request, name: str, key: str, tenant: TenantConfig
    ) -> Response:
        start = _parse_int(request.query, "start") or 0
        length = _parse_int(request.query, "length")
        blob, meta = await self.datanode.read_raw(
            name, key, start=start, length=length, tenant=tenant
        )
        headers = {
            f"x-canopus-{k.replace('_', '-')}": str(v)
            for k, v in meta.items()
        }
        return Response.binary(blob, headers=headers)

    def _metrics(self, request: Request) -> Response:
        fmt = (request.query.get("format") or "").strip().lower()
        if fmt == "prometheus":
            text = render_prometheus(self.metrics)
            return Response(
                status=200,
                headers={
                    "content-type": (
                        "text/plain; version=0.0.4; charset=utf-8"
                    )
                },
                body=text.encode("utf-8"),
            )
        if fmt and fmt != "json":
            raise RestorationError(
                f"unknown metrics format {fmt!r} (expected 'prometheus')"
            )
        payload = {
            "service": self.metrics.prefix_snapshot("service"),
            "metrics": self.metrics.snapshot(),
            "tenants": self.tenants.usage(),
            "datanode": self.datanode.metrics(),
            "slo": {
                route: slo.snapshot()
                for route, slo in sorted(self._slos.items())
            },
        }
        if self.trace_buffer is not None:
            payload["traces"] = self.trace_buffer.stats()
        return Response.json(payload)

    def _traces(self, request: Request) -> Response:
        limit = _parse_int(request.query, "limit")
        if self.trace_buffer is None:
            return Response.json({"tracing": False, "traces": []})
        kept = self.trace_buffer.list(limit if limit is not None else 20)
        return Response.json(
            {
                "tracing": True,
                "traces": [t.to_summary() for t in kept],
                "stats": self.trace_buffer.stats(),
            }
        )

    def _trace(self, trace_id: str) -> Response:
        if self.trace_buffer is None:
            return Response.json(
                {"error": "tracing is disabled", "code": "not-found"},
                status=404,
            )
        kept = self.trace_buffer.get(trace_id)
        if kept is None:
            return Response.json(
                {
                    "error": f"trace {trace_id!r} not in the buffer "
                    "(dropped by sampling or evicted)",
                    "code": "not-found",
                },
                status=404,
            )
        return Response.json(kept.to_dict())


class CanopusService:
    """The deployable unit: asyncio server + service node + data node.

    One process serves one storage hierarchy. ``tenants`` may be a
    :class:`TenantRegistry`, a list of :class:`TenantConfig`, or
    ``None`` for open access (single anonymous tenant, no budgets —
    development only).

    ``tracing=True`` turns on request tracing for the whole process: a
    :class:`~repro.obs.trace.Tracer` is installed for the server's
    lifetime (attached to the hierarchy's SimClock) feeding a
    :class:`~repro.obs.trace.TraceBuffer`, so sampled/slow/error
    requests are queryable at ``/v1/trace*``. It defaults to off —
    untraced serving must keep the one-attribute-check fast path.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        *,
        tenants: TenantRegistry | list[TenantConfig] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        executor_workers: int = 8,
        cache_bytes: int = 64 << 20,
        verify_checksums: bool = True,
        metrics: MetricsRegistry | None = None,
        tracing: bool = False,
        trace_capacity: int = 256,
        trace_sample_rate: float = 0.1,
        trace_slow_seconds: float = 1.0,
        slo_target_seconds: float = 0.5,
        slo_objective: float = 0.95,
        access_log: JsonlLogger | None = None,
    ) -> None:
        if isinstance(tenants, TenantRegistry):
            registry = tenants
        elif tenants is None:
            registry = TenantRegistry.open_access(metrics=metrics)
        else:
            registry = TenantRegistry(list(tenants), metrics=metrics)
        self.tenants = registry
        self.host = host
        self.port = port
        self.hierarchy = hierarchy
        self.datanode = DataNode(
            hierarchy,
            tenants=registry,
            workers=workers,
            executor_workers=executor_workers,
            cache_bytes=cache_bytes,
            verify_checksums=verify_checksums,
        )
        self.trace_buffer = (
            TraceBuffer(
                trace_capacity,
                sample_rate=trace_sample_rate,
                slow_seconds=trace_slow_seconds,
            )
            if tracing
            else None
        )
        self.node = ServiceNode(
            self.datanode,
            registry,
            metrics=metrics,
            trace_buffer=self.trace_buffer,
            access_log=access_log,
            slo_target_seconds=slo_target_seconds,
            slo_objective=slo_objective,
        )
        self.tracer: Tracer | None = None
        self._previous_tracer: Tracer | None = None
        self._server: asyncio.AbstractServer | None = None

    # -- connection plumbing -------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServiceError as exc:
                    writer.write(
                        Response.json(
                            {"error": str(exc), "code": exc.code},
                            status=400,
                        ).render(keep_alive=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self.node.handle(request)
                keep = (
                    request.header("connection", "keep-alive").lower()
                    != "close"
                )
                writer.write(response.render(keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-frame; nothing to assemble
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise ServiceError("service already started")
        if self.trace_buffer is not None and self.tracer is None:
            self.tracer = Tracer(
                clock=self.hierarchy.clock,
                sinks=[self.trace_buffer],
                registry=self.node.metrics,
            )
            self.tracer.attach_clock(self.hierarchy.clock)
            self._previous_tracer = trace._install(self.tracer)
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.tracer is not None:
            trace._uninstall(self._previous_tracer)
            self.tracer.detach_clock()
            self.tracer = None
            self._previous_tracer = None
        # Executor shutdown waits for in-flight decodes; keep the loop
        # responsive by doing the wait off-loop.
        await asyncio.get_running_loop().run_in_executor(
            None, self.datanode.close
        )

    async def __aenter__(self) -> "CanopusService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()
