"""Data node: runs the decode engine near the bytes, off the event loop.

The HSDS-style split puts everything that touches storage on this side:
one process-wide :class:`~repro.session.Session` owns the open datasets
(and therefore each dataset's retrieval engine + prefetch pipeline),
and every blocking restore/stat/raw-read runs on a **bounded**
``ThreadPoolExecutor`` so the asyncio service node above never blocks.
Admission beyond the executor's queue bound is awaited, not rejected —
backpressure, with the event loop free to keep serving cheap requests.

Multi-tenant sharing happens here by construction:

* all tenants' restores go through the same
  :class:`~repro.core.decode_engine.DecodeEngine` per campaign, so the
  process-wide restored-level/geometry caches and the engine's range
  cache/prefetch are shared — a second tenant asking for the same
  ``(fingerprint, var, level, filters)`` is a cache hit, because cache
  keys carry content identity + tenant-visible filter state only;
* *accounting* stays per tenant: a listener on the hierarchy's
  :class:`~repro.storage.simclock.SimClock` attributes every simulated
  read to the tenant carried by the active
  :class:`~repro.obs.context.TraceContext` — each executor job runs
  inside a copy of the submitting request's context
  (:func:`contextvars.copy_context` at submit time), so attribution is
  keyed by *request*, never by whatever the worker thread ran last,
  and charges issued from the engine's internal pools (which propagate
  the same context) land on the right tenant too.

Delta cursors: every restore result carries an ETag-like cursor
``<fp12>.<var>.L<level>.<filter digest>``. A client resuming with the
cursor of a level it already holds gets 304 (nothing to send) when it
re-requests that level, a warm-started refinement when it asks for a
finer one, and a 409 conflict if the campaign's content fingerprint no
longer matches (the store was rewritten under the cursor).
"""

from __future__ import annotations

import asyncio
import contextvars
import hashlib
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.decoder import LevelData
from repro.core.restored_cache import get_restored_cache
from repro.errors import (
    ConflictError,
    RestorationError,
    StorageError,
    VariableNotFoundError,
)
from repro.obs import context as obs_context
from repro.obs import trace
from repro.service.tenants import TenantConfig, TenantRegistry
from repro.session import CampaignHandle, Session
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.policy import AccessTracker

__all__ = ["DataNode", "RestoreResult"]


def _region_json(region) -> list | None:
    """JSON-ready ``[[lo...], [hi...]]`` form of a region window."""
    if region is None:
        return None
    lo, hi = region
    return [
        [float(v) for v in np.asarray(lo, dtype=np.float64).ravel()],
        [float(v) for v in np.asarray(hi, dtype=np.float64).ravel()],
    ]


def _filter_digest(region, min_significance: float) -> str:
    """Stable 8-hex digest of the tenant-visible filter state."""
    h = hashlib.blake2b(digest_size=4)
    if region is not None:
        lo, hi = region
        for arr in (lo, hi):
            for v in np.asarray(arr, dtype=np.float64).ravel():
                h.update(repr(float(v) + 0.0).encode())
    h.update(repr(float(min_significance) + 0.0).encode())
    return h.hexdigest()


class RestoreResult:
    """One finished restore plus its wire identity.

    ``state`` is ``None`` when the client's ``If-None-Match`` cursor
    already names the result (the 304 fast path).
    """

    __slots__ = ("state", "cursor", "cache_hit")

    def __init__(
        self, state: LevelData | None, cursor: str, cache_hit: bool
    ) -> None:
        self.state = state
        self.cursor = cursor
        self.cache_hit = cache_hit


class DataNode:
    """Near-data execution layer shared by every service-node handler.

    Parameters
    ----------
    hierarchy:
        The storage hierarchy to serve (owns backends + SimClock).
    tenants:
        The registry used for per-tenant sim-read attribution; the
        service node passes the same instance it authenticates with.
    workers:
        Decode fan-out width per restore (Session/DecodeEngine width).
    executor_workers:
        Bounded executor size for blocking work. Queued jobs beyond
        ``executor_workers * queue_factor`` wait asynchronously.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        *,
        tenants: TenantRegistry | None = None,
        workers: int = 4,
        executor_workers: int = 8,
        queue_factor: int = 4,
        cache_bytes: int = 64 << 20,
        verify_checksums: bool = True,
    ) -> None:
        if executor_workers < 1:
            raise RestorationError("executor_workers must be >= 1")
        self.hierarchy = hierarchy
        self.tenants = tenants
        self.session = Session(
            hierarchy,
            workers=workers,
            cache_bytes=cache_bytes,
            verify_checksums=verify_checksums,
        )
        self.executor_workers = int(executor_workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers,
            thread_name_prefix="repro-datanode",
        )
        self._slots = asyncio.Semaphore(
            self.executor_workers * max(1, int(queue_factor))
        )
        self._open_lock = threading.Lock()
        self._closed = False
        # Elastic feedback: every served read/query heats the subfiles
        # its retrieval plan touched, so PlacementEngine.plan_replacement
        # over this tracker promotes exactly the delta levels the query
        # workload reaches. The shape log keeps the recent query mix
        # (var, region, achieved level) inspectable via /v1/metrics.
        self.tracker = AccessTracker()
        self._query_log: deque = deque(maxlen=256)
        self._query_lock = threading.Lock()
        # Attribute simulated read seconds to the tenant carried by the
        # active trace context (see _run). Charges from contexts without
        # a tenant (e.g. in-process library use) are left unattributed.
        self._clock_listener = self._on_sim_charge
        hierarchy.clock.add_listener(self._clock_listener)

    # -- sim-read attribution ------------------------------------------
    def _on_sim_charge(self, events, advance: float, after: float) -> None:
        if advance <= 0 or self.tenants is None:
            return
        ctx = obs_context.current()
        if ctx is None or not ctx.tenant:
            return
        tenant = self.tenants.find(ctx.tenant)
        if tenant is None:
            return
        read_s = sum(e.seconds for e in events if e.op == "read")
        if read_s > 0:
            self.tenants.charge_sim_read(tenant, min(advance, read_s))

    # -- bounded offload ------------------------------------------------
    async def _run(self, fn, *args, tenant: TenantConfig | None = None):
        """Run blocking ``fn`` on the bounded executor.

        The job runs inside a copy of the submitting request's context
        (so the request's trace context — and span stack — follow it
        across the thread hop), with the tenant bound on that copy for
        SimClock attribution; the semaphore bounds queued work without
        ever blocking the event loop.
        """
        if self._closed:
            raise RestorationError("data node is closed")

        def _bound():
            if tenant is None:
                return fn(*args)
            token = obs_context.bind_tenant(tenant.name)
            try:
                return fn(*args)
            finally:
                obs_context.deactivate(token)

        ctx = contextvars.copy_context()
        loop = asyncio.get_running_loop()
        async with self._slots:
            return await loop.run_in_executor(self._executor, ctx.run, _bound)

    # -- campaign lifecycle --------------------------------------------
    def _handle(self, name: str) -> CampaignHandle:
        # Session.open caches handles; serialize so concurrent first
        # opens of one campaign create a single handle. A missing
        # catalog surfaces as StorageError (503); to a service client
        # an unknown campaign is a 404, so narrow it here.
        with self._open_lock:
            if name in self.session.campaigns:
                return self.session.open(name)
            try:
                return self.session.open(name)
            except StorageError as exc:
                raise VariableNotFoundError(
                    f"campaign {name!r} not found: {exc}"
                ) from exc

    async def open_campaign(
        self, name: str, *, tenant: TenantConfig | None = None
    ) -> dict:
        """Open (idempotent) and describe one campaign."""
        def _open() -> dict:
            return self._handle(name).describe()

        return await self._run(_open, tenant=tenant)

    # -- cursors --------------------------------------------------------
    @staticmethod
    def cursor_for(
        handle: CampaignHandle,
        var: str,
        level: int,
        *,
        region=None,
        min_significance: float = 0.0,
    ) -> str:
        fp = handle.fingerprint[:12]
        digest = _filter_digest(region, min_significance)
        return f"{fp}.{var}.L{int(level)}.{digest}"

    @staticmethod
    def check_cursor(handle: CampaignHandle, cursor: str | None) -> None:
        """409 when a client cursor references different dataset bytes."""
        if not cursor:
            return
        fp = cursor.split(".", 1)[0]
        if fp != handle.fingerprint[: len(fp)] or not fp:
            raise ConflictError(
                f"cursor {cursor!r} does not match campaign content "
                f"{handle.fingerprint[:12]!r}; re-open the campaign"
            )

    # -- elastic feedback ----------------------------------------------
    def _note_query(
        self,
        handle: CampaignHandle,
        var: str,
        *,
        level: int,
        region=None,
        min_significance: float = 0.0,
        shape: dict | None = None,
    ) -> None:
        """Record one served query shape and heat its plan's subfiles.

        Feedback must never fail a read: plan construction here is
        metadata-only and advisory, so any error is swallowed (the
        response the tenant paid for has already been computed).
        """
        try:
            plan = handle.plan(
                var,
                level=level,
                region=region,
                min_significance=min_significance,
            )
            noted = handle.planner.note_plan(
                self.tracker, plan, now=self.hierarchy.clock.elapsed
            )
        except Exception:  # noqa: BLE001 — advisory path only
            return
        entry = {
            "campaign": handle.name,
            "var": var,
            "level": int(level),
            "region": _region_json(region),
            "subfiles_noted": noted,
        }
        if shape:
            entry.update(shape)
        with self._query_lock:
            self._query_log.append(entry)

    # -- reads ----------------------------------------------------------
    async def restore(
        self,
        name: str,
        var: str,
        *,
        level: int | None = None,
        tolerance: float | None = None,
        region=None,
        min_significance: float = 0.0,
        cursor: str | None = None,
        if_none_match: str | None = None,
        tenant: TenantConfig | None = None,
    ) -> RestoreResult:
        """Restore near the bytes; returns field + cursor + hit flag.

        ``if_none_match`` short-circuits level-mode requests: when the
        client already holds the cursor of the exact result, no field
        is restored or shipped (the service node answers 304 with
        ``state=None``).
        """

        def _restore() -> RestoreResult:
            handle = self._handle(name)
            self.check_cursor(handle, cursor)
            self.check_cursor(handle, if_none_match)
            cache_hit = False
            if tolerance is None and level is not None:
                expected = self.cursor_for(
                    handle, var, int(level),
                    region=region, min_significance=min_significance,
                )
                if if_none_match and if_none_match == expected:
                    return RestoreResult(None, expected, True)
                cache = get_restored_cache()
                cache_hit = cache.has(
                    cache.key_for(
                        handle.dataset, var, int(level),
                        region=region, min_significance=min_significance,
                    )
                )
            with trace.span(
                "service.restore", "restore",
                {"campaign": name, "var": var,
                 "tenant": tenant.name if tenant else ""},
            ):
                state = handle.restore(
                    var,
                    level=level,
                    tolerance=tolerance,
                    region=region,
                    min_significance=min_significance,
                )
            self._note_query(
                handle, var,
                level=state.level,
                region=region,
                min_significance=min_significance,
                shape={
                    "mode": "tolerance" if tolerance is not None else "level",
                    "tolerance": tolerance,
                },
            )
            out_cursor = self.cursor_for(
                handle, var, state.level,
                region=region, min_significance=min_significance,
            )
            if if_none_match and if_none_match == out_cursor:
                return RestoreResult(None, out_cursor, cache_hit)
            return RestoreResult(state, out_cursor, cache_hit)

        return await self._run(_restore, tenant=tenant)

    async def stats(
        self,
        name: str,
        var: str | None = None,
        *,
        level: int | None = None,
        tenant: TenantConfig | None = None,
    ) -> list[dict]:
        def _stats() -> list[dict]:
            return self._handle(name).stats(var, level=level)

        return await self._run(_stats, tenant=tenant)

    # -- pushdown queries ----------------------------------------------
    async def plan(
        self,
        name: str,
        var: str,
        *,
        level: int | None = None,
        tolerance: float | None = None,
        region=None,
        min_significance: float = 0.0,
        tenant: TenantConfig | None = None,
    ) -> dict:
        """Explain (without executing) one retrieval — plan as JSON."""

        def _plan() -> dict:
            return self._handle(name).plan(
                var,
                level=level,
                tolerance=tolerance,
                region=region,
                min_significance=min_significance,
            ).to_dict()

        return await self._run(_plan, tenant=tenant)

    async def query_stats(
        self,
        name: str,
        var: str,
        *,
        region=None,
        tenant: TenantConfig | None = None,
    ) -> dict:
        """Pushdown aggregate statistics, executed near the bytes."""

        def _query() -> dict:
            handle = self._handle(name)
            result = handle.query_stats(var, region=region)
            self._note_query(
                handle, var, level=0, region=region,
                shape={"mode": "stats"},
            )
            return result

        return await self._run(_query, tenant=tenant)

    async def query_blobs(
        self,
        name: str,
        var: str,
        *,
        threshold: float,
        region=None,
        shape: tuple[int, int] = (128, 128),
        tenant: TenantConfig | None = None,
    ) -> dict:
        """Pushdown blob detection, executed near the bytes."""

        def _query() -> dict:
            handle = self._handle(name)
            result = handle.query_blobs(
                var, threshold=threshold, region=region, shape=shape
            )
            self._note_query(
                handle, var, level=0, region=region,
                shape={"mode": "blobs", "threshold": float(threshold)},
            )
            return result

        return await self._run(_query, tenant=tenant)

    async def read_raw(
        self,
        name: str,
        key: str,
        *,
        start: int = 0,
        length: int | None = None,
        tenant: TenantConfig | None = None,
    ) -> tuple[bytes, dict]:
        """Range-read one stored product; returns (bytes, record meta)."""

        def _read() -> tuple[bytes, dict]:
            handle = self._handle(name)
            rec = handle.inq(key)
            blob = handle.read_raw(key, start=start, length=length)
            meta = {
                "key": rec.key,
                "kind": rec.kind,
                "level": rec.level,
                "codec": rec.codec,
                "tier": rec.tier,
                "total_bytes": rec.length,
                "start": start,
                "bytes": len(blob),
            }
            return blob, meta

        return await self._run(_read, tenant=tenant)

    # -- reporting ------------------------------------------------------
    def metrics(self) -> dict:
        """Aggregate data-node view for the /v1/metrics endpoint."""
        cache = get_restored_cache()
        with self._query_lock:
            query_log = list(self._query_log)
        return {
            "campaigns": self.session.campaigns,
            "engine": self.session.stats(),
            "restored_cache": cache.stats(),
            "query": {
                "log": query_log,
                "tracked_subfiles": len(self.tracker.records),
                "tracked_reads": sum(
                    info.reads for info in self.tracker.records.values()
                ),
            },
            "executor": {
                "workers": self.executor_workers,
                "queued_slots_free": getattr(self._slots, "_value", None),
            },
            "storage": {
                # Degraded-mode visibility: a tier goes degraded when its
                # backend routes a read or write around a failed replica
                # and stays so until a repair sweep completes. Reads keep
                # serving from surviving replicas (503 only when none
                # survives); operators watch this plus the process-wide
                # storage.degraded / repair.* counters.
                "degraded_tiers": [
                    t.name for t in self.hierarchy.tiers if t.degraded
                ],
                "replication": {
                    t.name: t.replication_factor
                    for t in self.hierarchy.tiers
                },
                "adoption_problems": {
                    t.name: len(t.adoption_problems)
                    for t in self.hierarchy.tiers
                    if t.adoption_problems
                },
            },
            "sim_clock_elapsed": self.hierarchy.clock.elapsed,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.hierarchy.clock.remove_listener(self._clock_listener)
        self._executor.shutdown(wait=True)
        self.session.close()
