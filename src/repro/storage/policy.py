"""Tier management policy: high-water eviction and hot promotion.

Paper §IV-B: "All runs assume that the base dataset can always fit in
tmpfs. However, in a production environment, this may not be true and we
believe data migration and eviction will play an integral part, which
needs to be developed in Canopus." This module develops it:

* every tier gets a **high-water mark**; when usage crosses it, the
  coldest files (least recently / least frequently accessed, by
  simulated-clock timestamps) are demoted one tier down until usage
  falls below the **low-water mark**;
* files that are read often on a slow tier can be **promoted** to the
  fastest tier with room, keeping hot bases fast even under pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["AccessTracker", "TierManager"]


@dataclass
class _AccessInfo:
    reads: int = 0
    last_access: float = 0.0


@dataclass
class AccessTracker:
    """Read statistics per relpath, stamped with the simulated clock."""

    records: dict[str, _AccessInfo] = field(default_factory=dict)

    def note(self, relpath: str, now: float) -> None:
        info = self.records.setdefault(relpath, _AccessInfo())
        info.reads += 1
        info.last_access = now

    def temperature(self, relpath: str) -> tuple[float, int]:
        """Sort key: (last_access, reads); lowest = coldest."""
        info = self.records.get(relpath, _AccessInfo())
        return (info.last_access, info.reads)


class TierManager:
    """Watermark-driven migration over a :class:`StorageHierarchy`."""

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        *,
        high_water: float = 0.9,
        low_water: float = 0.7,
        promote_after_reads: int = 3,
    ) -> None:
        if not 0 < low_water < high_water <= 1.0:
            raise StorageError("need 0 < low_water < high_water <= 1")
        self.hierarchy = hierarchy
        self.high_water = high_water
        self.low_water = low_water
        self.promote_after_reads = promote_after_reads
        self.tracker = AccessTracker()

    # ------------------------------------------------------------------
    def read(self, relpath: str, label: str = "") -> bytes:
        """Tracked read: feeds the policy's access statistics."""
        data = self.hierarchy.read(relpath, label)
        self.tracker.note(relpath, self.hierarchy.clock.elapsed)
        return data

    # ------------------------------------------------------------------
    def rebalance(self) -> list[tuple[str, str, str]]:
        """Demote cold files from over-watermark tiers.

        Returns the migrations performed as ``(relpath, from, to)``.
        Files on the slowest tier have nowhere to go and are left alone.
        """
        moves: list[tuple[str, str, str]] = []
        for idx, tier in enumerate(self.hierarchy.tiers[:-1]):
            if tier.used_bytes <= self.high_water * tier.capacity_bytes:
                continue
            target = self.low_water * tier.capacity_bytes
            victims = sorted(
                tier.list_files(), key=self.tracker.temperature
            )
            for relpath in victims:
                if tier.used_bytes <= target:
                    break
                dest = self._first_fit(idx + 1, tier.file_size(relpath))
                if dest is None:
                    break  # nothing downstream can hold it
                self.hierarchy.migrate(relpath, dest)
                moves.append((relpath, tier.name, dest))
        return moves

    def _first_fit(self, start_index: int, nbytes: int) -> str | None:
        for tier in self.hierarchy.tiers[start_index:]:
            if tier.has_capacity(nbytes):
                return tier.name
        return None

    # ------------------------------------------------------------------
    def promote_hot(self) -> list[tuple[str, str, str]]:
        """Pull frequently-read files up to the fastest tier with room."""
        moves: list[tuple[str, str, str]] = []
        fastest = self.hierarchy.fastest
        for relpath, info in sorted(
            self.tracker.records.items(),
            key=lambda kv: -kv[1].reads,
        ):
            if info.reads < self.promote_after_reads:
                continue
            src = self.hierarchy.locate(relpath)
            if src is None or src is fastest:
                continue
            size = src.file_size(relpath)
            if fastest.has_capacity(size) and (
                fastest.used_bytes + size
                <= self.high_water * fastest.capacity_bytes
            ):
                self.hierarchy.migrate(relpath, fastest.name)
                moves.append((relpath, src.name, fastest.name))
        return moves
