"""Tier management policy: plan-driven eviction, promotion, re-placement.

Paper §IV-B: "All runs assume that the base dataset can always fit in
tmpfs. However, in a production environment, this may not be true and we
believe data migration and eviction will play an integral part, which
needs to be developed in Canopus." This module develops it:

* every tier gets a **high-water mark**; when usage crosses it, the
  coldest files (least recently / least frequently accessed, by
  simulated-clock timestamps) are demoted one tier down until usage
  falls below the **low-water mark**;
* files that are read often on a slow tier can be **promoted** to the
  fastest tier with room, keeping hot bases fast even under pressure;
* :meth:`TierManager.replan` goes further: it hands the whole inventory
  to the cost-based :class:`~repro.storage.placement.PlacementEngine`
  and executes the resulting :class:`PlacementPlan` — elastic
  re-tiering that migrates deltas up and down as observed read patterns
  shift, instead of reacting to watermarks alone.

Every policy action is expressed as a plan first (``plan_rebalance`` /
``plan_promotions`` return explainable :class:`PlacementPlan` objects
without touching storage) and executed second, so callers can inspect
or veto migrations before bytes move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.obs import trace
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.placement import (
    PlacementDecision,
    PlacementEngine,
    PlacementPlan,
)

__all__ = ["AccessTracker", "TierManager"]


@dataclass
class _AccessInfo:
    reads: int = 0
    last_access: float = 0.0


@dataclass
class AccessTracker:
    """Read statistics per relpath, stamped with the simulated clock."""

    records: dict[str, _AccessInfo] = field(default_factory=dict)

    def note(self, relpath: str, now: float) -> None:
        info = self.records.setdefault(relpath, _AccessInfo())
        info.reads += 1
        info.last_access = now

    def temperature(self, relpath: str) -> tuple[float, int]:
        """Sort key: (last_access, reads); lowest = coldest."""
        info = self.records.get(relpath, _AccessInfo())
        return (info.last_access, info.reads)

    def reads(self, relpath: str) -> int:
        info = self.records.get(relpath)
        return info.reads if info is not None else 0


def _counter(name: str, n: int = 1, **labels) -> None:
    tracer = trace.get_tracer()
    if tracer is not None:
        tracer.metrics.counter(name, **labels).inc(n)


class TierManager:
    """Plan-driven migration policy over a :class:`StorageHierarchy`."""

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        *,
        high_water: float = 0.9,
        low_water: float = 0.7,
        promote_after_reads: int = 3,
    ) -> None:
        if not 0 < low_water < high_water <= 1.0:
            raise StorageError("need 0 < low_water < high_water <= 1")
        self.hierarchy = hierarchy
        self.high_water = high_water
        self.low_water = low_water
        self.promote_after_reads = promote_after_reads
        self.tracker = AccessTracker()
        self.engine = PlacementEngine(hierarchy)

    # ------------------------------------------------------------------
    def read(self, relpath: str, label: str = "") -> bytes:
        """Tracked read: feeds the policy's access statistics."""
        data = self.hierarchy.read(relpath, label)
        self.tracker.note(relpath, self.hierarchy.clock.elapsed)
        return data

    # ------------------------------------------------------------------
    def plan_rebalance(self) -> PlacementPlan:
        """Plan demotions of cold files from over-watermark tiers.

        Pure planning — storage is untouched. The simulation walks tiers
        fastest-first so demotions planned out of tier *i* count against
        tier *i+1*'s budget before that tier is itself examined, exactly
        as eager execution would. Files on the slowest tier have nowhere
        to go and are left alone.
        """
        tiers = self.hierarchy.tiers
        sim_used = {t.name: t.used_bytes for t in tiers}
        sim_files = {
            t.name: {f: t.file_size(f) for f in t.list_files()} for t in tiers
        }
        decisions: list[PlacementDecision] = []
        for idx, tier in enumerate(tiers[:-1]):
            if sim_used[tier.name] <= self.high_water * tier.capacity_bytes:
                continue
            target = self.low_water * tier.capacity_bytes
            victims = sorted(sim_files[tier.name], key=self.tracker.temperature)
            for relpath in victims:
                if sim_used[tier.name] <= target:
                    break
                size = sim_files[tier.name][relpath]
                dest = None
                for cand in tiers[idx + 1:]:
                    if cand.capacity_bytes - sim_used[cand.name] >= size:
                        dest = cand
                        break
                if dest is None:
                    break  # nothing downstream can hold it
                sim_used[tier.name] -= size
                del sim_files[tier.name][relpath]
                sim_used[dest.name] += size
                sim_files[dest.name][relpath] = size
                weight = float(self.tracker.reads(relpath))
                decisions.append(
                    PlacementDecision(
                        key=relpath,
                        nbytes=size,
                        weight=weight,
                        tier=dest.name,
                        est_seconds=weight * dest.device.read_seconds(size),
                        reason=(
                            f"demote coldest: {tier.name} over high-water "
                            f"{self.high_water:g}"
                        ),
                        current_tier=tier.name,
                    )
                )
        return PlacementPlan(decisions)

    def rebalance(self) -> list[tuple[str, str, str]]:
        """Demote cold files from over-watermark tiers.

        Returns the migrations performed as ``(relpath, from, to)``.
        """
        return self._execute(self.plan_rebalance())

    # ------------------------------------------------------------------
    def plan_promotions(self) -> PlacementPlan:
        """Plan pulls of frequently-read files up to the fastest tier.

        Promotion respects the fastest tier's high-water mark so a
        promotion never triggers the very eviction that would undo it
        (watermark thrash).
        """
        fastest = self.hierarchy.fastest
        sim_used = fastest.used_bytes
        decisions: list[PlacementDecision] = []
        for relpath, info in sorted(
            self.tracker.records.items(),
            key=lambda kv: -kv[1].reads,
        ):
            if info.reads < self.promote_after_reads:
                continue
            src = self.hierarchy.locate(relpath)
            if src is None or src is fastest:
                continue
            size = src.file_size(relpath)
            if size <= fastest.capacity_bytes - sim_used and (
                sim_used + size
                <= self.high_water * fastest.capacity_bytes
            ):
                sim_used += size
                weight = float(info.reads)
                decisions.append(
                    PlacementDecision(
                        key=relpath,
                        nbytes=size,
                        weight=weight,
                        tier=fastest.name,
                        est_seconds=weight * fastest.device.read_seconds(size),
                        reason=(
                            f"hot: {info.reads} reads >= "
                            f"{self.promote_after_reads}"
                        ),
                        current_tier=src.name,
                    )
                )
        return PlacementPlan(decisions)

    def promote_hot(self) -> list[tuple[str, str, str]]:
        """Pull frequently-read files up to the fastest tier with room."""
        return self._execute(self.plan_promotions())

    # ------------------------------------------------------------------
    def replan(
        self,
        *,
        headroom: float | None = None,
        replicas: int = 1,
        durability_weight: float = 0.0,
    ) -> list[tuple[str, str, str]]:
        """Cost-based elastic re-tiering of the whole inventory.

        Asks the :class:`PlacementEngine` for a globally cost-optimal
        re-placement weighted by live read statistics, then executes the
        implied migrations (demotions before promotions, so fast-tier
        capacity is freed before it is claimed). Returns the migrations
        performed. A no-op when placement already matches demand — the
        migration penalty in the cost model keeps cold data where it is.
        ``replicas``/``durability_weight`` pass through to
        :meth:`PlacementEngine.plan_replacement`, letting re-tiering
        trade redundancy against tier budget.
        """
        plan = self.engine.plan_replacement(
            self.tracker,
            headroom=self.high_water if headroom is None else headroom,
            replicas=replicas,
            durability_weight=durability_weight,
        )
        return self._execute(plan, demote_first=True)

    # ------------------------------------------------------------------
    def _execute(
        self, plan: PlacementPlan, *, demote_first: bool = False
    ) -> list[tuple[str, str, str]]:
        """Apply a plan's migrations; returns ``(relpath, from, to)``.

        With ``demote_first`` the moves are reordered so migrations
        toward slower tiers run before promotions (relative order
        otherwise preserved) — required for plans produced globally,
        where promotions assume demotions have freed capacity.
        """
        index = {t.name: i for i, t in enumerate(self.hierarchy.tiers)}
        moving = [d for d in plan.decisions if d.is_move]
        if demote_first:
            moving = (
                [d for d in moving if index[d.tier] > index[d.current_tier]]
                + [d for d in moving if index[d.tier] < index[d.current_tier]]
            )
        moves: list[tuple[str, str, str]] = []
        for d in moving:
            self.hierarchy.migrate(d.key, d.tier)
            moves.append((d.key, d.current_tier, d.tier))
            _counter("placement.migrations", src=d.current_tier, dst=d.tier)
            _counter("placement.bytes_moved", d.nbytes)
        return moves
