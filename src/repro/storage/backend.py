"""Pluggable object-store backends for storage tiers.

A :class:`StorageTier` used to be welded to a local directory; the tier
now delegates every byte movement to an :class:`ObjectStore` backend and
keeps only the device cost model and capacity accounting for itself.
Five backends ship here, composable into a durability-aware layer cake:

* :class:`FilesystemBackend` — one file per object under a root
  directory (the seed behaviour; a tier directory persists across
  handles like a real mount);
* :class:`MemoryBackend` — tmpfs-class in-process store (bytes held in
  a dict), for DRAM-like tiers and fast tests;
* :class:`ShardedBackend` — stripes each object into fixed-size chunks
  across a ring of sub-stores with batched multi-chunk get/put and a
  write-ahead manifest journal, the shape of an object store
  (OASIS-style) or a striped PFS;
* :class:`ReplicatedBackend` — N-way mirroring over any sub-backends:
  quorum-less read-with-failover, CRC-triggered read-repair, and an
  anti-entropy :meth:`~ObjectStore.repair` sweep;
* :class:`RemoteBackend` — S3-class remote hop around an inner store,
  charging network latency/bandwidth to the simulated clock and
  retrying injected transient faults with exponential backoff.

Backends move *real* bytes — the end-to-end pipeline stays honest — and
never touch the simulated clock; transfer-time charging stays with the
tier that owns the device model. :class:`RemoteBackend` is the one
deliberate exception: the network hop is not part of any device model,
so the backend charges it directly via :meth:`ObjectStore.bind_clock`
(backoff waits are likewise simulated, never slept).
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import threading
import zlib
from abc import ABC, abstractmethod
from pathlib import Path

from repro.errors import StorageError, TransientFaultError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = [
    "ObjectStore",
    "FilesystemBackend",
    "MemoryBackend",
    "ShardedBackend",
    "ReplicatedBackend",
    "RemoteBackend",
    "make_backend",
    "BACKEND_KINDS",
    "DEFAULT_NETWORK_BANDWIDTH",
    "DEFAULT_NETWORK_LATENCY",
]

#: Range-read request: ``(key, offset, length)``.
RangeRequest = tuple[str, int, int]

#: Simulated network defaults shared with ``io/transports.py`` (a 40 GbE
#: class link: ~5 GiB/s, 2 µs per message).
DEFAULT_NETWORK_BANDWIDTH = 5 * (1 << 30)
DEFAULT_NETWORK_LATENCY = 2e-6


def _counter(name: str, n: int = 1, **labels: str) -> None:
    """Bump a durability counter in the process registry (and tracer's)."""
    get_registry().counter(name, **labels).inc(n)
    tracer = get_tracer()
    if tracer is not None and tracer.metrics is not get_registry():
        tracer.metrics.counter(name, **labels).inc(n)


class ObjectStore(ABC):
    """Keyed byte-object storage with ranged and batched reads.

    Keys are tier-relative object names (``"run.tmpfs.bp"``); values are
    opaque byte strings. Implementations must be thread-safe for
    concurrent reads (the retrieval engine's worker threads call
    :meth:`get_range` in parallel) and must raise
    :class:`~repro.errors.StorageError` for missing keys and
    out-of-bounds ranges — never backend-native errors.
    """

    #: Short backend identifier used in metrics labels and configs.
    kind = ""

    # -- single-object ops ----------------------------------------------
    @abstractmethod
    def put(self, key: str, data: bytes) -> int:
        """Store ``data`` under ``key`` (overwrite allowed); returns size."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Fetch the complete object."""

    @abstractmethod
    def get_range(self, key: str, offset: int, length: int) -> bytes:
        """Fetch ``length`` bytes at ``offset`` (bounds-checked)."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove an object (missing key is an error)."""

    @abstractmethod
    def exists(self, key: str) -> bool: ...

    @abstractmethod
    def size(self, key: str) -> int: ...

    @abstractmethod
    def list_objects(self) -> list[tuple[str, int]]:
        """All ``(key, size)`` pairs, sorted by key (inventory scan)."""

    # -- batched ops -----------------------------------------------------
    def put_many(self, items: dict[str, bytes]) -> int:
        """Store several objects; returns total bytes stored."""
        return sum(self.put(key, data) for key, data in sorted(items.items()))

    def get_many(self, requests: list[RangeRequest]) -> list[bytes]:
        """Fetch several ranges; result order matches ``requests``."""
        return [self.get_range(k, off, length) for k, off, length in requests]

    # -- durability contract ---------------------------------------------
    @property
    def replication_factor(self) -> int:
        """How many independent copies of each byte this store holds."""
        return 1

    @property
    def degraded(self) -> bool:
        """True once any read or write had to route around a failure."""
        return False

    def bind_clock(self, clock) -> None:
        """Attach a :class:`SimClock` for backends that charge sim time.

        Plain backends ignore it (the owning tier charges device time);
        :class:`RemoteBackend` uses it for network latency/bandwidth and
        retry backoff. Composite backends forward the clock downward.
        """

    def repair(self) -> list[str]:
        """Restore internal redundancy/consistency; returns action strings.

        The base implementation has nothing to repair. Composite stores
        roll journals forward, garbage-collect orphans, rebuild
        manifests, and re-replicate from surviving copies.
        """
        return []

    def uncharged(self):
        """Context manager suppressing simulated-clock charges.

        A no-op for local backends (they never touch the clock).
        :class:`RemoteBackend` overrides it so the tier peek path —
        where the retrieval engine accounts simulated time per
        overlapped batch itself — does not double-charge the network
        hop; composite backends forward it to their sub-stores.
        """
        return contextlib.nullcontext()

    # -- integrity -------------------------------------------------------
    def verify(self, deep: bool = True) -> list[str]:
        """Structural self-check; returns human-readable problem strings.

        With ``deep=True`` the base implementation re-reads every listed
        object and checks the stored size; sharded stores additionally
        check chunk inventory and cross-chunk checksums. ``deep=False``
        asks for the cheapest sufficient check (metadata/size only) —
        used on tier adoption where re-reading a full store is too
        expensive.
        """
        problems: list[str] = []
        for key, size in self.list_objects():
            try:
                actual = len(self.get(key)) if deep else self.size(key)
            except StorageError as exc:
                problems.append(f"{key}: unreadable ({exc})")
                continue
            if actual != size:
                problems.append(
                    f"{key}: stored {actual} bytes, inventory says {size}"
                )
        return problems

    def _check_range(self, key: str, offset: int, length: int, size: int) -> None:
        if offset < 0 or length < 0 or offset + length > size:
            raise StorageError(
                f"{self.kind} backend: range [{offset}, {offset + length}) "
                f"outside object {key!r} of {size} bytes"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FilesystemBackend(ObjectStore):
    """One file per object under a root directory (created if missing).

    Stateless over the directory: a second handle on the same root sees
    whatever is already stored there, like a real mount.
    """

    kind = "filesystem"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        p = (self.root / key).resolve()
        root = self.root.resolve()
        if root not in p.parents and p != root:
            raise StorageError(f"object key {key!r} escapes backend root")
        return p

    def put(self, key: str, data: bytes) -> int:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent readers never observe a torn
        # (truncated mid-rewrite) object.
        tmp = path.with_name(f"{path.name}.tmp.{threading.get_ident()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        return len(data)

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except OSError as exc:
            raise StorageError(f"no object {key!r}: {exc}") from exc

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        path = self._path(key)
        try:
            size = path.stat().st_size
        except OSError as exc:
            raise StorageError(f"no object {key!r}: {exc}") from exc
        self._check_range(key, offset, length, size)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                return fh.read(length)
        except OSError as exc:
            raise StorageError(f"cannot read {key!r}: {exc}") from exc

    def delete(self, key: str) -> None:
        path = self._path(key)
        if not path.is_file():
            raise StorageError(f"no object {key!r}")
        path.unlink()

    def exists(self, key: str) -> bool:
        try:
            return self._path(key).is_file()
        except StorageError:
            return False

    def size(self, key: str) -> int:
        path = self._path(key)
        if not path.is_file():
            raise StorageError(f"no object {key!r}")
        return path.stat().st_size

    def list_objects(self) -> list[tuple[str, int]]:
        return sorted(
            (str(p.relative_to(self.root)), p.stat().st_size)
            for p in self.root.rglob("*")
            if p.is_file()
        )

    def __repr__(self) -> str:
        return f"FilesystemBackend(root={str(self.root)!r})"


class MemoryBackend(ObjectStore):
    """tmpfs-class in-process store; objects live in a dict.

    Contents die with the backend object (like tmpfs dies with the
    node), which is exactly the semantics a DRAM-tier model wants.
    Ranged reads are bounds-checked exactly like
    :class:`FilesystemBackend` — an out-of-bounds range raises
    :class:`~repro.errors.StorageError`, never a silent short read.
    """

    kind = "memory"

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put(self, key: str, data: bytes) -> int:
        data = bytes(data)
        with self._lock:
            self._objects[key] = data
        return len(data)

    def _get(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(f"no object {key!r}") from None

    def get(self, key: str) -> bytes:
        with self._lock:
            return self._get(key)

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        with self._lock:
            data = self._get(key)
        self._check_range(key, offset, length, len(data))
        return data[offset:offset + length]

    def delete(self, key: str) -> None:
        with self._lock:
            if key not in self._objects:
                raise StorageError(f"no object {key!r}")
            del self._objects[key]

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def size(self, key: str) -> int:
        with self._lock:
            return len(self._get(key))

    def list_objects(self) -> list[tuple[str, int]]:
        with self._lock:
            return sorted((k, len(v)) for k, v in self._objects.items())


#: Chunk-name suffixes: ``<key>#meta``, ``<key>#wal`` (journal) and
#: ``<key>#<index:06d>``; replicated stores add ``<key>#rcrc`` sidecars.
_CHUNK_RE = re.compile(r"^(?P<key>.+)#(?P<idx>\d{6})$")
_META_SUFFIX = "#meta"
_WAL_SUFFIX = "#wal"
_RCRC_SUFFIX = "#rcrc"


class ShardedBackend(ObjectStore):
    """Stripes objects into fixed-size chunks across sub-stores.

    Chunk ``i`` of an object lands on sub-store ``i % len(substores)``
    under the key ``"<key>#<i:06d>"``; a small JSON manifest
    (``"<key>#meta"`` on sub-store 0) records the object size, chunk
    size, chunk count, and a CRC-32 over the whole object so
    :meth:`verify` can detect missing chunks, orphaned chunks, and
    corruption across chunk boundaries. Ranged reads touch only the
    chunks overlapping the range and are issued as one batched
    multi-chunk get per sub-store.

    Writes are journalled: :meth:`put` first records the *intended*
    manifest as ``"<key>#wal"`` on sub-store 0, then writes chunks, then
    the real manifest, and deletes the journal entry last. A crash at
    any point leaves either a complete old object, a complete new object
    reachable by rolling the journal forward, or garbage-collectable
    partial chunks — :meth:`repair` (and ``repro fsck --repair``)
    resolves all three. Set ``journal=False`` to trade that crash window
    for one fewer metadata write per put.
    """

    kind = "sharded"

    def __init__(
        self,
        substores: list[ObjectStore],
        *,
        chunk_size: int = 256 * 1024,
        journal: bool = True,
    ) -> None:
        if not substores:
            raise StorageError("sharded backend needs at least one sub-store")
        if chunk_size <= 0:
            raise StorageError("chunk_size must be positive")
        self.substores = list(substores)
        self.chunk_size = int(chunk_size)
        self.journal = bool(journal)

    # -- layout helpers --------------------------------------------------
    def _store_for(self, index: int) -> ObjectStore:
        return self.substores[index % len(self.substores)]

    @staticmethod
    def _chunk_key(key: str, index: int) -> str:
        return f"{key}#{index:06d}"

    def _manifest(self, key: str) -> dict:
        try:
            blob = self.substores[0].get(key + _META_SUFFIX)
        except StorageError:
            raise StorageError(f"no object {key!r}") from None
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise StorageError(f"corrupt manifest for {key!r}: {exc}") from exc

    # -- durability contract ---------------------------------------------
    @property
    def replication_factor(self) -> int:
        return min(s.replication_factor for s in self.substores)

    @property
    def degraded(self) -> bool:
        return any(s.degraded for s in self.substores)

    def bind_clock(self, clock) -> None:
        for store in self.substores:
            store.bind_clock(clock)

    def uncharged(self):
        stack = contextlib.ExitStack()
        for store in self.substores:
            stack.enter_context(store.uncharged())
        return stack

    # -- single-object ops ----------------------------------------------
    def put(self, key: str, data: bytes) -> int:
        data = bytes(data)
        cs = self.chunk_size
        nchunks = max(1, -(-len(data) // cs))
        old_chunks = 0
        if self.substores[0].exists(key + _META_SUFFIX):
            old_chunks = int(self._manifest(key).get("chunks", 0))
        manifest = {
            "size": len(data),
            "chunk_size": cs,
            "chunks": nchunks,
            "crc32": zlib.crc32(data) & 0xFFFFFFFF,
        }
        if self.journal:
            wal = dict(manifest, old_chunks=old_chunks)
            self.substores[0].put(
                key + _WAL_SUFFIX, json.dumps(wal, sort_keys=True).encode()
            )
        per_store: dict[int, dict[str, bytes]] = {}
        for i in range(nchunks):
            per_store.setdefault(i % len(self.substores), {})[
                self._chunk_key(key, i)
            ] = data[i * cs:(i + 1) * cs]
        for store_idx, items in sorted(per_store.items()):
            self.substores[store_idx].put_many(items)
        self.substores[0].put(
            key + _META_SUFFIX, json.dumps(manifest, sort_keys=True).encode()
        )
        # Shrinking overwrite: drop chunks beyond the new count so the
        # inventory never reports stale orphans.
        for i in range(nchunks, old_chunks):
            store = self._store_for(i)
            try:
                store.delete(self._chunk_key(key, i))
            except StorageError:
                pass  # a concurrent rewrite already dropped it
        if self.journal:
            try:
                self.substores[0].delete(key + _WAL_SUFFIX)
            except StorageError:
                pass  # a concurrent put of the same key completed first
        return len(data)

    def get(self, key: str) -> bytes:
        manifest = self._manifest(key)
        return self.get_range(key, 0, int(manifest["size"]))

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        manifest = self._manifest(key)
        size = int(manifest["size"])
        cs = int(manifest["chunk_size"])
        self._check_range(key, offset, length, size)
        if length == 0:
            return b""
        first = offset // cs
        last = (offset + length - 1) // cs
        # One batched multi-chunk get per sub-store, results re-ordered.
        per_store: dict[int, list[tuple[int, str]]] = {}
        for i in range(first, last + 1):
            per_store.setdefault(i % len(self.substores), []).append(
                (i, self._chunk_key(key, i))
            )
        chunks: dict[int, bytes] = {}
        for store_idx, wanted in sorted(per_store.items()):
            store = self.substores[store_idx]
            try:
                blobs = store.get_many(
                    [(ck, 0, store.size(ck)) for _, ck in wanted]
                )
            except StorageError as exc:
                raise StorageError(
                    f"{key!r}: missing chunk on sub-store {store_idx} ({exc})"
                ) from exc
            for (i, _), blob in zip(wanted, blobs):
                chunks[i] = blob
        blob = b"".join(chunks[i] for i in range(first, last + 1))
        lo = offset - first * cs
        return blob[lo:lo + length]

    def delete(self, key: str) -> None:
        manifest = self._manifest(key)
        for i in range(int(manifest["chunks"])):
            store = self._store_for(i)
            if store.exists(self._chunk_key(key, i)):
                store.delete(self._chunk_key(key, i))
        self.substores[0].delete(key + _META_SUFFIX)

    def exists(self, key: str) -> bool:
        return self.substores[0].exists(key + _META_SUFFIX)

    def size(self, key: str) -> int:
        return int(self._manifest(key)["size"])

    def list_objects(self) -> list[tuple[str, int]]:
        out = []
        for name, _ in self.substores[0].list_objects():
            if name.endswith(_META_SUFFIX):
                key = name[: -len(_META_SUFFIX)]
                out.append((key, self.size(key)))
        return sorted(out)

    def get_many(self, requests: list[RangeRequest]) -> list[bytes]:
        # Manifests are read once per distinct key; chunk fetches then go
        # through the per-request batched path.
        return [self.get_range(k, off, length) for k, off, length in requests]

    # -- integrity -------------------------------------------------------
    def verify(self, deep: bool = True) -> list[str]:
        """Chunk-inventory + cross-chunk CRC check.

        Reports, per object: missing chunks (manifest says N, chunk i is
        gone), size drift, and — when ``deep`` — CRC-32 mismatches over
        the reassembled byte stream (detects corruption *across* chunk
        boundaries that a per-chunk check would miss). With
        ``deep=False`` chunks are never read back: per-chunk sizes must
        sum to the manifest size (the cheap adoption-time check). Chunks
        with no manifest — or with an index beyond the manifest's count
        — are reported as orphans; lingering journal entries are
        reported as interrupted puts. Replicated sub-stores are asked to
        verify themselves so under-replication surfaces here too.
        """
        problems: list[str] = []
        # Ask replicated sub-stores first: the deep pass below reads
        # through them, and a read-with-failover *heals* damaged copies
        # (read-repair) — auditing afterwards would under-report.
        for store in self.substores:
            if store.replication_factor > 1 or store.degraded:
                problems.extend(store.verify(deep=deep))
        manifests: dict[str, dict] = {}
        for name, _ in self.substores[0].list_objects():
            if name.endswith(_WAL_SUFFIX):
                problems.append(
                    f"{name[: -len(_WAL_SUFFIX)]}: interrupted put (journal "
                    "entry present; repair() rolls it forward or collects it)"
                )
            elif name.endswith(_META_SUFFIX):
                key = name[: -len(_META_SUFFIX)]
                try:
                    manifests[key] = self._manifest(key)
                except StorageError as exc:
                    problems.append(str(exc))
        for key, manifest in sorted(manifests.items()):
            nchunks = int(manifest["chunks"])
            missing = [
                i
                for i in range(nchunks)
                if not self._store_for(i).exists(self._chunk_key(key, i))
            ]
            if missing:
                problems.append(
                    f"{key}: missing chunk(s) {missing} of {nchunks}"
                )
                continue
            if not deep:
                total = sum(
                    self._store_for(i).size(self._chunk_key(key, i))
                    for i in range(nchunks)
                )
                if total != int(manifest["size"]):
                    problems.append(
                        f"{key}: chunk sizes sum to {total}, manifest says "
                        f"{manifest['size']}"
                    )
                continue
            data = b"".join(
                self._store_for(i).get(self._chunk_key(key, i))
                for i in range(nchunks)
            )
            if len(data) != int(manifest["size"]):
                problems.append(
                    f"{key}: reassembled {len(data)} bytes, manifest says "
                    f"{manifest['size']}"
                )
                continue
            crc = zlib.crc32(data) & 0xFFFFFFFF
            if crc != int(manifest["crc32"]):
                problems.append(
                    f"{key}: crc mismatch over chunk boundaries "
                    f"({crc:08x} != {int(manifest['crc32']):08x})"
                )
        for store_idx, store in enumerate(self.substores):
            for name, _ in store.list_objects():
                m = _CHUNK_RE.match(name)
                if m is None:
                    continue
                key, idx = m.group("key"), int(m.group("idx"))
                manifest = manifests.get(key)
                if manifest is None:
                    problems.append(
                        f"{name}: orphaned chunk (no manifest for {key!r}) "
                        f"on sub-store {store_idx}"
                    )
                elif idx >= int(manifest["chunks"]):
                    problems.append(
                        f"{name}: orphaned chunk (manifest records only "
                        f"{manifest['chunks']} chunks)"
                    )
        return problems

    # -- repair -----------------------------------------------------------
    def recover(self) -> list[str]:
        """Resolve journal entries left by interrupted puts.

        A complete, CRC-clean new image is rolled forward (manifest
        rebuilt from the journal record); anything else is
        garbage-collected, keeping chunks still covered by a surviving
        older manifest.
        """
        actions: list[str] = []
        wal_names = [
            name
            for name, _ in self.substores[0].list_objects()
            if name.endswith(_WAL_SUFFIX)
        ]
        for name in wal_names:
            key = name[: -len(_WAL_SUFFIX)]
            try:
                wal = json.loads(self.substores[0].get(name).decode("utf-8"))
                nchunks = int(wal["chunks"])
                size = int(wal["size"])
                cs = int(wal["chunk_size"])
                crc = int(wal["crc32"])
            except (StorageError, ValueError, KeyError, UnicodeDecodeError):
                self.substores[0].delete(name)
                actions.append(f"{key}: dropped unreadable journal entry")
                continue
            complete = all(
                self._store_for(i).exists(self._chunk_key(key, i))
                for i in range(nchunks)
            )
            if complete:
                blob = b"".join(
                    self._store_for(i).get(self._chunk_key(key, i))
                    for i in range(nchunks)
                )
                complete = (
                    len(blob) == size and zlib.crc32(blob) & 0xFFFFFFFF == crc
                )
            if complete:
                manifest = {
                    "size": size, "chunk_size": cs,
                    "chunks": nchunks, "crc32": crc,
                }
                self.substores[0].put(
                    key + _META_SUFFIX,
                    json.dumps(manifest, sort_keys=True).encode(),
                )
                for i in range(nchunks, int(wal.get("old_chunks", 0))):
                    store = self._store_for(i)
                    if store.exists(self._chunk_key(key, i)):
                        store.delete(self._chunk_key(key, i))
                actions.append(
                    f"{key}: rolled forward interrupted put "
                    f"({nchunks} chunks, manifest rebuilt)"
                )
                _counter("repair.journal", outcome="rolled_forward")
            else:
                # Partial image. Keep chunks an older manifest still
                # covers (its object may still verify); GC the rest.
                keep = 0
                if self.substores[0].exists(key + _META_SUFFIX):
                    try:
                        keep = int(self._manifest(key).get("chunks", 0))
                    except StorageError:
                        keep = 0
                for i in range(keep, nchunks):
                    store = self._store_for(i)
                    if store.exists(self._chunk_key(key, i)):
                        store.delete(self._chunk_key(key, i))
                actions.append(
                    f"{key}: garbage-collected interrupted put"
                    + (" (previous manifest kept)" if keep else "")
                )
                _counter("repair.journal", outcome="collected")
            self.substores[0].delete(key + _WAL_SUFFIX)
        return actions

    def _rebuild_manifest(self, key: str, chunk_names: list[str]) -> bool:
        """Reconstruct ``<key>#meta`` from an intact contiguous chunk run."""
        indexes = sorted(
            int(_CHUNK_RE.match(n).group("idx")) for n in chunk_names
        )
        if indexes != list(range(len(indexes))):
            return False
        data = b"".join(
            self._store_for(i).get(self._chunk_key(key, i)) for i in indexes
        )
        cs = (
            len(self._store_for(0).get(self._chunk_key(key, 0)))
            if len(indexes) > 1
            else self.chunk_size
        )
        manifest = {
            "size": len(data),
            "chunk_size": cs,
            "chunks": len(indexes),
            "crc32": zlib.crc32(data) & 0xFFFFFFFF,
        }
        self.substores[0].put(
            key + _META_SUFFIX, json.dumps(manifest, sort_keys=True).encode()
        )
        return True

    def repair(self) -> list[str]:
        """Self-heal: sub-store repair, journal recovery, manifest
        rebuild, orphan GC.

        Order matters: replicated sub-stores re-replicate first (journal
        recovery may need chunks a dead replica lost), then journal
        entries are resolved, then manifests that are corrupt — or
        missing while a contiguous chunk run survives — are rebuilt from
        the chunks themselves, and finally chunks nothing references are
        garbage-collected.
        """
        actions: list[str] = []
        for idx, store in enumerate(self.substores):
            for action in store.repair():
                actions.append(f"sub-store {idx}: {action}")
        actions.extend(self.recover())
        # Rebuild manifests that no longer parse.
        for name, _ in self.substores[0].list_objects():
            if not name.endswith(_META_SUFFIX):
                continue
            key = name[: -len(_META_SUFFIX)]
            try:
                self._manifest(key)
            except StorageError:
                chunk_names = [
                    cn
                    for store in self.substores
                    for cn, _ in store.list_objects()
                    if (m := _CHUNK_RE.match(cn)) and m.group("key") == key
                ]
                if chunk_names and self._rebuild_manifest(key, chunk_names):
                    actions.append(
                        f"{key}: rebuilt corrupt manifest from "
                        f"{len(chunk_names)} surviving chunks"
                    )
                    _counter("repair.manifests_rebuilt")
                else:
                    self.substores[0].delete(name)
                    actions.append(
                        f"{key}: dropped corrupt manifest (no intact chunk run)"
                    )
        # Orphaned chunk families with no manifest at all: a lost
        # manifest if the run is contiguous from 0 (rebuild), else junk.
        manifests: dict[str, dict] = {}
        for name, _ in self.substores[0].list_objects():
            if name.endswith(_META_SUFFIX):
                key = name[: -len(_META_SUFFIX)]
                manifests[key] = self._manifest(key)
        families: dict[str, list[tuple[int, str]]] = {}
        for store_idx, store in enumerate(self.substores):
            for name, _ in store.list_objects():
                m = _CHUNK_RE.match(name)
                if m is None:
                    continue
                families.setdefault(m.group("key"), []).append(
                    (store_idx, name)
                )
        for key, members in sorted(families.items()):
            manifest = manifests.get(key)
            if manifest is None:
                names = [n for _, n in members]
                if self._rebuild_manifest(key, names):
                    actions.append(
                        f"{key}: rebuilt missing manifest from "
                        f"{len(names)} surviving chunks"
                    )
                    _counter("repair.manifests_rebuilt")
                    continue
                for store_idx, name in members:
                    self.substores[store_idx].delete(name)
                    actions.append(
                        f"{name}: garbage-collected orphaned chunk "
                        f"(sub-store {store_idx})"
                    )
                    _counter("repair.orphans_collected")
                continue
            nchunks = int(manifest["chunks"])
            for store_idx, name in members:
                if int(_CHUNK_RE.match(name).group("idx")) >= nchunks:
                    self.substores[store_idx].delete(name)
                    actions.append(
                        f"{name}: garbage-collected orphaned chunk "
                        f"(sub-store {store_idx})"
                    )
                    _counter("repair.orphans_collected")
        return actions

    def __repr__(self) -> str:
        return (
            f"ShardedBackend(substores={len(self.substores)}, "
            f"chunk_size={self.chunk_size})"
        )


class ReplicatedBackend(ObjectStore):
    """N-way mirroring over any sub-backends.

    Every :meth:`put` writes the object *and* a small JSON integrity
    sidecar (``"<key>#rcrc"``: size + CRC-32) to each replica; a write
    succeeds if at least one replica accepts it. Reads are quorum-less:
    replicas are tried in order, each candidate CRC-checked against its
    sidecar, and the first intact copy wins — a stale, truncated, or
    bit-flipped copy triggers failover and (by default) *read-repair*,
    rewriting the bad replicas from the good bytes in-line. Partial
    ranged reads skip the whole-object CRC (standard object-store
    semantics) but still verify the replica's size against its sidecar,
    so truncation cannot serve short. :meth:`repair` is the anti-entropy
    sweep: every object is re-replicated from any surviving intact copy
    until all replicas agree.

    The store is *degraded* (``storage.degraded`` counter, flag exposed
    up through :class:`StorageTier` to the service) from the first
    routed-around failure until a repair sweep completes cleanly.
    """

    kind = "replicated"

    def __init__(
        self, replicas: list[ObjectStore], *, read_repair: bool = True
    ) -> None:
        if not replicas:
            raise StorageError("replicated backend needs at least one replica")
        self.replicas = list(replicas)
        self.read_repair = bool(read_repair)
        self._degraded = False
        self._lock = threading.Lock()

    # -- durability contract ---------------------------------------------
    @property
    def replication_factor(self) -> int:
        return len(self.replicas) * min(
            r.replication_factor for r in self.replicas
        )

    @property
    def degraded(self) -> bool:
        return self._degraded or any(r.degraded for r in self.replicas)

    def bind_clock(self, clock) -> None:
        for rep in self.replicas:
            rep.bind_clock(clock)

    def uncharged(self):
        stack = contextlib.ExitStack()
        for rep in self.replicas:
            stack.enter_context(rep.uncharged())
        return stack

    def _note_degraded(self, op: str, replica: int) -> None:
        with self._lock:
            self._degraded = True
        _counter("storage.degraded", op=op, replica=str(replica))

    # -- sidecar helpers --------------------------------------------------
    @staticmethod
    def _sidecar(data: bytes) -> bytes:
        return json.dumps(
            {"size": len(data), "crc32": zlib.crc32(data) & 0xFFFFFFFF},
            sort_keys=True,
        ).encode()

    @staticmethod
    def _meta(rep: ObjectStore, key: str) -> dict:
        try:
            meta = json.loads(rep.get(key + _RCRC_SUFFIX).decode("utf-8"))
            return {"size": int(meta["size"]), "crc32": int(meta["crc32"])}
        except (StorageError, ValueError, KeyError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"replica sidecar for {key!r} unreadable: {exc}"
            ) from exc

    def _intact(self, rep: ObjectStore, key: str) -> bytes:
        """One replica's copy, CRC-verified against its sidecar."""
        data = rep.get(key)
        meta = self._meta(rep, key)
        if meta["size"] != len(data) or meta["crc32"] != (
            zlib.crc32(data) & 0xFFFFFFFF
        ):
            raise StorageError(f"replica copy of {key!r} fails its CRC")
        return data

    def _repair_key(self, key: str, data: bytes, indices: list[int]) -> None:
        sidecar = self._sidecar(data)
        for i in indices:
            try:
                self.replicas[i].put(key, data)
                self.replicas[i].put(key + _RCRC_SUFFIX, sidecar)
                _counter("repair.read_repair", replica=str(i))
            except StorageError:
                continue

    # -- single-object ops ----------------------------------------------
    def put(self, key: str, data: bytes) -> int:
        data = bytes(data)
        sidecar = self._sidecar(data)
        stored = 0
        for i, rep in enumerate(self.replicas):
            try:
                rep.put(key, data)
                rep.put(key + _RCRC_SUFFIX, sidecar)
                stored += 1
            except StorageError:
                # Under-replicated but durable: anti-entropy heals later.
                self._note_degraded("write", i)
        if not stored:
            raise StorageError(f"no replica accepted {key!r}")
        return len(data)

    def get(self, key: str) -> bytes:
        failed: list[int] = []
        for i, rep in enumerate(self.replicas):
            try:
                data = self._intact(rep, key)
            except StorageError:
                failed.append(i)
                continue
            if failed:
                self._note_degraded("read", failed[0])
                _counter("storage.replica.failover")
                if self.read_repair:
                    self._repair_key(key, data, failed)
            return data
        # No CRC-verifiable copy; last resort is any bare readable copy
        # (e.g. an adopted store that predates sidecars).
        for rep in self.replicas:
            try:
                return rep.get(key)
            except StorageError:
                continue
        raise StorageError(f"no replica survives for {key!r}")

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        size = self.size(key)
        self._check_range(key, offset, length, size)
        if offset == 0 and length == size:
            # Full-object read (the sharded chunk path): take the
            # CRC-checked route so read-repair triggers on corruption.
            return self.get(key)
        failed: list[int] = []
        for i, rep in enumerate(self.replicas):
            try:
                meta = self._meta(rep, key)
                if rep.size(key) != meta["size"]:
                    raise StorageError(
                        f"replica copy of {key!r} has drifted size"
                    )
                blob = rep.get_range(key, offset, length)
            except StorageError:
                failed.append(i)
                continue
            if failed:
                self._note_degraded("read", failed[0])
                _counter("storage.replica.failover")
                if self.read_repair:
                    try:
                        self._repair_key(key, self._intact(rep, key), failed)
                    except StorageError:
                        pass
            return blob
        raise StorageError(f"no replica survives for {key!r}")

    def delete(self, key: str) -> None:
        found = False
        for rep in self.replicas:
            for name in (key, key + _RCRC_SUFFIX):
                try:
                    if rep.exists(name):
                        rep.delete(name)
                        found = found or name == key
                except StorageError:
                    continue
        if not found:
            raise StorageError(f"no object {key!r}")

    def exists(self, key: str) -> bool:
        for rep in self.replicas:
            try:
                if rep.exists(key):
                    return True
            except StorageError:
                continue
        return False

    def size(self, key: str) -> int:
        for rep in self.replicas:
            try:
                return self._meta(rep, key)["size"]
            except StorageError:
                continue
        for rep in self.replicas:
            try:
                return rep.size(key)
            except StorageError:
                continue
        raise StorageError(f"no object {key!r}")

    def list_objects(self) -> list[tuple[str, int]]:
        out: dict[str, int] = {}
        for rep in self.replicas:
            try:
                listing = rep.list_objects()
            except StorageError:
                continue
            for name, size in listing:
                if name.endswith(_RCRC_SUFFIX):
                    continue
                out.setdefault(name, size)
        return sorted(out.items())

    # -- integrity -------------------------------------------------------
    def verify(self, deep: bool = True) -> list[str]:
        """Report replicas whose copy is missing, drifted, or corrupt.

        ``deep`` re-reads and CRC-checks every copy on every replica;
        ``deep=False`` checks existence and sidecar-vs-stored size only.
        """
        problems: list[str] = []
        for key, _ in self.list_objects():
            for i, rep in enumerate(self.replicas):
                try:
                    if deep:
                        self._intact(rep, key)
                    else:
                        if not rep.exists(key):
                            raise StorageError("copy missing")
                        meta = self._meta(rep, key)
                        if rep.size(key) != meta["size"]:
                            raise StorageError("size drift vs sidecar")
                except StorageError as exc:
                    problems.append(
                        f"{key}: not intact on replica {i} ({exc})"
                    )
        return problems

    def repair(self) -> list[str]:
        """Anti-entropy sweep: re-replicate every object from an intact
        copy; clears the degraded flag when nothing is left unrecoverable.
        """
        actions: list[str] = []
        for i, rep in enumerate(self.replicas):
            for action in rep.repair():
                actions.append(f"replica {i}: {action}")
        unrecoverable = 0
        for key, _ in self.list_objects():
            good: bytes | None = None
            bad: list[int] = []
            for i, rep in enumerate(self.replicas):
                try:
                    data = self._intact(rep, key)
                    if good is None:
                        good = data
                except StorageError:
                    bad.append(i)
            if good is None:
                for rep in self.replicas:
                    try:
                        good = rep.get(key)
                        break
                    except StorageError:
                        continue
            if good is None:
                actions.append(f"{key}: unrecoverable (no intact replica)")
                unrecoverable += 1
                continue
            if bad:
                self._repair_key(key, good, bad)
                actions.append(
                    f"{key}: re-replicated to replica(s) "
                    f"{', '.join(map(str, bad))}"
                )
                _counter("repair.replicas_restored", n=len(bad))
        if not unrecoverable:
            with self._lock:
                self._degraded = False
        return actions

    def __repr__(self) -> str:
        return f"ReplicatedBackend(replicas={len(self.replicas)})"


class RemoteBackend(ObjectStore):
    """S3-class remote hop around an inner object store.

    Each operation costs one simulated network round trip — configurable
    ``network_latency`` plus payload bytes over ``network_bandwidth``,
    the same knobs (and defaults) as ``io/transports.py`` — charged to
    the bound :class:`SimClock` under the ``"remote"`` tier label.
    Batched :meth:`put_many`/:meth:`get_many` pay latency *once* for the
    whole batch, which is exactly why the engine batches.

    Transient faults (a :class:`~repro.errors.TransientFaultError` from
    an armed fault injector or the inner store) are retried with
    exponential backoff; backoff waits are charged to the simulated
    clock, never slept. After ``retries`` failed attempts the error is
    surfaced as a plain :class:`~repro.errors.StorageError`.
    """

    kind = "remote"

    def __init__(
        self,
        inner: ObjectStore,
        *,
        network_bandwidth: float = DEFAULT_NETWORK_BANDWIDTH,
        network_latency: float = DEFAULT_NETWORK_LATENCY,
        retries: int = 3,
        backoff_seconds: float = 0.002,
        fault_injector=None,
        clock=None,
    ) -> None:
        if network_bandwidth <= 0:
            raise StorageError("network_bandwidth must be positive")
        if network_latency < 0 or backoff_seconds < 0:
            raise StorageError("latency/backoff must be non-negative")
        if retries < 0:
            raise StorageError("retries must be >= 0")
        self.inner = inner
        self.network_bandwidth = float(network_bandwidth)
        self.network_latency = float(network_latency)
        self.retries = int(retries)
        self.backoff_seconds = float(backoff_seconds)
        #: Duck-typed hook with a ``check(op, key)`` method that raises
        #: :class:`TransientFaultError` when a fault is armed.
        self.fault_injector = fault_injector
        self._clock = clock
        self._local = threading.local()

    # -- durability contract ---------------------------------------------
    @property
    def replication_factor(self) -> int:
        return self.inner.replication_factor

    @property
    def degraded(self) -> bool:
        return self.inner.degraded

    def bind_clock(self, clock) -> None:
        self._clock = clock
        self.inner.bind_clock(clock)

    def repair(self) -> list[str]:
        return self.inner.repair()

    def verify(self, deep: bool = True) -> list[str]:
        return self.inner.verify(deep=deep)

    def uncharged(self):
        @contextlib.contextmanager
        def _suspend():
            prev = getattr(self._local, "uncharged", False)
            self._local.uncharged = True
            try:
                with self.inner.uncharged():
                    yield
            finally:
                self._local.uncharged = prev

        return _suspend()

    # -- network accounting ----------------------------------------------
    def _charge(self, op: str, nbytes: int, label: str) -> None:
        if self._clock is None or getattr(self._local, "uncharged", False):
            return
        seconds = self.network_latency + nbytes / self.network_bandwidth
        self._clock.charge("remote", op, nbytes, seconds, label)

    def _call(self, op: str, key: str, fn):
        delay = self.backoff_seconds
        last: TransientFaultError | None = None
        for attempt in range(self.retries + 1):
            try:
                if self.fault_injector is not None:
                    self.fault_injector.check(op, key)
                return fn()
            except TransientFaultError as exc:
                last = exc
                if attempt >= self.retries:
                    break
                _counter("storage.remote.retries", op=op)
                if self._clock is not None and not getattr(
                    self._local, "uncharged", False
                ):
                    self._clock.charge(
                        "remote", "read", 0, delay, f"backoff:{key}"
                    )
                delay *= 2
        raise StorageError(
            f"remote {op} of {key!r} failed after {self.retries} "
            f"retries: {last}"
        ) from last

    # -- single-object ops ----------------------------------------------
    def put(self, key: str, data: bytes) -> int:
        data = bytes(data)
        n = self._call("put", key, lambda: self.inner.put(key, data))
        self._charge("write", len(data), key)
        return n

    def get(self, key: str) -> bytes:
        data = self._call("get", key, lambda: self.inner.get(key))
        self._charge("read", len(data), key)
        return data

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        data = self._call(
            "get_range", key, lambda: self.inner.get_range(key, offset, length)
        )
        self._charge("read", len(data), key)
        return data

    def delete(self, key: str) -> None:
        self._call("delete", key, lambda: self.inner.delete(key))
        self._charge("write", 0, key)

    def exists(self, key: str) -> bool:
        found = self._call("exists", key, lambda: self.inner.exists(key))
        self._charge("read", 0, key)
        return found

    def size(self, key: str) -> int:
        n = self._call("size", key, lambda: self.inner.size(key))
        self._charge("read", 0, key)
        return n

    def list_objects(self) -> list[tuple[str, int]]:
        listing = self._call("list", "*", self.inner.list_objects)
        self._charge("read", 0, "list")
        return listing

    # -- batched ops: one round trip for the whole batch -----------------
    def put_many(self, items: dict[str, bytes]) -> int:
        total = self._call(
            "put_many", "*", lambda: self.inner.put_many(items)
        )
        self._charge("write", total, f"put_many:{len(items)}")
        return total

    def get_many(self, requests: list[RangeRequest]) -> list[bytes]:
        blobs = self._call(
            "get_many", "*", lambda: self.inner.get_many(requests)
        )
        self._charge("read", sum(len(b) for b in blobs), f"get_many:{len(requests)}")
        return blobs

    def __repr__(self) -> str:
        return (
            f"RemoteBackend(inner={self.inner!r}, "
            f"latency={self.network_latency}, "
            f"bandwidth={self.network_bandwidth:.3g})"
        )


#: Backend kinds accepted by :func:`make_backend` (and the XML config /
#: CLI ``--backend`` option / ``REPRO_BACKEND`` test matrix).
BACKEND_KINDS = ("filesystem", "memory", "sharded", "remote", "replicated")


def make_backend(
    kind: str,
    root: str | Path | None = None,
    *,
    shards: int = 4,
    chunk_size: int = 256 * 1024,
    in_memory_shards: bool = False,
    replicas: int | None = None,
    network_bandwidth: float | None = None,
    network_latency: float | None = None,
    fault_injector=None,
) -> ObjectStore:
    """Factory used by the XML configuration layer, CLI, and tests.

    ``filesystem``, ``sharded``, ``remote`` and ``replicated`` need a
    ``root`` directory unless ``in_memory_shards``; ``memory`` ignores
    it. ``replicas`` mirrors the leaves N ways: for ``sharded`` each
    shard becomes a :class:`ReplicatedBackend` over
    ``root/shard<i>/replica<j>`` (default 1 — no mirroring); for
    ``replicated`` it is the replica count over ``root/replica<j>``
    (default 2). ``network_*`` and ``fault_injector`` apply to the
    ``remote`` kind.
    """
    kind = kind.lower()

    def _leaf(path: Path | None) -> ObjectStore:
        if in_memory_shards or path is None:
            return MemoryBackend()
        return FilesystemBackend(path)

    net: dict[str, float] = {}
    if network_bandwidth is not None:
        net["network_bandwidth"] = network_bandwidth
    if network_latency is not None:
        net["network_latency"] = network_latency
    if kind == "filesystem":
        if root is None:
            raise StorageError("filesystem backend needs a root directory")
        return FilesystemBackend(root)
    if kind == "memory":
        return MemoryBackend()
    if kind == "remote":
        if root is None and not in_memory_shards:
            raise StorageError("remote backend needs a root directory")
        return RemoteBackend(
            _leaf(Path(root) if root is not None else None),
            fault_injector=fault_injector,
            **net,
        )
    if kind == "replicated":
        nrep = 2 if replicas is None else int(replicas)
        if nrep < 1:
            raise StorageError("replicated backend needs replicas >= 1")
        if root is None and not in_memory_shards:
            raise StorageError("replicated backend needs a root directory")
        return ReplicatedBackend(
            [
                _leaf(Path(root) / f"replica{j}" if root is not None else None)
                for j in range(nrep)
            ]
        )
    if kind == "sharded":
        if shards < 1:
            raise StorageError("sharded backend needs shards >= 1")
        nrep = 1 if replicas is None else int(replicas)
        if nrep < 1:
            raise StorageError("sharded backend needs replicas >= 1")
        if root is None and not in_memory_shards:
            raise StorageError("sharded backend needs a root directory")
        subs: list[ObjectStore] = []
        for i in range(shards):
            shard_root = Path(root) / f"shard{i}" if root is not None else None
            if nrep > 1:
                subs.append(
                    ReplicatedBackend(
                        [
                            _leaf(
                                shard_root / f"replica{j}"
                                if shard_root is not None
                                else None
                            )
                            for j in range(nrep)
                        ]
                    )
                )
            else:
                subs.append(_leaf(shard_root))
        return ShardedBackend(subs, chunk_size=chunk_size)
    raise StorageError(
        f"unknown backend {kind!r}; expected one of {BACKEND_KINDS}"
    )
