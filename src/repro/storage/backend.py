"""Pluggable object-store backends for storage tiers.

A :class:`StorageTier` used to be welded to a local directory; the tier
now delegates every byte movement to an :class:`ObjectStore` backend and
keeps only the device cost model and capacity accounting for itself.
Three backends ship here:

* :class:`FilesystemBackend` — one file per object under a root
  directory (the seed behaviour; a tier directory persists across
  handles like a real mount);
* :class:`MemoryBackend` — tmpfs-class in-process store (bytes held in
  a dict), for DRAM-like tiers and fast tests;
* :class:`ShardedBackend` — stripes each object into fixed-size chunks
  across a ring of sub-stores with batched multi-chunk get/put, the
  shape of an object store (OASIS-style) or a striped PFS.

Backends move *real* bytes — the end-to-end pipeline stays honest — and
never touch the simulated clock; transfer-time charging stays with the
tier that owns the device model.
"""

from __future__ import annotations

import json
import re
import threading
import zlib
from abc import ABC, abstractmethod
from pathlib import Path

from repro.errors import StorageError

__all__ = [
    "ObjectStore",
    "FilesystemBackend",
    "MemoryBackend",
    "ShardedBackend",
    "make_backend",
    "BACKEND_KINDS",
]

#: Range-read request: ``(key, offset, length)``.
RangeRequest = tuple[str, int, int]


class ObjectStore(ABC):
    """Keyed byte-object storage with ranged and batched reads.

    Keys are tier-relative object names (``"run.tmpfs.bp"``); values are
    opaque byte strings. Implementations must be thread-safe for
    concurrent reads (the retrieval engine's worker threads call
    :meth:`get_range` in parallel) and must raise
    :class:`~repro.errors.StorageError` for missing keys and
    out-of-bounds ranges — never backend-native errors.
    """

    #: Short backend identifier used in metrics labels and configs.
    kind = ""

    # -- single-object ops ----------------------------------------------
    @abstractmethod
    def put(self, key: str, data: bytes) -> int:
        """Store ``data`` under ``key`` (overwrite allowed); returns size."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Fetch the complete object."""

    @abstractmethod
    def get_range(self, key: str, offset: int, length: int) -> bytes:
        """Fetch ``length`` bytes at ``offset`` (bounds-checked)."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove an object (missing key is an error)."""

    @abstractmethod
    def exists(self, key: str) -> bool: ...

    @abstractmethod
    def size(self, key: str) -> int: ...

    @abstractmethod
    def list_objects(self) -> list[tuple[str, int]]:
        """All ``(key, size)`` pairs, sorted by key (inventory scan)."""

    # -- batched ops -----------------------------------------------------
    def put_many(self, items: dict[str, bytes]) -> int:
        """Store several objects; returns total bytes stored."""
        return sum(self.put(key, data) for key, data in sorted(items.items()))

    def get_many(self, requests: list[RangeRequest]) -> list[bytes]:
        """Fetch several ranges; result order matches ``requests``."""
        return [self.get_range(k, off, length) for k, off, length in requests]

    # -- integrity -------------------------------------------------------
    def verify(self) -> list[str]:
        """Structural self-check; returns human-readable problem strings.

        The base implementation re-reads every listed object and checks
        the stored size; sharded stores additionally check chunk
        inventory and cross-chunk checksums.
        """
        problems: list[str] = []
        for key, size in self.list_objects():
            try:
                actual = len(self.get(key))
            except StorageError as exc:
                problems.append(f"{key}: unreadable ({exc})")
                continue
            if actual != size:
                problems.append(
                    f"{key}: stored {actual} bytes, inventory says {size}"
                )
        return problems

    def _check_range(self, key: str, offset: int, length: int, size: int) -> None:
        if offset < 0 or length < 0 or offset + length > size:
            raise StorageError(
                f"{self.kind} backend: range [{offset}, {offset + length}) "
                f"outside object {key!r} of {size} bytes"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FilesystemBackend(ObjectStore):
    """One file per object under a root directory (created if missing).

    Stateless over the directory: a second handle on the same root sees
    whatever is already stored there, like a real mount.
    """

    kind = "filesystem"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        p = (self.root / key).resolve()
        root = self.root.resolve()
        if root not in p.parents and p != root:
            raise StorageError(f"object key {key!r} escapes backend root")
        return p

    def put(self, key: str, data: bytes) -> int:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
        return len(data)

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except OSError as exc:
            raise StorageError(f"no object {key!r}: {exc}") from exc

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        path = self._path(key)
        try:
            size = path.stat().st_size
        except OSError as exc:
            raise StorageError(f"no object {key!r}: {exc}") from exc
        self._check_range(key, offset, length, size)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                return fh.read(length)
        except OSError as exc:
            raise StorageError(f"cannot read {key!r}: {exc}") from exc

    def delete(self, key: str) -> None:
        path = self._path(key)
        if not path.is_file():
            raise StorageError(f"no object {key!r}")
        path.unlink()

    def exists(self, key: str) -> bool:
        try:
            return self._path(key).is_file()
        except StorageError:
            return False

    def size(self, key: str) -> int:
        path = self._path(key)
        if not path.is_file():
            raise StorageError(f"no object {key!r}")
        return path.stat().st_size

    def list_objects(self) -> list[tuple[str, int]]:
        return sorted(
            (str(p.relative_to(self.root)), p.stat().st_size)
            for p in self.root.rglob("*")
            if p.is_file()
        )

    def __repr__(self) -> str:
        return f"FilesystemBackend(root={str(self.root)!r})"


class MemoryBackend(ObjectStore):
    """tmpfs-class in-process store; objects live in a dict.

    Contents die with the backend object (like tmpfs dies with the
    node), which is exactly the semantics a DRAM-tier model wants.
    """

    kind = "memory"

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put(self, key: str, data: bytes) -> int:
        data = bytes(data)
        with self._lock:
            self._objects[key] = data
        return len(data)

    def _get(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(f"no object {key!r}") from None

    def get(self, key: str) -> bytes:
        with self._lock:
            return self._get(key)

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        with self._lock:
            data = self._get(key)
        self._check_range(key, offset, length, len(data))
        return data[offset:offset + length]

    def delete(self, key: str) -> None:
        with self._lock:
            if key not in self._objects:
                raise StorageError(f"no object {key!r}")
            del self._objects[key]

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def size(self, key: str) -> int:
        with self._lock:
            return len(self._get(key))

    def list_objects(self) -> list[tuple[str, int]]:
        with self._lock:
            return sorted((k, len(v)) for k, v in self._objects.items())


#: Chunk-name suffixes: ``<key>#meta`` and ``<key>#<index:06d>``.
_CHUNK_RE = re.compile(r"^(?P<key>.+)#(?P<idx>\d{6})$")
_META_SUFFIX = "#meta"


class ShardedBackend(ObjectStore):
    """Stripes objects into fixed-size chunks across sub-stores.

    Chunk ``i`` of an object lands on sub-store ``i % len(substores)``
    under the key ``"<key>#<i:06d>"``; a small JSON manifest
    (``"<key>#meta"`` on sub-store 0) records the object size, chunk
    size, chunk count, and a CRC-32 over the whole object so
    :meth:`verify` can detect missing chunks, orphaned chunks, and
    corruption across chunk boundaries. Ranged reads touch only the
    chunks overlapping the range and are issued as one batched
    multi-chunk get per sub-store.
    """

    kind = "sharded"

    def __init__(
        self, substores: list[ObjectStore], *, chunk_size: int = 256 * 1024
    ) -> None:
        if not substores:
            raise StorageError("sharded backend needs at least one sub-store")
        if chunk_size <= 0:
            raise StorageError("chunk_size must be positive")
        self.substores = list(substores)
        self.chunk_size = int(chunk_size)

    # -- layout helpers --------------------------------------------------
    def _store_for(self, index: int) -> ObjectStore:
        return self.substores[index % len(self.substores)]

    @staticmethod
    def _chunk_key(key: str, index: int) -> str:
        return f"{key}#{index:06d}"

    def _manifest(self, key: str) -> dict:
        try:
            blob = self.substores[0].get(key + _META_SUFFIX)
        except StorageError:
            raise StorageError(f"no object {key!r}") from None
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise StorageError(f"corrupt manifest for {key!r}: {exc}") from exc

    # -- single-object ops ----------------------------------------------
    def put(self, key: str, data: bytes) -> int:
        data = bytes(data)
        cs = self.chunk_size
        nchunks = max(1, -(-len(data) // cs))
        old_chunks = 0
        if self.substores[0].exists(key + _META_SUFFIX):
            old_chunks = int(self._manifest(key).get("chunks", 0))
        per_store: dict[int, dict[str, bytes]] = {}
        for i in range(nchunks):
            per_store.setdefault(i % len(self.substores), {})[
                self._chunk_key(key, i)
            ] = data[i * cs:(i + 1) * cs]
        for store_idx, items in sorted(per_store.items()):
            self.substores[store_idx].put_many(items)
        manifest = {
            "size": len(data),
            "chunk_size": cs,
            "chunks": nchunks,
            "crc32": zlib.crc32(data) & 0xFFFFFFFF,
        }
        self.substores[0].put(
            key + _META_SUFFIX, json.dumps(manifest, sort_keys=True).encode()
        )
        # Shrinking overwrite: drop chunks beyond the new count so the
        # inventory never reports stale orphans.
        for i in range(nchunks, old_chunks):
            store = self._store_for(i)
            if store.exists(self._chunk_key(key, i)):
                store.delete(self._chunk_key(key, i))
        return len(data)

    def get(self, key: str) -> bytes:
        manifest = self._manifest(key)
        return self.get_range(key, 0, int(manifest["size"]))

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        manifest = self._manifest(key)
        size = int(manifest["size"])
        cs = int(manifest["chunk_size"])
        self._check_range(key, offset, length, size)
        if length == 0:
            return b""
        first = offset // cs
        last = (offset + length - 1) // cs
        # One batched multi-chunk get per sub-store, results re-ordered.
        per_store: dict[int, list[tuple[int, str]]] = {}
        for i in range(first, last + 1):
            per_store.setdefault(i % len(self.substores), []).append(
                (i, self._chunk_key(key, i))
            )
        chunks: dict[int, bytes] = {}
        for store_idx, wanted in sorted(per_store.items()):
            store = self.substores[store_idx]
            try:
                blobs = store.get_many(
                    [(ck, 0, store.size(ck)) for _, ck in wanted]
                )
            except StorageError as exc:
                raise StorageError(
                    f"{key!r}: missing chunk on sub-store {store_idx} ({exc})"
                ) from exc
            for (i, _), blob in zip(wanted, blobs):
                chunks[i] = blob
        blob = b"".join(chunks[i] for i in range(first, last + 1))
        lo = offset - first * cs
        return blob[lo:lo + length]

    def delete(self, key: str) -> None:
        manifest = self._manifest(key)
        for i in range(int(manifest["chunks"])):
            store = self._store_for(i)
            if store.exists(self._chunk_key(key, i)):
                store.delete(self._chunk_key(key, i))
        self.substores[0].delete(key + _META_SUFFIX)

    def exists(self, key: str) -> bool:
        return self.substores[0].exists(key + _META_SUFFIX)

    def size(self, key: str) -> int:
        return int(self._manifest(key)["size"])

    def list_objects(self) -> list[tuple[str, int]]:
        out = []
        for name, _ in self.substores[0].list_objects():
            if name.endswith(_META_SUFFIX):
                key = name[: -len(_META_SUFFIX)]
                out.append((key, self.size(key)))
        return sorted(out)

    def get_many(self, requests: list[RangeRequest]) -> list[bytes]:
        # Manifests are read once per distinct key; chunk fetches then go
        # through the per-request batched path.
        return [self.get_range(k, off, length) for k, off, length in requests]

    # -- integrity -------------------------------------------------------
    def verify(self) -> list[str]:
        """Chunk-inventory + cross-chunk CRC check.

        Reports, per object: missing chunks (manifest says N, chunk i is
        gone), size drift, and CRC-32 mismatches over the reassembled
        byte stream (detects corruption *across* chunk boundaries that a
        per-chunk check would miss). Chunks with no manifest — or with
        an index beyond the manifest's count — are reported as orphans.
        """
        problems: list[str] = []
        manifests: dict[str, dict] = {}
        for name, _ in self.substores[0].list_objects():
            if name.endswith(_META_SUFFIX):
                key = name[: -len(_META_SUFFIX)]
                try:
                    manifests[key] = self._manifest(key)
                except StorageError as exc:
                    problems.append(str(exc))
        for key, manifest in sorted(manifests.items()):
            nchunks = int(manifest["chunks"])
            missing = [
                i
                for i in range(nchunks)
                if not self._store_for(i).exists(self._chunk_key(key, i))
            ]
            if missing:
                problems.append(
                    f"{key}: missing chunk(s) {missing} of {nchunks}"
                )
                continue
            data = b"".join(
                self._store_for(i).get(self._chunk_key(key, i))
                for i in range(nchunks)
            )
            if len(data) != int(manifest["size"]):
                problems.append(
                    f"{key}: reassembled {len(data)} bytes, manifest says "
                    f"{manifest['size']}"
                )
                continue
            crc = zlib.crc32(data) & 0xFFFFFFFF
            if crc != int(manifest["crc32"]):
                problems.append(
                    f"{key}: crc mismatch over chunk boundaries "
                    f"({crc:08x} != {int(manifest['crc32']):08x})"
                )
        for store_idx, store in enumerate(self.substores):
            for name, _ in store.list_objects():
                m = _CHUNK_RE.match(name)
                if m is None:
                    continue
                key, idx = m.group("key"), int(m.group("idx"))
                manifest = manifests.get(key)
                if manifest is None:
                    problems.append(
                        f"{name}: orphaned chunk (no manifest for {key!r}) "
                        f"on sub-store {store_idx}"
                    )
                elif idx >= int(manifest["chunks"]):
                    problems.append(
                        f"{name}: orphaned chunk (manifest records only "
                        f"{manifest['chunks']} chunks)"
                    )
        return problems

    def __repr__(self) -> str:
        return (
            f"ShardedBackend(substores={len(self.substores)}, "
            f"chunk_size={self.chunk_size})"
        )


#: Backend kinds accepted by :func:`make_backend` (and the XML config /
#: CLI ``--backend`` option / ``REPRO_BACKEND`` test matrix).
BACKEND_KINDS = ("filesystem", "memory", "sharded")


def make_backend(
    kind: str,
    root: str | Path | None = None,
    *,
    shards: int = 4,
    chunk_size: int = 256 * 1024,
    in_memory_shards: bool = False,
) -> ObjectStore:
    """Factory used by the XML configuration layer, CLI, and tests.

    ``filesystem`` and ``sharded`` need a ``root`` directory (sharded
    sub-stores live under ``root/shard<i>`` unless ``in_memory_shards``);
    ``memory`` ignores it.
    """
    kind = kind.lower()
    if kind == "filesystem":
        if root is None:
            raise StorageError("filesystem backend needs a root directory")
        return FilesystemBackend(root)
    if kind == "memory":
        return MemoryBackend()
    if kind == "sharded":
        if shards < 1:
            raise StorageError("sharded backend needs shards >= 1")
        if in_memory_shards:
            subs: list[ObjectStore] = [MemoryBackend() for _ in range(shards)]
        else:
            if root is None:
                raise StorageError("sharded backend needs a root directory")
            subs = [
                FilesystemBackend(Path(root) / f"shard{i}")
                for i in range(shards)
            ]
        return ShardedBackend(subs, chunk_size=chunk_size)
    raise StorageError(
        f"unknown backend {kind!r}; expected one of {BACKEND_KINDS}"
    )
