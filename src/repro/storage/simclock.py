"""Simulated I/O time accounting.

Real bytes flow through real local files, but the *reported* transfer
times come from the tier device models, because the figures being
reproduced were measured against tmpfs vs. Lustre on Titan. The clock
records one event per transfer so pipelines can report per-phase,
per-tier breakdowns (paper Figs. 6b, 9–11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOEvent", "SimClock"]


@dataclass(frozen=True)
class IOEvent:
    """One simulated transfer."""

    tier: str
    op: str  # "read" | "write"
    nbytes: int
    seconds: float
    label: str = ""


@dataclass
class SimClock:
    """Accumulates simulated I/O time and an event log."""

    elapsed: float = 0.0
    events: list[IOEvent] = field(default_factory=list)

    def charge(
        self, tier: str, op: str, nbytes: int, seconds: float, label: str = ""
    ) -> IOEvent:
        """Record one transfer and advance the clock."""
        event = IOEvent(tier=tier, op=op, nbytes=nbytes, seconds=seconds, label=label)
        self.events.append(event)
        self.elapsed += seconds
        return event

    def reset(self) -> None:
        self.elapsed = 0.0
        self.events.clear()

    # -- summaries -------------------------------------------------------
    def total(self, op: str | None = None, tier: str | None = None) -> float:
        """Total simulated seconds, optionally filtered by op and/or tier."""
        return sum(
            e.seconds
            for e in self.events
            if (op is None or e.op == op) and (tier is None or e.tier == tier)
        )

    def bytes_moved(self, op: str | None = None, tier: str | None = None) -> int:
        return sum(
            e.nbytes
            for e in self.events
            if (op is None or e.op == op) and (tier is None or e.tier == tier)
        )

    def by_tier(self, op: str | None = None) -> dict[str, float]:
        """Simulated seconds per tier."""
        out: dict[str, float] = {}
        for e in self.events:
            if op is None or e.op == op:
                out[e.tier] = out.get(e.tier, 0.0) + e.seconds
        return out
