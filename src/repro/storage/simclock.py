"""Simulated I/O time accounting.

Real bytes flow through real local files, but the *reported* transfer
times come from the tier device models, because the figures being
reproduced were measured against tmpfs vs. Lustre on Titan. The clock
records one event per transfer so pipelines can report per-phase,
per-tier breakdowns (paper Figs. 6b, 9–11).

Concurrent retrieval (``repro.io.engine``) charges *overlapped* groups
through :meth:`SimClock.charge_concurrent`: every transfer is still
recorded as its own event, but :attr:`SimClock.elapsed` advances by the
**max per-tier total** of the group instead of the sum — concurrent
streams against different tiers proceed in parallel, so only the slowest
tier's work sits on the critical path. For overlapped groups
``sum(e.seconds for e in events)`` therefore exceeds the elapsed
advance: the event log measures device busy time, ``elapsed`` measures
the (simulated) wall.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["IOEvent", "SimClock"]

#: Listener signature: ``(events, advance_seconds, elapsed_after)``.
ChargeListener = Callable[[tuple["IOEvent", ...], float, float], None]


@dataclass(frozen=True)
class IOEvent:
    """One simulated transfer."""

    tier: str
    op: str  # "read" | "write"
    nbytes: int
    seconds: float
    label: str = ""


@dataclass
class SimClock:
    """Accumulates simulated I/O time and an event log.

    Thread-safe: transports and the retrieval engine may charge from
    worker threads. Elapsed totals are order-independent (sums and
    per-group maxima), so the accounting is deterministic regardless of
    thread scheduling.
    """

    elapsed: float = 0.0
    events: list[IOEvent] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _listeners: list[ChargeListener] = field(
        default_factory=list, repr=False, compare=False
    )

    # -- observation ----------------------------------------------------
    def add_listener(self, listener: ChargeListener) -> None:
        """Subscribe to charges (``repro.obs`` dual-clock tracing hook).

        Listeners are called after each charge, on the charging thread,
        outside the clock lock, as ``listener(events, advance,
        elapsed_after)`` — one overlapped group per call.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: ChargeListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(
        self, events: tuple[IOEvent, ...], advance: float, after: float
    ) -> None:
        for listener in tuple(self._listeners):
            listener(events, advance, after)

    def charge(
        self, tier: str, op: str, nbytes: int, seconds: float, label: str = ""
    ) -> IOEvent:
        """Record one transfer and advance the clock."""
        event = IOEvent(tier=tier, op=op, nbytes=nbytes, seconds=seconds, label=label)
        with self._lock:
            self.events.append(event)
            self.elapsed += seconds
            after = self.elapsed
        if self._listeners:
            self._notify((event,), seconds, after)
        return event

    def charge_concurrent(
        self,
        entries: Iterable[Sequence],
        label: str = "",
    ) -> float:
        """Charge a group of overlapped transfers; returns the advance.

        ``entries`` is an iterable of ``(tier, op, nbytes, seconds)``
        tuples describing transfers issued concurrently. One event is
        recorded per entry, but ``elapsed`` advances by the *maximum*
        per-tier total rather than the grand sum — transfers against
        different tiers overlap (the engine's max-per-tier model).
        """
        per_tier: dict[str, float] = {}
        events = []
        for tier, op, nbytes, seconds in entries:
            events.append(
                IOEvent(tier=tier, op=op, nbytes=nbytes, seconds=seconds, label=label)
            )
            per_tier[tier] = per_tier.get(tier, 0.0) + seconds
        advance = max(per_tier.values(), default=0.0)
        with self._lock:
            self.events.extend(events)
            self.elapsed += advance
            after = self.elapsed
        if self._listeners and events:
            self._notify(tuple(events), advance, after)
        return advance

    def reset(self) -> None:
        with self._lock:
            self.elapsed = 0.0
            self.events.clear()

    # -- summaries -------------------------------------------------------
    def total(self, op: str | None = None, tier: str | None = None) -> float:
        """Total device busy seconds, optionally filtered by op and/or tier.

        For serial charges this equals the elapsed advance; overlapped
        groups (:meth:`charge_concurrent`) can make it exceed ``elapsed``.
        """
        return sum(
            e.seconds
            for e in self.events
            if (op is None or e.op == op) and (tier is None or e.tier == tier)
        )

    def bytes_moved(self, op: str | None = None, tier: str | None = None) -> int:
        return sum(
            e.nbytes
            for e in self.events
            if (op is None or e.op == op) and (tier is None or e.tier == tier)
        )

    def by_tier(self, op: str | None = None) -> dict[str, float]:
        """Device busy seconds per tier."""
        out: dict[str, float] = {}
        for e in self.events:
            if op is None or e.op == op:
                out[e.tier] = out.get(e.tier, 0.0) + e.seconds
        return out
