"""Deterministic fault injection for the durability harness.

Two families of damage, matching how real object stores fail:

* **Transient** faults — a :class:`FaultInjector` armed with
  ``fail(op, times=N)`` raises
  :class:`~repro.errors.TransientFaultError` from inside
  :class:`~repro.storage.backend.RemoteBackend`'s retry loop (network
  blips, throttles). These heal themselves through retry-with-backoff.
* **Durable** damage — :func:`inject_fault` applies one of
  :data:`FAULT_MODES` to a composed backend (wipe a replica, truncate a
  manifest, flip a byte in a chunk), and :func:`kill_replica` deletes
  every object a replica holds, simulating the loss of a sub-store
  mid-workload. These require failover reads and ``fsck --repair``.

The module is imported by tests, benchmarks, and the CI fault matrix
(``REPRO_FAULTS=drop_substore|truncate_manifest|corrupt_chunk``); the
production read/write paths never import it — ``RemoteBackend`` sees
injectors only duck-typed through its ``fault_injector`` hook.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator

from repro.errors import StorageError, TransientFaultError
from repro.storage.backend import (
    _CHUNK_RE,
    _META_SUFFIX,
    ObjectStore,
    RemoteBackend,
    ReplicatedBackend,
    ShardedBackend,
)

__all__ = [
    "FAULT_MODES",
    "FaultInjector",
    "inject_fault",
    "kill_replica",
]

#: Durable-damage modes understood by :func:`inject_fault` (the CI
#: ``REPRO_FAULTS`` matrix runs the storage/fsck tests once per mode).
FAULT_MODES = ("drop_substore", "truncate_manifest", "corrupt_chunk")


class FaultInjector:
    """Thread-safe armed-fault source for :class:`RemoteBackend`.

    Each rule fires ``times`` times, optionally scoped to an operation
    name and/or a key substring, then goes inert. ``injected`` counts
    every fault actually raised.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: list[dict] = []
        self.injected = 0

    def fail(
        self, op: str = "*", *, times: int = 1, key_substring: str = ""
    ) -> FaultInjector:
        """Arm ``times`` transient faults for ``op`` (``"*"`` = any)."""
        with self._lock:
            self._rules.append(
                {"op": op, "times": int(times), "key": key_substring}
            )
        return self

    def check(self, op: str, key: str) -> None:
        """Raise :class:`TransientFaultError` if an armed rule matches."""
        with self._lock:
            for rule in self._rules:
                if rule["times"] <= 0:
                    continue
                if rule["op"] not in ("*", op):
                    continue
                if rule["key"] and rule["key"] not in str(key):
                    continue
                rule["times"] -= 1
                self.injected += 1
                raise TransientFaultError(
                    f"injected transient fault: {op} {key!r}"
                )


def _replica_sets(backend: ObjectStore) -> Iterator[ReplicatedBackend]:
    """Every :class:`ReplicatedBackend` reachable inside ``backend``."""
    if isinstance(backend, ReplicatedBackend):
        yield backend
    elif isinstance(backend, ShardedBackend):
        for sub in backend.substores:
            yield from _replica_sets(sub)
    elif isinstance(backend, RemoteBackend):
        yield from _replica_sets(backend.inner)


def _first_sharded(backend: ObjectStore) -> ShardedBackend | None:
    if isinstance(backend, ShardedBackend):
        return backend
    if isinstance(backend, RemoteBackend):
        return _first_sharded(backend.inner)
    return None


def kill_replica(backend: ObjectStore, index: int = 0) -> int:
    """Delete every object replica ``index`` holds, in every replica set.

    Models the sudden loss of one mirror of each sub-store (node crash,
    volume gone). Returns the number of objects wiped; raises
    :class:`StorageError` when ``backend`` contains no replica set —
    there would be nothing redundant to degrade.
    """
    wiped = 0
    for rset in _replica_sets(backend):
        rep = rset.replicas[index % len(rset.replicas)]
        for name, _ in rep.list_objects():
            rep.delete(name)
            wiped += 1
    if not wiped:
        raise StorageError("no replicated sub-store found to degrade")
    return wiped


def inject_fault(backend: ObjectStore, mode: str) -> str:
    """Apply one durable-damage ``mode`` to a composed backend.

    * ``drop_substore`` — wipe replica 0 of every replica set (falls
      back to wiping sub-store 0 of a plain sharded backend, which is
      *unrecoverable* — fsck must say so);
    * ``truncate_manifest`` — truncate the first sharded manifest to
      half its bytes (corrupt JSON; repair rebuilds it from chunks);
    * ``corrupt_chunk`` — flip one byte of the first chunk's copy on one
      leaf store, leaving its replica sidecar stale so CRC checks trip.

    Returns a human-readable description of what was damaged.
    """
    if mode not in FAULT_MODES:
        raise StorageError(
            f"unknown fault mode {mode!r}; expected one of {FAULT_MODES}"
        )
    if mode == "drop_substore":
        try:
            wiped = kill_replica(backend, 0)
        except StorageError:
            sharded = _first_sharded(backend)
            if sharded is None or len(sharded.substores) < 2:
                raise StorageError(
                    "drop_substore needs a replicated or multi-shard backend"
                ) from None
            store = sharded.substores[1]
            names = [name for name, _ in store.list_objects()]
            for name in names:
                store.delete(name)
            return f"dropped sub-store 1 ({len(names)} objects, unreplicated)"
        return f"dropped replica 0 of every replica set ({wiped} objects)"
    sharded = _first_sharded(backend)
    if sharded is None:
        raise StorageError(f"{mode} needs a sharded backend")
    if mode == "truncate_manifest":
        s0 = sharded.substores[0]
        for name, _ in s0.list_objects():
            if name.endswith(_META_SUFFIX):
                blob = s0.get(name)
                s0.put(name, blob[: len(blob) // 2])
                return f"truncated manifest {name} to {len(blob) // 2} bytes"
        raise StorageError("no manifest found to truncate")
    # corrupt_chunk: damage one leaf copy without touching its sidecar.
    for substore in sharded.substores:
        leaf = (
            substore.replicas[0]
            if isinstance(substore, ReplicatedBackend)
            else substore
        )
        for name, _ in leaf.list_objects():
            if _CHUNK_RE.match(name):
                blob = bytearray(leaf.get(name))
                if not blob:
                    continue
                blob[len(blob) // 2] ^= 0xFF
                leaf.put(name, bytes(blob))
                return f"flipped one byte of chunk {name}"
    raise StorageError("no chunk found to corrupt")
