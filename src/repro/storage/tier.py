"""A single storage tier: device cost model + capacity accounting.

Byte movement is delegated to a pluggable
:class:`~repro.storage.backend.ObjectStore` backend (filesystem,
in-memory, sharded, remote, or replicated) — the tier itself owns only the
:class:`~repro.storage.device.DeviceModel`, the capacity bookkeeping,
and the simulated-clock charging. Real bytes still land in the backend
(so the end-to-end pipeline is honest), while transfer *times* are
charged to a :class:`~repro.storage.simclock.SimClock`.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CapacityError, StorageError
from repro.obs import trace
from repro.storage.backend import FilesystemBackend, ObjectStore
from repro.storage.device import DeviceModel, device_preset
from repro.storage.simclock import IOEvent, SimClock

__all__ = ["StorageTier"]


def _counter(name: str, n: int = 1, **labels) -> None:
    tracer = trace.get_tracer()
    if tracer is not None:
        tracer.metrics.counter(name, **labels).inc(n)


class StorageTier:
    """One level of the storage hierarchy.

    Parameters
    ----------
    name:
        Tier label, e.g. ``"ST2"`` or ``"tmpfs"``.
    device:
        A :class:`DeviceModel` or a preset name.
    capacity_bytes:
        Usable capacity. Placement bypasses a tier that cannot hold a
        product (paper §III-D: "If a storage tier doesn't have sufficient
        capacity, it will be bypassed and the next tier will be selected").
    root:
        Backing directory; shorthand for a :class:`FilesystemBackend`
        rooted there. Ignored when ``backend`` is given.
    clock:
        Shared simulated clock; a private one is created if omitted.
    backend:
        Explicit :class:`ObjectStore` holding the tier's bytes.
    """

    def __init__(
        self,
        name: str,
        device: DeviceModel | str,
        capacity_bytes: int,
        root: str | Path | None = None,
        clock: SimClock | None = None,
        *,
        backend: ObjectStore | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise StorageError(f"tier {name!r}: capacity must be positive")
        self.name = name
        self.device = device_preset(device) if isinstance(device, str) else device
        self.capacity_bytes = int(capacity_bytes)
        if backend is None:
            if root is None:
                raise StorageError(
                    f"tier {name!r}: need a root directory or a backend"
                )
            backend = FilesystemBackend(root)
        self.backend = backend
        self.root = Path(root) if root is not None else getattr(
            backend, "root", None
        )
        self.clock = clock if clock is not None else SimClock()
        self.backend.bind_clock(self.clock)
        self._used = 0
        self._files: dict[str, int] = {}
        # A tier's store persists across handles/processes (like a real
        # mount): adopt whatever the backend already holds.
        for key, size in self.backend.list_objects():
            self._files[key] = size
            self._used += size
        if self._used > self.capacity_bytes:
            raise StorageError(
                f"tier {name!r}: existing content ({self._used} B) exceeds "
                f"capacity {self.capacity_bytes}"
            )
        #: Cheap structural problems found while adopting existing
        #: content (size-only ``verify(deep=False)``); recorded, not
        #: raised — fsck decides what to do about them.
        self.adoption_problems: list[str] = (
            self.backend.verify(deep=False) if self._files else []
        )
        if self.adoption_problems:
            _counter(
                "storage.adoption.problems", len(self.adoption_problems),
                tier=self.name,
            )

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def replication_factor(self) -> int:
        """Independent copies the backend keeps of each byte (>= 1).

        Placement reads this as a durability dimension: a product asking
        for N replicas is "safe" on a tier whose backend already mirrors
        N ways, and costs a redundancy-risk penalty elsewhere.
        """
        return self.backend.replication_factor

    @property
    def degraded(self) -> bool:
        """True while the backend is routing around a failed replica."""
        return self.backend.degraded

    def resync(self) -> None:
        """Re-adopt the backend inventory (after an external repair).

        Repair can resurrect objects, rebuild manifests, or
        garbage-collect partial writes; the tier's capacity accounting
        and file table follow the store, not the other way around.
        """
        self._files = {}
        self._used = 0
        for key, size in self.backend.list_objects():
            self._files[key] = size
            self._used += size

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def has_capacity(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def exists(self, relpath: str) -> bool:
        return relpath in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def _path(self, relpath: str) -> Path:
        """Filesystem location of an object (filesystem backends only).

        Retained for tools that need to reach under the abstraction —
        corruption-injection in tests, external inspection. Non-file
        backends have no paths and raise.
        """
        if not isinstance(self.backend, FilesystemBackend):
            raise StorageError(
                f"tier {self.name!r}: backend "
                f"{self.backend.kind!r} has no filesystem paths"
            )
        try:
            return self.backend._path(relpath)
        except StorageError:
            raise StorageError(f"path {relpath!r} escapes tier root") from None

    # ------------------------------------------------------------------
    def write(self, relpath: str, data: bytes, label: str = "") -> IOEvent:
        """Store ``data`` under ``relpath``; returns the charged event."""
        tracer = trace.get_tracer()
        if tracer is None:
            return self._write(relpath, data, label)
        with tracer.span(
            "tier.write", "io",
            {"tier": self.name, "nbytes": len(data), "file": relpath,
             "backend": self.backend.kind},
        ):
            return self._write(relpath, data, label)

    def _write(self, relpath: str, data: bytes, label: str) -> IOEvent:
        nbytes = len(data)
        previous = self._files.get(relpath, 0)
        if nbytes - previous > self.free_bytes:
            raise CapacityError(
                f"tier {self.name!r}: {nbytes} bytes exceed free "
                f"{self.free_bytes} of {self.capacity_bytes}"
            )
        self.backend.put(relpath, data)
        self._used += nbytes - previous
        self._files[relpath] = nbytes
        _counter("storage.backend.put", backend=self.backend.kind, tier=self.name)
        _counter(
            "storage.backend.put_bytes", nbytes,
            backend=self.backend.kind, tier=self.name,
        )
        seconds = self.device.write_seconds(nbytes)
        return self.clock.charge(self.name, "write", nbytes, seconds, label)

    def read(self, relpath: str, label: str = "") -> bytes:
        """Fetch the bytes stored under ``relpath``."""
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        tracer = trace.get_tracer()
        if tracer is None:
            return self._read(relpath, label)
        with tracer.span(
            "tier.read", "io",
            {"tier": self.name, "file": relpath, "backend": self.backend.kind},
        ) as sp:
            data = self._read(relpath, label)
            sp.note(nbytes=len(data))
            return data

    def _read(self, relpath: str, label: str) -> bytes:
        data = self.backend.get(relpath)
        _counter("storage.backend.get", backend=self.backend.kind, tier=self.name)
        _counter(
            "storage.backend.get_bytes", len(data),
            backend=self.backend.kind, tier=self.name,
        )
        seconds = self.device.read_seconds(len(data))
        self.clock.charge(self.name, "read", len(data), seconds, label)
        return data

    def read_range(
        self, relpath: str, offset: int, length: int, label: str = ""
    ) -> bytes:
        """Fetch a byte range; only ``length`` bytes are charged.

        This is how the BP reader retrieves a single variable from a
        multi-variable subfile without paying for the whole file — the
        metadata-rich-format benefit the paper attributes to ADIOS.
        """
        tracer = trace.get_tracer()
        if tracer is None:
            return self._read_range(relpath, offset, length, label)
        with tracer.span(
            "tier.read_range", "io",
            {"tier": self.name, "nbytes": length, "file": relpath,
             "backend": self.backend.kind},
        ):
            return self._read_range(relpath, offset, length, label)

    def _read_range(
        self, relpath: str, offset: int, length: int, label: str
    ) -> bytes:
        data = self.peek_range(relpath, offset, length)
        seconds = self.device.read_seconds(length)
        self.clock.charge(self.name, "read", length, seconds, label)
        return data

    def peek_range(self, relpath: str, offset: int, length: int) -> bytes:
        """Fetch a byte range *without* charging the simulated clock.

        Thread-safe (no tier state is mutated). This is the retrieval
        engine's data path: worker threads move the real bytes through
        ``peek_range`` while the engine charges the clock once per
        overlapped batch, keeping the accounting deterministic under
        concurrency.
        """
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        size = self._files[relpath]
        if offset < 0 or length < 0 or offset + length > size:
            raise StorageError(
                f"tier {self.name!r}: range [{offset}, {offset + length}) "
                f"outside file of {size} bytes"
            )
        with self.backend.uncharged():
            data = self.backend.get_range(relpath, offset, length)
        _counter(
            "storage.backend.get_bytes", length,
            backend=self.backend.kind, tier=self.name,
        )
        return data

    def peek_many(self, requests: list[tuple[str, int, int]]) -> list[bytes]:
        """Batched uncharged ranged reads (one backend round-trip).

        Sharded backends turn this into batched multi-chunk gets; the
        default backend implementation degrades to a loop.
        """
        for relpath, offset, length in requests:
            if relpath not in self._files:
                raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
            size = self._files[relpath]
            if offset < 0 or length < 0 or offset + length > size:
                raise StorageError(
                    f"tier {self.name!r}: range [{offset}, {offset + length})"
                    f" outside file of {size} bytes"
                )
        with self.backend.uncharged():
            blobs = self.backend.get_many(requests)
        _counter(
            "storage.backend.get_bytes", sum(len(b) for b in blobs),
            backend=self.backend.kind, tier=self.name,
        )
        return blobs

    def delete(self, relpath: str) -> None:
        """Remove a file and release its capacity."""
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        self._used -= self._files.pop(relpath)
        if self.backend.exists(relpath):
            self.backend.delete(relpath)
        _counter(
            "storage.backend.delete", backend=self.backend.kind, tier=self.name
        )

    def file_size(self, relpath: str) -> int:
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        return self._files[relpath]

    def __repr__(self) -> str:
        return (
            f"StorageTier(name={self.name!r}, device={self.device.name!r}, "
            f"backend={self.backend.kind!r}, "
            f"used={self._used}/{self.capacity_bytes})"
        )
