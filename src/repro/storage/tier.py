"""A single storage tier: device model + capacity + backing directory.

Writes and reads move real bytes through real files under the tier's
mount directory (so the end-to-end pipeline is honest), while transfer
*times* are charged to a :class:`~repro.storage.simclock.SimClock`
according to the tier's :class:`~repro.storage.device.DeviceModel`.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CapacityError, StorageError
from repro.obs import trace
from repro.storage.device import DeviceModel, device_preset
from repro.storage.simclock import IOEvent, SimClock

__all__ = ["StorageTier"]


class StorageTier:
    """One level of the storage hierarchy.

    Parameters
    ----------
    name:
        Tier label, e.g. ``"ST2"`` or ``"tmpfs"``.
    device:
        A :class:`DeviceModel` or a preset name.
    capacity_bytes:
        Usable capacity. Placement bypasses a tier that cannot hold a
        product (paper §III-D: "If a storage tier doesn't have sufficient
        capacity, it will be bypassed and the next tier will be selected").
    root:
        Backing directory for the tier's files (created if missing).
    clock:
        Shared simulated clock; a private one is created if omitted.
    """

    def __init__(
        self,
        name: str,
        device: DeviceModel | str,
        capacity_bytes: int,
        root: str | Path,
        clock: SimClock | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise StorageError(f"tier {name!r}: capacity must be positive")
        self.name = name
        self.device = device_preset(device) if isinstance(device, str) else device
        self.capacity_bytes = int(capacity_bytes)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.clock = clock if clock is not None else SimClock()
        self._used = 0
        self._files: dict[str, int] = {}
        # A tier directory persists across handles/processes (like a real
        # mount): adopt whatever is already stored there.
        for path in sorted(self.root.rglob("*")):
            if path.is_file():
                size = path.stat().st_size
                self._files[str(path.relative_to(self.root))] = size
                self._used += size
        if self._used > self.capacity_bytes:
            raise StorageError(
                f"tier {name!r}: existing content ({self._used} B) exceeds "
                f"capacity {self.capacity_bytes}"
            )

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def has_capacity(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def exists(self, relpath: str) -> bool:
        return relpath in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def _path(self, relpath: str) -> Path:
        p = (self.root / relpath).resolve()
        if self.root.resolve() not in p.parents and p != self.root.resolve():
            raise StorageError(f"path {relpath!r} escapes tier root")
        return p

    # ------------------------------------------------------------------
    def write(self, relpath: str, data: bytes, label: str = "") -> IOEvent:
        """Store ``data`` under ``relpath``; returns the charged event."""
        tracer = trace.get_tracer()
        if tracer is None:
            return self._write(relpath, data, label)
        with tracer.span(
            "tier.write", "io",
            {"tier": self.name, "nbytes": len(data), "file": relpath},
        ):
            return self._write(relpath, data, label)

    def _write(self, relpath: str, data: bytes, label: str) -> IOEvent:
        nbytes = len(data)
        previous = self._files.get(relpath, 0)
        if nbytes - previous > self.free_bytes:
            raise CapacityError(
                f"tier {self.name!r}: {nbytes} bytes exceed free "
                f"{self.free_bytes} of {self.capacity_bytes}"
            )
        path = self._path(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
        self._used += nbytes - previous
        self._files[relpath] = nbytes
        seconds = self.device.write_seconds(nbytes)
        return self.clock.charge(self.name, "write", nbytes, seconds, label)

    def read(self, relpath: str, label: str = "") -> bytes:
        """Fetch the bytes stored under ``relpath``."""
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        tracer = trace.get_tracer()
        if tracer is None:
            return self._read(relpath, label)
        with tracer.span(
            "tier.read", "io", {"tier": self.name, "file": relpath}
        ) as sp:
            data = self._read(relpath, label)
            sp.note(nbytes=len(data))
            return data

    def _read(self, relpath: str, label: str) -> bytes:
        data = self._path(relpath).read_bytes()
        seconds = self.device.read_seconds(len(data))
        self.clock.charge(self.name, "read", len(data), seconds, label)
        return data

    def read_range(
        self, relpath: str, offset: int, length: int, label: str = ""
    ) -> bytes:
        """Fetch a byte range; only ``length`` bytes are charged.

        This is how the BP reader retrieves a single variable from a
        multi-variable subfile without paying for the whole file — the
        metadata-rich-format benefit the paper attributes to ADIOS.
        """
        tracer = trace.get_tracer()
        if tracer is None:
            return self._read_range(relpath, offset, length, label)
        with tracer.span(
            "tier.read_range", "io",
            {"tier": self.name, "nbytes": length, "file": relpath},
        ):
            return self._read_range(relpath, offset, length, label)

    def _read_range(
        self, relpath: str, offset: int, length: int, label: str
    ) -> bytes:
        data = self.peek_range(relpath, offset, length)
        seconds = self.device.read_seconds(length)
        self.clock.charge(self.name, "read", length, seconds, label)
        return data

    def peek_range(self, relpath: str, offset: int, length: int) -> bytes:
        """Fetch a byte range *without* charging the simulated clock.

        Thread-safe (no tier state is mutated). This is the retrieval
        engine's data path: worker threads move the real bytes through
        ``peek_range`` while the engine charges the clock once per
        overlapped batch, keeping the accounting deterministic under
        concurrency.
        """
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        size = self._files[relpath]
        if offset < 0 or length < 0 or offset + length > size:
            raise StorageError(
                f"tier {self.name!r}: range [{offset}, {offset + length}) "
                f"outside file of {size} bytes"
            )
        with open(self._path(relpath), "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    def delete(self, relpath: str) -> None:
        """Remove a file and release its capacity."""
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        self._used -= self._files.pop(relpath)
        path = self._path(relpath)
        if path.exists():
            path.unlink()

    def file_size(self, relpath: str) -> int:
        if relpath not in self._files:
            raise StorageError(f"tier {self.name!r}: no file {relpath!r}")
        return self._files[relpath]

    def __repr__(self) -> str:
        return (
            f"StorageTier(name={self.name!r}, device={self.device.name!r}, "
            f"used={self._used}/{self.capacity_bytes})"
        )
