"""Cost-based placement engine over the storage hierarchy.

The seed placed products with a fastest-first capacity walk (paper
§III-D): try the fastest tier, bypass when full. That walk is myopic —
it spends scarce fast-tier bytes on whatever arrives first, not on what
readers will actually fetch. This module replaces it with a planner:

* every product is a :class:`ProductSpec` — size plus a *read weight*
  (expected relative read frequency, seeded from the refinement level
  heuristic at write time and from live
  :class:`~repro.storage.policy.AccessTracker` statistics afterwards);
* the expected cost of serving a product from a tier is
  ``weight * device.read_seconds(nbytes)``, plus a one-off migration
  penalty (``read(src) + write(dst)`` seconds) when the product already
  lives somewhere else;
* the engine assigns products to tiers greedily by *benefit density* —
  how many expected seconds per byte a product saves by sitting on fast
  storage — under per-tier capacity budgets, and emits an explainable
  :class:`PlacementPlan` recording, per product, every tier considered,
  its cost, and why it was chosen or skipped.

Re-running the planner as access statistics shift (see
``TierManager.replan``) is the elastic re-tiering the paper defers to
future work ("we believe data migration and eviction will play an
integral part").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError
from repro.obs import trace
from repro.storage.hierarchy import StorageHierarchy

__all__ = [
    "ProductSpec",
    "PlacementDecision",
    "PlacementPlan",
    "PlacementEngine",
    "default_weight",
]


def default_weight(kind: str, level: int = 0) -> float:
    """Write-time read-weight heuristic for a refactored product.

    Progressive readers touch the base on *every* restore and coarser
    deltas far more often than the finest ones (arXiv:2308.11759's
    observation that retrieval favours low-accuracy prefixes), so the
    base gets the highest weight and delta weight grows with the level
    index (level L-1 is the coarsest refinement step).
    """
    if kind == "base":
        return 4.0
    if kind in ("delta", "mesh", "mapping"):
        return 1.0 + max(0, level)
    return 1.0


def _counter(name: str, n: int = 1, **labels) -> None:
    tracer = trace.get_tracer()
    if tracer is not None:
        tracer.metrics.counter(name, **labels).inc(n)


@dataclass(frozen=True)
class ProductSpec:
    """A placeable product: size, read weight, optional current home.

    ``replicas`` is the durability the product *wants* — how many
    independent copies of its bytes should exist. Tiers advertise what
    they provide via :attr:`StorageTier.replication_factor`; the planner
    charges a redundancy-risk penalty for placing a product on a tier
    that under-replicates it (see ``durability_weight``).
    """

    key: str
    nbytes: int
    weight: float = 1.0
    current_tier: str | None = None
    replicas: int = 1


@dataclass
class PlacementDecision:
    """Where one product goes, and why.

    ``considered`` holds ``(tier, expected_seconds, note)`` for every
    tier the planner looked at, in hierarchy order; ``reason`` is the
    one-line explanation for the chosen tier.
    """

    key: str
    nbytes: int
    weight: float
    tier: str
    est_seconds: float
    reason: str
    considered: list[tuple[str, float, str]] = field(default_factory=list)
    current_tier: str | None = None

    @property
    def is_move(self) -> bool:
        return self.current_tier is not None and self.current_tier != self.tier


@dataclass
class PlacementPlan:
    """Explainable outcome of one planning pass."""

    decisions: list[PlacementDecision]

    @property
    def est_read_seconds(self) -> float:
        """Expected weighted read time if the plan is applied."""
        return sum(d.est_seconds for d in self.decisions)

    def tier_of(self, key: str) -> str:
        for d in self.decisions:
            if d.key == key:
                return d.tier
        raise KeyError(key)

    def moves(self) -> list[tuple[str, str, str]]:
        """Migrations implied by the plan, as ``(key, from, to)``."""
        return [
            (d.key, d.current_tier, d.tier)
            for d in self.decisions
            if d.is_move
        ]

    def by_tier(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {}
        for d in self.decisions:
            out.setdefault(d.tier, []).append(d.key)
        return out

    def explain(self) -> str:
        """Human-readable plan dump (one block per product)."""
        lines = [
            f"placement plan: {len(self.decisions)} product(s), "
            f"expected weighted read time {self.est_read_seconds * 1e3:.3f} ms"
        ]
        for d in self.decisions:
            arrow = (
                f"{d.current_tier} -> {d.tier}" if d.is_move
                else d.tier
            )
            lines.append(
                f"  {d.key}: {d.nbytes} B, weight {d.weight:g} -> {arrow} "
                f"({d.reason})"
            )
            for tier, cost, note in d.considered:
                lines.append(f"    {tier}: {cost * 1e3:.3f} ms {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "est_read_seconds": self.est_read_seconds,
            "decisions": [
                {
                    "key": d.key,
                    "nbytes": d.nbytes,
                    "weight": d.weight,
                    "tier": d.tier,
                    "current_tier": d.current_tier,
                    "est_seconds": d.est_seconds,
                    "reason": d.reason,
                }
                for d in self.decisions
            ],
        }


class PlacementEngine:
    """Cost-based planner over a :class:`StorageHierarchy`.

    Stateless between calls: every ``plan*`` method reads the current
    tier capacities (or explicit budgets) and returns a fresh
    :class:`PlacementPlan` without touching storage — execution is the
    caller's job (``BPDataset.close`` for initial placement,
    ``TierManager`` for re-placement).
    """

    def __init__(self, hierarchy: StorageHierarchy) -> None:
        self.hierarchy = hierarchy

    # ------------------------------------------------------------------
    def _benefit_density(self, p: ProductSpec) -> float:
        """Expected seconds saved per byte by fast placement."""
        slow = self.hierarchy.slowest.device.read_seconds(p.nbytes)
        fast = self.hierarchy.fastest.device.read_seconds(p.nbytes)
        return p.weight * (slow - fast) / max(1, p.nbytes)

    def _migration_seconds(self, src_name: str, dst_name: str, nbytes: int) -> float:
        src = self.hierarchy.tier(src_name)
        dst = self.hierarchy.tier(dst_name)
        return src.device.read_seconds(nbytes) + dst.device.write_seconds(nbytes)

    def plan(
        self,
        products: list[ProductSpec],
        *,
        capacities: dict[str, int] | None = None,
        durability_weight: float = 0.0,
    ) -> PlacementPlan:
        """Assign every product to a tier under capacity budgets.

        ``capacities`` maps tier name to available bytes; by default each
        tier offers its current free space plus the sizes of any products
        already on it (they are being re-placed, so their bytes are up
        for grabs). Raises :class:`CapacityError` when a product fits on
        no tier at all.

        ``durability_weight`` trades redundancy against tier budget: a
        product asking for N replicas pays, on a tier whose backend keeps
        fewer copies, an extra ``durability_weight × shortfall`` times
        the slowest tier's read time for its bytes — the expected cost of
        re-reading the product from cold storage after a copy is lost.
        At 0 (default) durability plays no role; large values pin
        replica-hungry products onto replicated tiers even when they are
        slower.
        """
        remaining: dict[str, int] = (
            dict(capacities)
            if capacities is not None
            else {t.name: t.free_bytes for t in self.hierarchy.tiers}
        )
        if capacities is None:
            for p in products:
                if p.current_tier is not None and p.current_tier in remaining:
                    remaining[p.current_tier] += p.nbytes

        ordered = sorted(
            products, key=lambda p: (-self._benefit_density(p), p.key)
        )
        decisions: dict[str, PlacementDecision] = {}
        for p in ordered:
            considered: list[tuple[str, float, str]] = []
            best: tuple[float, int, str] | None = None
            for idx, tier in enumerate(self.hierarchy.tiers):
                serve = p.weight * tier.device.read_seconds(p.nbytes)
                note = ""
                cost = serve
                if p.current_tier is not None and tier.name != p.current_tier:
                    move = self._migration_seconds(
                        p.current_tier, tier.name, p.nbytes
                    )
                    cost += move
                    note = f"(+{move * 1e3:.3f} ms migration)"
                shortfall = max(0, p.replicas - tier.replication_factor)
                if shortfall and durability_weight > 0:
                    risk = (
                        durability_weight
                        * shortfall
                        * self.hierarchy.slowest.device.read_seconds(p.nbytes)
                    )
                    cost += risk
                    note += (
                        f" [under-replicated {tier.replication_factor}"
                        f"<{p.replicas}: +{risk * 1e3:.3f} ms risk]"
                    )
                if remaining.get(tier.name, 0) < p.nbytes:
                    considered.append(
                        (tier.name, cost, note + " [skipped: insufficient capacity]")
                    )
                    continue
                considered.append((tier.name, cost, note))
                if best is None or cost < best[0]:
                    best = (cost, idx, tier.name)
            if best is None:
                raise CapacityError(
                    f"product {p.key!r} ({p.nbytes} bytes) fits on no tier"
                )
            cost, _, tier_name = best
            remaining[tier_name] -= p.nbytes
            if p.current_tier == tier_name:
                reason = f"stays: cheapest at {cost * 1e3:.3f} ms expected"
            elif p.current_tier is not None:
                reason = (
                    f"move pays for itself: {cost * 1e3:.3f} ms expected "
                    f"including migration"
                )
            else:
                reason = f"cheapest expected read time {cost * 1e3:.3f} ms"
            decisions[p.key] = PlacementDecision(
                key=p.key,
                nbytes=p.nbytes,
                weight=p.weight,
                tier=tier_name,
                est_seconds=cost,
                reason=reason,
                considered=considered,
                current_tier=p.current_tier,
            )
        plan = PlacementPlan([decisions[p.key] for p in products])
        _counter("placement.plans")
        _counter("placement.planned_bytes", sum(p.nbytes for p in products))
        tracer = trace.get_tracer()
        if tracer is not None:
            with tracer.span(
                "placement.plan", "placement",
                {
                    "products": len(products),
                    "moves": len(plan.moves()),
                    "est_read_ms": plan.est_read_seconds * 1e3,
                },
            ):
                pass
        return plan

    # ------------------------------------------------------------------
    def plan_replacement(
        self,
        tracker,
        *,
        headroom: float = 1.0,
        min_weight: float = 0.0,
        replicas: int = 1,
        durability_weight: float = 0.0,
    ) -> PlacementPlan:
        """Re-place everything currently stored, weighted by live reads.

        Builds one :class:`ProductSpec` per stored object with
        ``weight = observed reads`` (``min_weight`` for never-read
        objects), gives each tier a budget of ``headroom`` × capacity,
        and plans. The migration penalty keeps cold data in place unless
        hot data genuinely needs its bytes — the plan is a no-op when
        access patterns already match placement.

        ``replicas``/``durability_weight`` make redundancy a cost
        dimension: with a non-zero weight the plan trades replica
        shortfall against tier budget, steering products that want N
        copies onto tiers whose backends actually mirror N ways (see
        :meth:`plan`).
        """
        products = []
        for tier in self.hierarchy.tiers:
            for relpath in tier.list_files():
                info = tracker.records.get(relpath)
                weight = float(info.reads) if info is not None else min_weight
                products.append(
                    ProductSpec(
                        key=relpath,
                        nbytes=tier.file_size(relpath),
                        weight=weight,
                        current_tier=tier.name,
                        replicas=replicas,
                    )
                )
        budgets = {
            t.name: int(headroom * t.capacity_bytes)
            for t in self.hierarchy.tiers
        }
        return self.plan(
            products, capacities=budgets, durability_weight=durability_weight
        )
