"""Simulated tiered storage substrate (see DESIGN.md substitutions).

Real bytes are stored in real files under per-tier directories; transfer
times are modeled from per-device latency/bandwidth so the multi-tier
behaviour the paper measured on Titan (tmpfs + Lustre) can be reproduced
on a laptop.
"""

from repro.storage.device import DEVICE_PRESETS, DeviceModel, device_preset
from repro.storage.hierarchy import StorageHierarchy, two_tier_titan
from repro.storage.policy import AccessTracker, TierManager
from repro.storage.simclock import IOEvent, SimClock
from repro.storage.tier import StorageTier

__all__ = [
    "DeviceModel",
    "DEVICE_PRESETS",
    "device_preset",
    "StorageTier",
    "StorageHierarchy",
    "two_tier_titan",
    "TierManager",
    "AccessTracker",
    "SimClock",
    "IOEvent",
]
