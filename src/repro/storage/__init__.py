"""Simulated tiered storage substrate (see DESIGN.md substitutions).

Real bytes are stored in pluggable object-store backends (filesystem,
in-memory, sharded, remote, replicated); transfer times are modeled from
per-device latency/bandwidth so the multi-tier behaviour the paper
measured on Titan (tmpfs + Lustre) can be reproduced on a laptop.
Placement is cost-based (:mod:`repro.storage.placement`) with
watermark-driven and elastic re-placement policies in
:mod:`repro.storage.policy`; durability (replication, write-ahead
journalling, fault injection, repair) lives in
:mod:`repro.storage.backend` and :mod:`repro.storage.faults`.
"""

from repro.storage.backend import (
    BACKEND_KINDS,
    FilesystemBackend,
    MemoryBackend,
    ObjectStore,
    RemoteBackend,
    ReplicatedBackend,
    ShardedBackend,
    make_backend,
)
from repro.storage.device import DEVICE_PRESETS, DeviceModel, device_preset
from repro.storage.faults import (
    FAULT_MODES,
    FaultInjector,
    inject_fault,
    kill_replica,
)
from repro.storage.hierarchy import StorageHierarchy, two_tier_titan
from repro.storage.placement import (
    PlacementDecision,
    PlacementEngine,
    PlacementPlan,
    ProductSpec,
    default_weight,
)
from repro.storage.policy import AccessTracker, TierManager
from repro.storage.simclock import IOEvent, SimClock
from repro.storage.tier import StorageTier

__all__ = [
    "DeviceModel",
    "DEVICE_PRESETS",
    "device_preset",
    "ObjectStore",
    "FilesystemBackend",
    "MemoryBackend",
    "ShardedBackend",
    "ReplicatedBackend",
    "RemoteBackend",
    "make_backend",
    "BACKEND_KINDS",
    "FAULT_MODES",
    "FaultInjector",
    "inject_fault",
    "kill_replica",
    "StorageTier",
    "StorageHierarchy",
    "two_tier_titan",
    "PlacementEngine",
    "PlacementPlan",
    "PlacementDecision",
    "ProductSpec",
    "default_weight",
    "TierManager",
    "AccessTracker",
    "SimClock",
    "IOEvent",
]
