"""Storage device performance models.

The paper evaluates on a two-tier hierarchy emulated with DRAM-backed
tmpfs and the Lustre parallel file system on Titan, and motivates deeper
hierarchies (HBM, NVRAM, SSD/burst buffer, PFS, campaign storage) on
Summit/Aurora-class machines. We cannot measure those machines, so each
device is modeled by a latency + bandwidth pair; transfer cost is

    t(bytes) = latency + bytes / bandwidth

The *absolute* values are representative per-process numbers from the
literature; the figures reproduced here depend only on the relative gaps
between tiers (the paper: "Canopus performs the best on a system when
the performance gap between tiers is pronounced").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError

__all__ = ["DeviceModel", "DEVICE_PRESETS", "device_preset"]

_KiB = 1024
_MiB = 1024 * _KiB
_GiB = 1024 * _MiB


@dataclass(frozen=True)
class DeviceModel:
    """Latency/bandwidth cost model of one storage technology.

    ``streams`` is the device's useful read concurrency: how many
    independent request streams scale aggregate bandwidth before the
    device saturates (Lustre stripes across OSTs, DRAM across channels;
    a single-spindle device stays at 1). The per-``read_seconds`` model
    is unchanged — concurrency only pays off through
    :meth:`concurrent_read_seconds`, which the retrieval engine uses for
    batched range reads.
    """

    name: str
    read_bandwidth: float  # bytes/second
    write_bandwidth: float  # bytes/second
    latency: float  # seconds per operation
    streams: int = 1  # useful concurrent read streams

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise StorageError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise StorageError(f"{self.name}: latency must be non-negative")
        if self.streams < 1:
            raise StorageError(f"{self.name}: streams must be >= 1")

    def read_seconds(self, nbytes: int) -> float:
        """Modeled time to read ``nbytes``."""
        return self.latency + nbytes / self.read_bandwidth

    def write_seconds(self, nbytes: int) -> float:
        """Modeled time to write ``nbytes``."""
        return self.latency + nbytes / self.write_bandwidth

    def concurrent_read_seconds(self, sizes: "list[int] | tuple[int, ...]") -> float:
        """Modeled time for a batch of range reads issued concurrently.

        Requests overlap their per-op latency (paid once for the batch)
        and share the device's aggregate bandwidth, which scales with
        the number of concurrent requests up to ``streams``. A batch of
        one degenerates exactly to :meth:`read_seconds`.
        """
        if not sizes:
            return 0.0
        k = min(len(sizes), self.streams)
        return self.latency + sum(sizes) / (self.read_bandwidth * k)


#: Representative per-process device models (fastest first).
DEVICE_PRESETS: dict[str, DeviceModel] = {
    "hbm": DeviceModel("hbm", 16 * _GiB, 12 * _GiB, 0.2e-6, streams=8),
    "dram_tmpfs": DeviceModel("dram_tmpfs", 6 * _GiB, 4 * _GiB, 1e-6, streams=8),
    "nvram": DeviceModel("nvram", 3 * _GiB, 2 * _GiB, 5e-6, streams=4),
    "ssd": DeviceModel("ssd", 1.2 * _GiB, 800 * _MiB, 50e-6, streams=4),
    "burst_buffer": DeviceModel(
        "burst_buffer", 1.5 * _GiB, 1 * _GiB, 100e-6, streams=4
    ),
    # Per-request overhead for large streaming PFS reads with server-side
    # readahead; congested metadata paths can be 10x worse, but the
    # figures depend on the tier *gap*, not the absolute overhead. The
    # 300 MiB/s is a per-stream number; four-way striping is a modest
    # stripe count for Titan's Lustre.
    "lustre": DeviceModel("lustre", 300 * _MiB, 250 * _MiB, 5e-4, streams=4),
    "campaign": DeviceModel("campaign", 50 * _MiB, 40 * _MiB, 20e-3, streams=2),
}


def device_preset(name: str) -> DeviceModel:
    """Look up a preset device model by name."""
    try:
        return DEVICE_PRESETS[name]
    except KeyError:
        raise StorageError(
            f"unknown device {name!r}; presets: {sorted(DEVICE_PRESETS)}"
        ) from None
