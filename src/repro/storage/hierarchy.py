"""Ordered multi-tier storage hierarchy.

Mirrors the paper's pyramid (Fig. 1): tier 0 in this list is the
*fastest and smallest* (``ST2`` in the paper's 3-level example maps to
our index 0), descending to the slowest and largest. Placement walks
down from the fastest tier and bypasses tiers with insufficient
capacity (§III-D); the proportional-allocation assumption of §IV-B and
the data migration/eviction hook the paper defers ("we believe data
migration and eviction will play an integral part") are implemented
here as well.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.errors import CapacityError, StorageError
from repro.storage.backend import make_backend
from repro.storage.device import device_preset
from repro.storage.simclock import SimClock
from repro.storage.tier import StorageTier

__all__ = ["StorageHierarchy", "two_tier_titan"]


class StorageHierarchy:
    """Ordered collection of tiers, fastest first."""

    def __init__(self, tiers: list[StorageTier]) -> None:
        if not tiers:
            raise StorageError("hierarchy needs at least one tier")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate tier names: {names}")
        self.tiers = list(tiers)
        # Share one clock across all tiers so pipeline totals are coherent.
        self.clock = tiers[0].clock
        for t in tiers[1:]:
            t.clock = self.clock
            t.backend.bind_clock(self.clock)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[StorageTier]:
        return iter(self.tiers)

    def __len__(self) -> int:
        return len(self.tiers)

    def __getitem__(self, index: int) -> StorageTier:
        return self.tiers[index]

    def tier(self, name: str) -> StorageTier:
        for t in self.tiers:
            if t.name == name:
                return t
        raise StorageError(f"no tier named {name!r}")

    def tier_names(self) -> list[str]:
        return [t.name for t in self.tiers]

    @property
    def fastest(self) -> StorageTier:
        return self.tiers[0]

    @property
    def slowest(self) -> StorageTier:
        return self.tiers[-1]

    # ------------------------------------------------------------------
    def place(
        self, relpath: str, data: bytes, preferred_index: int = 0, label: str = ""
    ) -> StorageTier:
        """Write starting at ``preferred_index``, bypassing full tiers.

        Returns the tier that accepted the data. Raises
        :class:`CapacityError` when no tier from the preferred one down
        can hold it.
        """
        for t in self.tiers[preferred_index:]:
            if t.has_capacity(len(data)) or t.exists(relpath):
                return self._write_to(t, relpath, data, label)
        raise CapacityError(
            f"no tier at index >= {preferred_index} can hold "
            f"{len(data)} bytes for {relpath!r}"
        )

    @staticmethod
    def _write_to(
        tier: StorageTier, relpath: str, data: bytes, label: str
    ) -> StorageTier:
        tier.write(relpath, data, label)
        return tier

    def locate(self, relpath: str) -> StorageTier | None:
        """Find which tier holds ``relpath`` (fastest wins)."""
        for t in self.tiers:
            if t.exists(relpath):
                return t
        return None

    def read(self, relpath: str, label: str = "") -> bytes:
        t = self.locate(relpath)
        if t is None:
            raise StorageError(f"{relpath!r} not found on any tier")
        return t.read(relpath, label)

    # ------------------------------------------------------------------
    def migrate(self, relpath: str, to_tier: str, label: str = "") -> None:
        """Move a file between tiers (charged as read + write).

        The eviction/migration mechanism the paper leaves as future work:
        demoting a cold base dataset frees fast-tier capacity; promoting a
        hot delta accelerates repeated analysis.
        """
        src = self.locate(relpath)
        if src is None:
            raise StorageError(f"{relpath!r} not found on any tier")
        dst = self.tier(to_tier)
        if dst is src:
            return
        data = src.read(relpath, label or "migrate")
        dst.write(relpath, data, label or "migrate")
        src.delete(relpath)

    def evict(self, relpath: str) -> None:
        """Demote a file one tier down (towards larger/slower storage)."""
        src = self.locate(relpath)
        if src is None:
            raise StorageError(f"{relpath!r} not found on any tier")
        idx = self.tiers.index(src)
        if idx + 1 >= len(self.tiers):
            raise StorageError(f"{relpath!r} already on the slowest tier")
        self.migrate(relpath, self.tiers[idx + 1].name)

    # ------------------------------------------------------------------
    def proportional_allocation(self, output_bytes: int) -> dict[str, int]:
        """Paper §IV-B proportional resource allocation.

        If the capacity ratio between a fast tier and the slowest tier is
        1/x, a simulation producing ``s`` bytes is granted ``s/x`` bytes
        of the fast tier.
        """
        base = self.slowest.capacity_bytes
        return {
            t.name: max(1, int(output_bytes * t.capacity_bytes / base))
            for t in self.tiers
        }

    def usage(self) -> dict[str, dict[str, int]]:
        return {
            t.name: {"used": t.used_bytes, "capacity": t.capacity_bytes}
            for t in self.tiers
        }


def two_tier_titan(
    root: str | Path,
    *,
    fast_capacity: int = 1 << 30,
    slow_capacity: int = 1 << 40,
    clock: SimClock | None = None,
    backend: str = "filesystem",
    shards: int = 4,
    chunk_size: int = 256 * 1024,
    replicas: int | None = None,
) -> StorageHierarchy:
    """The paper's testbed: DRAM tmpfs over Lustre (Titan, §IV-B).

    ``backend`` selects the object store holding each tier's bytes —
    ``"filesystem"`` (default, one file per object under
    ``root/<tier>``), ``"memory"`` (tmpfs-class, contents die with the
    hierarchy), ``"sharded"`` (chunks striped over ``shards``
    sub-stores under ``root/<tier>/shard<i>``), ``"remote"`` (S3-class
    hop with simulated network charges), or ``"replicated"`` (N-way
    mirrors under ``root/<tier>/replica<j>``). ``replicas`` mirrors the
    sharded/replicated leaves N ways (see
    :func:`~repro.storage.backend.make_backend`).
    """
    root = Path(root)
    clock = clock if clock is not None else SimClock()

    def _backend(tier_name: str):
        return make_backend(
            backend, root / tier_name, shards=shards, chunk_size=chunk_size,
            replicas=replicas,
        )

    return StorageHierarchy(
        [
            StorageTier(
                "tmpfs", device_preset("dram_tmpfs"), fast_capacity,
                root / "tmpfs", clock, backend=_backend("tmpfs"),
            ),
            StorageTier(
                "lustre", device_preset("lustre"), slow_capacity,
                root / "lustre", clock, backend=_backend("lustre"),
            ),
        ]
    )
