"""Deployment-mode cost model: post-processing, in situ, in transit.

Paper §III-A: "Canopus can be run to save data for post-processing, in
situ or in transit. By in situ, we mean Canopus runs on the same node as
the simulation (using either the same core or a different core than the
simulation process), and the in transit approach stages the data
in-memory to auxiliary nodes for processing. Switching transport modes
is a runtime option."

Each mode is modeled as the critical-path time of one simulation output
step, combining a measured refactor/compress cost (an
:class:`~repro.core.encoder.EncodeReport`) with bandwidth parameters:

* ``baseline``        — no Canopus: write the raw data to the PFS;
* ``inline``          — same core: simulation blocks on refactor +
  compressed write;
* ``helper_core``     — dedicated node cores run Canopus concurrently;
  the simulation loses those cores (slowdown factor) but only blocks on
  the compressed write;
* ``in_transit``      — raw data ships to staging nodes at network
  speed; refactoring and the storage write leave the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoder import EncodeReport
from repro.errors import ReproError

__all__ = ["ModeCost", "model_modes"]

_GiB = 1 << 30


@dataclass(frozen=True)
class ModeCost:
    """Critical-path cost of one output step under one deployment mode."""

    mode: str
    simulation_seconds: float
    blocking_seconds: float  # time the simulation stalls for data handling
    offloaded_seconds: float  # work done off the critical path

    @property
    def step_seconds(self) -> float:
        return self.simulation_seconds + self.blocking_seconds

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the step spent not simulating."""
        return self.blocking_seconds / self.step_seconds


def model_modes(
    report: EncodeReport,
    *,
    simulation_seconds: float,
    storage_bandwidth: float = 250e6,
    network_bandwidth: float = 5 * _GiB,
    helper_core_fraction: float = 1.0 / 16.0,
) -> dict[str, ModeCost]:
    """Project one measured encode onto the four deployment modes.

    Parameters
    ----------
    report:
        Measured single-process encode (refactor/compress times + sizes).
    simulation_seconds:
        Compute time of one simulation step on the full node.
    storage_bandwidth:
        Per-process PFS bandwidth (bytes/s).
    network_bandwidth:
        Per-process interconnect bandwidth for staging (bytes/s).
    helper_core_fraction:
        Fraction of node cores given to the in situ helper (the
        simulation slows by 1/(1−f)).
    """
    if simulation_seconds <= 0:
        raise ReproError("simulation_seconds must be positive")
    if not 0 < helper_core_fraction < 1:
        raise ReproError("helper_core_fraction must be in (0, 1)")

    raw = report.original_bytes
    compressed = report.total_compressed_bytes
    refactor = (
        report.decimation_seconds
        + report.delta_seconds
        + report.compress_seconds
    )
    write_raw = raw / storage_bandwidth
    write_compressed = compressed / storage_bandwidth
    stage_raw = raw / network_bandwidth

    baseline = ModeCost(
        mode="baseline",
        simulation_seconds=simulation_seconds,
        blocking_seconds=write_raw,
        offloaded_seconds=0.0,
    )
    inline = ModeCost(
        mode="inline",
        simulation_seconds=simulation_seconds,
        blocking_seconds=refactor + write_compressed,
        offloaded_seconds=0.0,
    )
    # Helper cores slow the simulation but take refactoring off its back;
    # the simulation still blocks on the (compressed) write if the helper
    # cannot keep up within the step.
    slowed = simulation_seconds / (1.0 - helper_core_fraction)
    helper_time = refactor / helper_core_fraction  # fewer cores, more time
    helper = ModeCost(
        mode="helper_core",
        simulation_seconds=slowed,
        blocking_seconds=max(0.0, helper_time - slowed) + write_compressed,
        offloaded_seconds=min(helper_time, slowed),
    )
    in_transit = ModeCost(
        mode="in_transit",
        simulation_seconds=simulation_seconds,
        blocking_seconds=stage_raw,
        offloaded_seconds=refactor + write_compressed,
    )
    return {
        m.mode: m for m in (baseline, inline, helper, in_transit)
    }
