"""Write-path cost model (paper Fig. 6b).

Combines *measured* single-process kernel costs (from a real
:class:`~repro.core.encoder.EncodeReport`) with a
:class:`~repro.perfmodel.scenarios.StorageComputeScenario` to predict
the per-process time breakdown of a parallel write:

* decimation and delta-calculation/compression are local and
  embarrassingly parallel → measured single-core cost, with every core
  processing its own partition (weak scaling: per-core data volume is
  the measured volume, so per-core compute time is the measured time);
* I/O funnels all cores' compressed output through the scenario's
  storage targets → per-core effective bandwidth =
  aggregate / cores, so I/O time *grows* with core count.

The output is the fraction stack of Fig. 6b: under high
storage-to-compute the compute phases dominate; under low, I/O does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoder import EncodeReport
from repro.errors import ReproError
from repro.perfmodel.scenarios import StorageComputeScenario

__all__ = ["WriteBreakdown", "model_write_breakdown"]


@dataclass(frozen=True)
class WriteBreakdown:
    """Predicted per-process write-path times under one scenario."""

    scenario: str
    decimation_seconds: float
    delta_compress_seconds: float
    io_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.decimation_seconds
            + self.delta_compress_seconds
            + self.io_seconds
        )

    def fractions(self) -> dict[str, float]:
        """Time fractions, the paper's Fig. 6b stacked bars."""
        total = self.total_seconds
        if total <= 0:
            raise ReproError("empty breakdown")
        return {
            "decimation": self.decimation_seconds / total,
            "delta_compression": self.delta_compress_seconds / total,
            "io": self.io_seconds / total,
        }


def model_write_breakdown(
    report: EncodeReport, scenario: StorageComputeScenario
) -> WriteBreakdown:
    """Project a measured single-process encode onto a parallel scenario.

    Each core handles one mesh partition of the measured size (weak
    scaling, as XGC1 does per-plane decomposition), so compute phases
    keep their measured per-core times while the shared storage
    bandwidth is divided across cores.
    """
    compressed = report.total_compressed_bytes
    per_core_bandwidth = scenario.storage_bandwidth / scenario.cores
    io_seconds = compressed / per_core_bandwidth
    return WriteBreakdown(
        scenario=scenario.name,
        decimation_seconds=report.decimation_seconds,
        delta_compress_seconds=report.delta_seconds + report.compress_seconds,
        io_seconds=io_seconds,
    )
