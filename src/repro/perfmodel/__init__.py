"""Performance models for the write-cost study (paper Fig. 6)."""

from repro.perfmodel.scenarios import (
    SCENARIOS,
    StorageComputeScenario,
    scenario,
)
from repro.perfmodel.modes import ModeCost, model_modes
from repro.perfmodel.trend import TREND, MachinePoint, storage_to_compute_series
from repro.perfmodel.writecost import WriteBreakdown, model_write_breakdown

__all__ = [
    "MachinePoint",
    "TREND",
    "storage_to_compute_series",
    "StorageComputeScenario",
    "SCENARIOS",
    "scenario",
    "WriteBreakdown",
    "model_write_breakdown",
    "ModeCost",
    "model_modes",
]
