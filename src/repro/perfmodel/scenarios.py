"""Storage-to-compute scenarios for the write-cost study (Fig. 6b).

The paper: "For each of the compute-bound, medium, and I/O-bound
scenario, we assign 32, 128, and 512 cores, respectively, along with
one storage target to run XGC1. This medium case is chosen to reflect
the capabilities of Titan which has 300,000 cores with 2,016 storage
targets."

Refactoring is embarrassingly parallel (decimation needs no
communication), so its time scales as 1/cores; the storage target's
bandwidth is fixed, so as cores grow the job becomes I/O-bound and the
I/O fraction of the write path rises — the effect Fig. 6b visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["StorageComputeScenario", "SCENARIOS", "scenario"]

#: Aggregate bandwidth of one storage target (Lustre OST-class).
TARGET_BANDWIDTH = 250e6  # bytes/second


@dataclass(frozen=True)
class StorageComputeScenario:
    """One point on the storage-to-compute axis."""

    name: str
    cores: int
    storage_targets: int = 1

    def __post_init__(self) -> None:
        if self.cores < 1 or self.storage_targets < 1:
            raise ReproError("cores and storage_targets must be >= 1")

    @property
    def storage_bandwidth(self) -> float:
        return self.storage_targets * TARGET_BANDWIDTH

    @property
    def storage_to_compute(self) -> float:
        """Relative storage capability per core (arbitrary units)."""
        return self.storage_bandwidth / self.cores


#: Paper §IV-C: high / medium / low storage-to-compute.
SCENARIOS: dict[str, StorageComputeScenario] = {
    "high": StorageComputeScenario("high", cores=32),
    "medium": StorageComputeScenario("medium", cores=128),
    "low": StorageComputeScenario("low", cores=512),
}


def scenario(name: str) -> StorageComputeScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
