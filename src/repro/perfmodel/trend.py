"""Storage-to-compute trend for leadership HPC systems (paper Fig. 6a).

Fig. 6a plots "bytes per sec / 1M flops" for large U.S. HPC systems
since 2009 (sourced from the CODAR overview the paper cites [31]),
showing the storage/compute gap widening sharply. We reconstruct the
series from the public machine specs (peak FLOPS and parallel-filesystem
aggregate bandwidth) of the leadership systems of each era.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachinePoint", "TREND", "storage_to_compute_series"]


@dataclass(frozen=True)
class MachinePoint:
    """One leadership machine's compute and storage headline numbers."""

    year: int
    name: str
    peak_flops: float  # floating-point ops / second
    storage_bandwidth: float  # bytes / second (aggregate PFS)

    @property
    def bytes_per_sec_per_mflops(self) -> float:
        """The paper's Fig. 6a y-axis: B/s of storage per 1M flops."""
        return self.storage_bandwidth / (self.peak_flops / 1e6)


#: Leadership-class systems, 2009 → 2024 (public peak specs).
TREND: tuple[MachinePoint, ...] = (
    MachinePoint(2009, "Jaguar", 1.75e15, 240e9),
    MachinePoint(2013, "Titan", 27e15, 1.4e12),
    MachinePoint(2017, "Summit (planned)", 200e15, 2.5e12),
    MachinePoint(2021, "Aurora-class (planned)", 1e18, 10e12),
    MachinePoint(2024, "Frontier-era", 1.6e18, 10e12),
)


def storage_to_compute_series() -> list[tuple[int, float]]:
    """(year, bytes/s per 1M flops) series; strictly decreasing."""
    return [(m.year, m.bytes_per_sec_per_mflops) for m in TREND]
