"""Session-oriented read API: open once, then restore by name.

The PR 1 façade asked callers to juggle ``open_dataset`` +
``CanopusDecoder`` + ``ProgressiveReader`` per read; this module is the
object surface both in-process analytics and the HTTP read tier
(:mod:`repro.service`) now share:

.. code-block:: python

    from repro.api import Session

    with Session(hierarchy) as session:
        campaign = session.open("fig9-multi")
        state = campaign.restore("dpot", level=0)
        coarse = campaign.restore("dpot", tolerance=1e-3)
        fields = campaign.restore_many(["dpot", "apar"], level=1)
        chunk_stats = campaign.stats("dpot", level=1)

A :class:`Session` owns retrieval configuration (engine width, range
cache budget, checksum policy) and caches one :class:`CampaignHandle`
per dataset name. Each handle wraps an open
:class:`~repro.io.dataset.BPDataset` plus a
:class:`~repro.core.decode_engine.DecodeEngine`, so every restore gets
the engine's prefetch pipeline and the process-wide
restored-level/geometry caches — two sessions (or two service tenants)
restoring the same content share one cache entry because keys are
content-fingerprint based, never handle identity.

All entry points beyond the positional name/variable are keyword-only.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.decode_engine import DecodeEngine
from repro.core.decoder import LevelData
from repro.core.notation import LevelScheme
from repro.core.progressive import ProgressiveReader
from repro.core.restored_cache import dataset_fingerprint
from repro.errors import QueryError, RestorationError, VariableNotFoundError
from repro.io.dataset import BPDataset
from repro.obs import trace
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["CampaignHandle", "Session"]


class Session:
    """One configured connection to a storage hierarchy (read side).

    Parameters (all keyword-only) configure every dataset the session
    opens: ``workers`` (engine + decode fan-out width), ``cache_bytes``
    (per-dataset range-cache budget), ``verify_checksums``,
    ``use_restored_cache`` (consult/publish the process-wide restored
    cache), ``pipeline``/``lookahead`` (prefetch pipelining), and
    ``transports`` (tier-name → transport override).
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        *,
        workers: int = 4,
        cache_bytes: int = 64 << 20,
        verify_checksums: bool = True,
        use_restored_cache: bool = True,
        pipeline: bool = True,
        lookahead: int = 2,
        transports=None,
    ) -> None:
        self.hierarchy = hierarchy
        self.workers = int(workers)
        self.cache_bytes = int(cache_bytes)
        self.verify_checksums = verify_checksums
        self.use_restored_cache = use_restored_cache
        self.pipeline = pipeline
        self.lookahead = lookahead
        self.transports = transports
        self._handles: dict[str, CampaignHandle] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def open(self, name: str) -> "CampaignHandle":
        """Open (or return the already-open handle to) one dataset."""
        if self._closed:
            raise RestorationError("session is closed")
        handle = self._handles.get(name)
        if handle is None:
            dataset = BPDataset.open(
                name,
                self.hierarchy,
                transports=self.transports,
                verify_checksums=self.verify_checksums,
                cache_bytes=self.cache_bytes,
                workers=self.workers,
            )
            handle = CampaignHandle(self, name, dataset)
            self._handles[name] = handle
        return handle

    @property
    def campaigns(self) -> list[str]:
        """Names of the datasets this session has open."""
        return sorted(self._handles)

    def stats(self) -> dict:
        """Aggregated engine/cache counters across open handles."""
        return {
            name: handle.dataset.engine_stats().snapshot()
            for name, handle in sorted(self._handles.items())
        }

    def close(self) -> None:
        """Close every open handle (idempotent)."""
        for handle in self._handles.values():
            handle.dataset.close()
        self._handles.clear()
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CampaignHandle:
    """Read handle to one open campaign/dataset.

    Produced by :meth:`Session.open`; do not construct directly. All
    retrieval methods are keyword-only past the variable name and are
    safe to call from multiple threads (the service's executor does).
    """

    def __init__(
        self, session: Session, name: str, dataset: BPDataset
    ) -> None:
        self.session = session
        self.name = name
        self.dataset = dataset
        self.engine = DecodeEngine(
            dataset,
            workers=session.workers,
            use_restored_cache=session.use_restored_cache,
            pipeline=session.pipeline,
            lookahead=session.lookahead,
        )
        self._planner = None

    @property
    def planner(self):
        """Lazy accuracy-aware retrieval planner over this handle."""
        if self._planner is None:
            from repro.query import QueryPlanner

            self._planner = QueryPlanner(self.engine)
        return self._planner

    # -- metadata -------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the open catalog (cache/ETag identity)."""
        return dataset_fingerprint(self.dataset)

    def variables(self) -> list[str]:
        return self.engine.variables()

    def scheme(self, var: str) -> LevelScheme:
        self._require_var(var)
        return self.engine.decoder.scheme(var)

    def keys(self) -> list[str]:
        return self.dataset.keys()

    def inq(self, key: str):
        return self.dataset.inq(key)

    def describe(self) -> dict:
        """JSON-ready campaign summary (the service's "open" payload)."""
        variables = {}
        for var in self.variables():
            scheme = self.scheme(var)
            variables[var] = {
                "num_levels": scheme.num_levels,
                "base_level": scheme.base_level,
            }
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "variables": variables,
            "keys": len(self.dataset.catalog.records),
        }

    def _require_var(self, var: str) -> None:
        meta = self.dataset.catalog.attrs.get("variables", {})
        if var not in meta:
            raise VariableNotFoundError(
                f"variable {var!r} not in dataset {self.name!r}; "
                f"has {sorted(meta)}"
            )

    # -- retrieval ------------------------------------------------------
    def restore(
        self,
        var: str,
        *,
        level: int | None = None,
        tolerance: float | None = None,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ) -> LevelData:
        """Restore one variable by level or by accuracy.

        Exactly one of ``level``/``tolerance`` may be given (neither
        means full accuracy, level 0). ``tolerance`` refines to the
        accuracy-aware endpoint of the progressive-retrieval framework:
        the :class:`~repro.query.QueryPlanner` certifies the stopping
        level from per-chunk summaries and fetches only the delta set
        that accuracy needs (datasets without summaries fall back to
        the measure-as-you-go progressive loop — same result, level by
        level). ``region``/``min_significance`` select focused /
        bounded-lossy retrieval and compose with both modes.

        Raises :class:`~repro.errors.QueryError` (a ``ValueError``
        mapping to HTTP 400) for ``tolerance <= 0`` or an empty
        ``region`` — both previously degraded to a silent
        full-accuracy loop.
        """
        self._require_var(var)
        if level is not None and tolerance is not None:
            raise RestorationError(
                "restore takes level or tolerance, not both"
            )
        if region is not None:
            from repro.query import normalize_region

            region = normalize_region(region)
        if tolerance is not None:
            if tolerance <= 0:
                raise QueryError(
                    "tolerance must be > 0 (use level=0 for full accuracy)"
                )
            with trace.span(
                "session.restore", "session",
                {"campaign": self.name, "var": var, "tolerance": tolerance},
            ):
                plan = self.planner.plan_restore(
                    var,
                    tolerance=tolerance,
                    region=region,
                    min_significance=min_significance,
                )
                if plan.complete:
                    return self.planner.execute(plan)
                # No summaries to certify from: measure level by level.
                reader = ProgressiveReader(
                    self.engine.decoder,
                    var,
                    pipeline=self.session.pipeline,
                    lookahead=self.session.lookahead,
                    min_significance=min_significance,
                )
                return reader.refine_until(
                    rms_tolerance=tolerance, max_level=0, region=region
                )
        with trace.span(
            "session.restore", "session",
            {"campaign": self.name, "var": var,
             "level": 0 if level is None else int(level)},
        ):
            return self.engine.restore(
                var,
                0 if level is None else int(level),
                region=region,
                min_significance=min_significance,
            )

    def restore_many(
        self,
        variables: Iterable[str],
        *,
        level: int = 0,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ) -> dict[str, LevelData]:
        """Concurrent multi-variable restore (``{var: LevelData}``)."""
        variables = list(variables)
        for var in variables:
            self._require_var(var)
        with trace.span(
            "session.restore_many", "session",
            {"campaign": self.name, "vars": len(variables), "level": level},
        ):
            return self.engine.restore_many(
                variables, level,
                region=region, min_significance=min_significance,
            )

    # -- accuracy-aware queries ----------------------------------------
    def plan(
        self,
        var: str,
        *,
        level: int | None = None,
        tolerance: float | None = None,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ):
        """Build (without executing) the retrieval plan for a restore.

        Metadata-only: returns the explainable
        :class:`~repro.query.RetrievalPlan` that :meth:`restore` would
        execute — which products it will fetch, which it proved it can
        skip, and the certified target level.
        """
        self._require_var(var)
        return self.planner.plan_restore(
            var,
            level=level,
            tolerance=tolerance,
            region=region,
            min_significance=min_significance,
        )

    def query_stats(self, var: str, *, region=None) -> dict:
        """Pushdown aggregate statistics (see :func:`repro.query.stats_query`)."""
        self._require_var(var)
        from repro.query import stats_query

        return stats_query(self.engine, var, region=region)

    def query_blobs(
        self, var: str, *, threshold: float, region=None,
        shape: tuple[int, int] = (128, 128),
    ) -> dict:
        """Pushdown blob detection (see :func:`repro.query.blob_query`)."""
        self._require_var(var)
        from repro.query import blob_query

        return blob_query(
            self.engine, var, threshold=threshold, region=region,
            shape=shape,
        )

    # -- near-data summaries -------------------------------------------
    def stats(
        self, var: str | None = None, *, level: int | None = None
    ) -> list[dict]:
        """Per-chunk summary statistics straight from the catalog.

        Returns one row per stored product carrying encoder-recorded
        value stats (min/max/|max|) — the OASIS-style pushdown surface:
        predicates evaluate against these without restoring any field.
        """
        if var is not None:
            self._require_var(var)
        rows = []
        for key in self.dataset.keys():
            rec = self.dataset.inq(key)
            if var is not None and not (
                rec.key == var or rec.key.startswith(f"{var}/")
            ):
                continue
            if level is not None and rec.level != level:
                continue
            stats = rec.attrs.get("stats")
            if stats is None:
                continue
            rows.append(
                {
                    "key": rec.key,
                    "kind": rec.kind,
                    "level": rec.level,
                    "bytes": rec.length,
                    "stats": dict(stats),
                }
            )
        return rows

    # -- raw bytes ------------------------------------------------------
    def read_raw(
        self, key: str, *, start: int = 0, length: int | None = None
    ) -> bytes:
        """Range-read one stored product's (compressed) bytes.

        ``start``/``length`` select a sub-range of the payload (the
        delta-download endpoint); the full payload still flows through
        the retrieval engine, so repeated ranged reads of one product
        hit the range cache instead of the tier.
        """
        rec = self.dataset.inq(key)
        if start < 0 or start > rec.length:
            raise RestorationError(
                f"range start {start} outside [0, {rec.length}]"
            )
        blob = self.dataset.read(key)
        if length is None:
            return blob[start:]
        if length < 0:
            raise RestorationError("range length must be >= 0")
        return blob[start : start + length]

    def close(self) -> None:
        self.dataset.close()
        self.session._handles.pop(self.name, None)
