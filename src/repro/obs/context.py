"""Request-scoped trace context carried on :mod:`contextvars`.

PR 2's tracer attributed spans and SimClock charges to *threads*
(``threading.local`` stacks), which is the wrong key for a multi-tenant
service: one request hops from the asyncio service node onto a shared
``ThreadPoolExecutor`` in the data node and from there into the
engine's internal pools, while the same executor thread serves many
requests back to back. This module keys everything by **request**
instead: a small immutable :class:`TraceContext` (trace id, remote
parent span, tenant, sampling decision) stored in a
:class:`contextvars.ContextVar`, which

* survives ``await`` hops automatically (every asyncio task snapshots
  its creation context);
* is explicitly carried into worker threads with :func:`propagate`
  (thread pools do *not* inherit context — the submit site must copy
  it), so a span opened on an executor thread parents under the
  request's root span and a SimClock charge lands on the right tenant;
* never leaks between concurrent requests sharing an executor thread,
  because each submitted job runs inside its own
  :func:`contextvars.copy_context` snapshot.

The wire format is W3C trace-context: ``traceparent:
00-<trace-id 32hex>-<span-id 16hex>-<flags 2hex>``. The service accepts
it, generates one when absent, and echoes the trace id back as
``x-request-id`` (see :mod:`repro.service.servicenode`).

Everything here is allocation-free when unused: :func:`current` is one
ContextVar read, and :func:`propagate` returns the function unchanged
when no context is active, so untraced library use pays nothing.
"""

from __future__ import annotations

import contextvars
import os
import re
from dataclasses import dataclass, replace

__all__ = [
    "TraceContext",
    "activate",
    "bind_tenant",
    "current",
    "current_context",
    "deactivate",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "propagate",
]

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One request's identity, as seen by every layer it touches."""

    #: 32-hex W3C trace id; "" only for tenant-binding without a request.
    trace_id: str
    #: 16-hex span id of the caller's span (from an incoming
    #: ``traceparent``), "" when this process started the trace.
    parent_span: str = ""
    #: Tenant the request was authenticated as ("" before auth).
    tenant: str = ""
    #: Head-based sampling decision (errors/slow requests are kept
    #: regardless — see :class:`repro.obs.trace.TraceBuffer`).
    sampled: bool = True

    def traceparent(self, span_id: str | None = None) -> str:
        """Render this context as a ``traceparent`` header value."""
        return format_traceparent(
            self.trace_id, span_id or self.parent_span or new_span_id(),
            sampled=self.sampled,
        )


_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro-trace-context", default=None
)


def current() -> TraceContext | None:
    """The active request context, or ``None`` outside any request."""
    return _CURRENT.get()


#: Package-level alias (``repro.obs.current_context``) — ``current`` is
#: too generic a name to re-export at the package root.
current_context = current


def activate(ctx: TraceContext) -> contextvars.Token:
    """Install ``ctx`` as the current context; returns the reset token."""
    return _CURRENT.set(ctx)


def deactivate(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


def bind_tenant(tenant: str) -> contextvars.Token:
    """Attach a tenant to the current context (creating one if needed).

    Used by the data node when work is submitted on behalf of a tenant:
    with a request context active the tenant is recorded on it; without
    one (direct library use of :class:`~repro.service.datanode.DataNode`)
    a request-less context is created so SimClock attribution still
    finds the tenant.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return _CURRENT.set(TraceContext(trace_id="", tenant=tenant))
    if ctx.tenant == tenant:
        return _CURRENT.set(ctx)  # no-op set keeps reset symmetric
    return _CURRENT.set(replace(ctx, tenant=tenant))


# ---------------------------------------------------------------------------
# W3C traceparent
# ---------------------------------------------------------------------------
def new_trace_id() -> str:
    """Fresh 32-hex trace id (never all zeros)."""
    while True:
        tid = os.urandom(16).hex()
        if tid != "0" * 32:
            return tid


def new_span_id() -> str:
    """Fresh 16-hex span id (never all zeros)."""
    while True:
        sid = os.urandom(8).hex()
        if sid != "0" * 16:
            return sid


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` when absent or invalid.

    Invalid headers are treated as absent (the service starts a fresh
    trace) rather than rejected — per the W3C spec, a broken upstream
    must not break the request.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff" or trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(
        trace_id=trace_id,
        parent_span=span_id,
        sampled=bool(int(flags, 16) & 0x01),
    )


def format_traceparent(
    trace_id: str, span_id: str, *, sampled: bool = True
) -> str:
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


# ---------------------------------------------------------------------------
# thread-pool propagation
# ---------------------------------------------------------------------------
def propagate(fn):
    """Bind ``fn`` to a snapshot of the submitting context.

    Thread pools run jobs in each worker's own (empty) context; wrapping
    the callable at submit time carries the request context — and the
    tracer's span stack, which also lives on contextvars — across the
    thread hop, so the worker's spans join the submitter's span tree
    and its SimClock charges keep their tenant.

    Outside any request (``current() is None``) the function is
    returned unchanged: plain library use keeps thread-root spans and
    pays no ``copy_context`` cost.
    """
    if _CURRENT.get() is None:
        return fn
    snapshot = contextvars.copy_context()

    def _in_context(*args, **kwargs):
        return snapshot.copy().run(fn, *args, **kwargs)

    return _in_context
