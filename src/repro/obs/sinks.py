"""Trace sinks and exporters: in-memory, JSONL, Chrome trace-event.

The Chrome exporter emits the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto and ``chrome://tracing``. The dual-clock model maps
onto two trace *processes*:

* ``pid 1`` — **wall clock**: one track per real thread, complete
  (``ph="X"``) events whose ``ts``/``dur`` are perf-counter
  microseconds; worker-thread overlap (prefetch vs. decompress) is
  visible directly.
* ``pid 2`` — **simulated I/O**: the same spans replayed on the
  simulated timeline (``SimClock.elapsed`` snapshots), plus one track
  per storage tier carrying the individual transfers; overlapped batch
  charges show as parallel per-tier slices.

Every ``X`` event's ``args`` carries both durations (``wall_seconds``
and ``sim_seconds``), so either view can be read without flipping
between processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.trace import IORecord, SpanRecord

__all__ = [
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
]

#: Trace-process ids for the two clocks.
WALL_PID = 1
SIM_PID = 2


class TraceSink:
    """Receives each span as it finishes; subclass and override."""

    def on_span(self, record: SpanRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass


class InMemorySink(TraceSink):
    """Collects spans in a list (tests, ad-hoc inspection)."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []

    def on_span(self, record: SpanRecord) -> None:
        self.records.append(record)


class JsonlSink(TraceSink):
    """Streams one JSON object per finished span to a file.

    Unlike the end-of-session exporters, this writes incrementally, so a
    crashed run still leaves every completed span on disk.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def on_span(self, record: SpanRecord) -> None:
        self._fh.write(json.dumps(record.to_dict()) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace_events(
    spans: Iterable[SpanRecord], io_records: Iterable[IORecord] = ()
) -> list[dict]:
    """Build the ``traceEvents`` list for a set of finished spans."""
    spans = list(spans)
    io_records = list(io_records)

    # Stable integer tids: real threads first, then sim-side tracks.
    thread_names = sorted({r.thread for r in spans})
    tier_names = sorted({r.tier for r in io_records})
    tids: dict[str, int] = {}
    for name in thread_names:
        tids[f"wall:{name}"] = len(tids)
        tids[f"sim:{name}"] = len(tids)
    for tier in tier_names:
        tids[f"tier:{tier}"] = len(tids)

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": WALL_PID,
            "tid": 0,
            "args": {"name": "wall clock"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIM_PID,
            "tid": 0,
            "args": {"name": "simulated I/O"},
        },
    ]
    for name in thread_names:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": WALL_PID,
                "tid": tids[f"wall:{name}"],
                "args": {"name": name},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": tids[f"sim:{name}"],
                "args": {"name": f"{name} (sim)"},
            }
        )
    for tier in tier_names:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": tids[f"tier:{tier}"],
                "args": {"name": f"tier {tier}"},
            }
        )

    for r in spans:
        args = {
            **r.args,
            "wall_seconds": r.wall_seconds,
            "sim_seconds": r.sim_seconds,
            "sim_charged": r.sim_charged,
        }
        if r.trace_id:
            args["trace_id"] = r.trace_id
        if r.tenant:
            args["tenant"] = r.tenant
        if r.error:
            args["error"] = r.error
        events.append(
            {
                "name": r.name,
                "cat": r.category or "span",
                "ph": "X",
                "ts": _us(r.wall_start),
                "dur": _us(r.wall_seconds),
                "pid": WALL_PID,
                "tid": tids[f"wall:{r.thread}"],
                "args": args,
            }
        )
        if r.sim_end > r.sim_start:
            events.append(
                {
                    "name": r.name,
                    "cat": r.category or "span",
                    "ph": "X",
                    "ts": _us(r.sim_start),
                    "dur": _us(r.sim_seconds),
                    "pid": SIM_PID,
                    "tid": tids[f"sim:{r.thread}"],
                    "args": args,
                }
            )

    for io in io_records:
        events.append(
            {
                "name": f"{io.op} {io.label}".strip(),
                "cat": "io",
                "ph": "X",
                "ts": _us(io.sim_start),
                "dur": _us(io.seconds),
                "pid": SIM_PID,
                "tid": tids[f"tier:{io.tier}"],
                "args": {
                    "tier": io.tier,
                    "op": io.op,
                    "nbytes": io.nbytes,
                    "sim_seconds": io.seconds,
                    "wall_seconds": 0.0,
                },
            }
        )
    return events


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[SpanRecord],
    io_records: Iterable[IORecord] = (),
) -> str:
    """Write a ``chrome://tracing`` / Perfetto loadable JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "traceEvents": chrome_trace_events(spans, io_records),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "format_version": 1},
    }
    path.write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return str(path)


def write_jsonl(
    path: str | Path,
    spans: Iterable[SpanRecord],
    io_records: Iterable[IORecord] = (),
) -> str:
    """Write spans (then transfers) as one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for r in spans:
            fh.write(json.dumps({"kind": "span", **r.to_dict()}) + "\n")
        for io in io_records:
            fh.write(json.dumps({"kind": "io", **io.to_dict()}) + "\n")
    return str(path)
