"""Latency SLOs: target + objective + rolling burn rate.

A service-tier reproduction of the paper's "retrieval cost must be
explainable" argument needs a yardstick, not just raw histograms: an
:class:`SLO` says "``objective`` of requests must finish under
``target_seconds``" and tracks how fast the error budget is burning
over a rolling window of recent requests.

Definitions (standard SRE nomenclature, count-based window):

* a request is **good** when it succeeded (no 5xx) *and* finished
  within ``target_seconds``; anything else is **bad**;
* **compliance** is the good fraction over the rolling window;
* **burn rate** is ``bad_fraction / (1 - objective)`` — 1.0 means the
  budget burns exactly at the sustainable rate, >1 means the tier is
  eating future budget (2.0 = twice as fast as allowed).

Each observation mirrors the state into gauges
(``<prefix>.burn_rate{slo=...}`` etc.) so the Prometheus exposition and
``/v1/metrics`` surface SLO health without a separate scrape path.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["SLO"]


class SLO:
    """One latency objective over a rolling count-based window.

    Parameters
    ----------
    name:
        Label value for the exported gauges (e.g. a route template).
    target_seconds:
        Latency threshold a good request must finish under.
    objective:
        Required good fraction in ``(0, 1)`` (e.g. ``0.95`` = p95
        under target).
    window:
        Number of most-recent requests the rolling state covers.
    registry / prefix:
        Where the gauges live; defaults to the process registry under
        ``service.slo``.
    """

    def __init__(
        self,
        name: str,
        *,
        target_seconds: float,
        objective: float = 0.95,
        window: int = 512,
        registry: MetricsRegistry | None = None,
        prefix: str = "service.slo",
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), not {objective}")
        if target_seconds <= 0:
            raise ValueError("target_seconds must be > 0")
        self.name = name
        self.target_seconds = float(target_seconds)
        self.objective = float(objective)
        self.window = int(window)
        self.metrics = registry if registry is not None else get_registry()
        self.prefix = prefix
        self._lock = threading.Lock()
        self._recent: deque[bool] = deque(maxlen=self.window)
        self._total = 0
        self._breaches = 0
        self.metrics.gauge(f"{prefix}.target_seconds", slo=name).set(
            self.target_seconds
        )
        self.metrics.gauge(f"{prefix}.objective", slo=name).set(self.objective)
        self._publish()

    # ------------------------------------------------------------------
    def observe(self, seconds: float, *, error: bool = False) -> bool:
        """Record one request; returns ``True`` when it was good."""
        good = not error and seconds <= self.target_seconds
        with self._lock:
            self._recent.append(good)
            self._total += 1
            if not good:
                self._breaches += 1
        self._publish()
        return good

    # ------------------------------------------------------------------
    @property
    def compliance(self) -> float:
        """Good fraction over the rolling window (1.0 when empty)."""
        with self._lock:
            if not self._recent:
                return 1.0
            return sum(self._recent) / len(self._recent)

    @property
    def burn_rate(self) -> float:
        """How fast the error budget burns (1.0 = sustainable rate)."""
        return (1.0 - self.compliance) / (1.0 - self.objective)

    @property
    def healthy(self) -> bool:
        return self.burn_rate <= 1.0

    def _publish(self) -> None:
        gauge = self.metrics.gauge
        gauge(f"{self.prefix}.compliance", slo=self.name).set(self.compliance)
        gauge(f"{self.prefix}.burn_rate", slo=self.name).set(self.burn_rate)
        gauge(f"{self.prefix}.window_requests", slo=self.name).set(
            float(len(self._recent))
        )

    def snapshot(self) -> dict:
        with self._lock:
            total, breaches = self._total, self._breaches
            window_n = len(self._recent)
        return {
            "name": self.name,
            "target_seconds": self.target_seconds,
            "objective": self.objective,
            "window": self.window,
            "window_requests": window_n,
            "compliance": self.compliance,
            "burn_rate": self.burn_rate,
            "healthy": self.healthy,
            "total_requests": total,
            "total_breaches": breaches,
        }

    def __repr__(self) -> str:
        return (
            f"SLO({self.name!r}, target={self.target_seconds}s, "
            f"objective={self.objective}, burn_rate={self.burn_rate:.2f})"
        )
