"""Observability: dual-clock tracing, metrics, and trace export.

The Canopus argument is quantitative — per-stage costs of decimation,
delta encoding, compression, tier placement, and progressive retrieval —
so this subpackage gives every layer one shared instrumentation
substrate instead of scattered ad-hoc counters:

* :mod:`repro.obs.trace` — thread-safe spans that record wall time
  *and* simulated I/O time (hooked into ``SimClock``), with a no-op
  fast path when tracing is disabled;
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  (the retrieval engine's ``EngineStats`` is a view over it);
* :mod:`repro.obs.sinks` — in-memory and JSONL sinks plus a Chrome
  trace-event exporter loadable in Perfetto / ``chrome://tracing``.

Typical use goes through :func:`repro.api.trace_session` or the
``repro trace`` CLI subcommand; library code instruments itself with
``repro.obs.trace.span(...)`` which costs one attribute check while no
session is active.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    TraceSink,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import (
    IORecord,
    SpanRecord,
    Tracer,
    enabled,
    get_tracer,
    span,
    trace_session,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "IORecord",
    "SpanRecord",
    "Tracer",
    "enabled",
    "get_tracer",
    "span",
    "trace_session",
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
]
