"""Observability: dual-clock tracing, metrics, and trace export.

The Canopus argument is quantitative — per-stage costs of decimation,
delta encoding, compression, tier placement, and progressive retrieval —
so this subpackage gives every layer one shared instrumentation
substrate instead of scattered ad-hoc counters:

* :mod:`repro.obs.trace` — request-scoped spans that record wall time
  *and* simulated I/O time (hooked into ``SimClock``), with a no-op
  fast path when tracing is disabled, plus the bounded
  :class:`~repro.obs.trace.TraceBuffer` ring of kept request traces;
* :mod:`repro.obs.context` — the ``contextvars`` trace context
  (trace id / tenant / sampling) that survives asyncio hops and is
  carried into thread pools with
  :func:`~repro.obs.context.propagate`; W3C ``traceparent`` parsing;
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  (fixed log-spaced buckets, ``quantile()`` for p50/p95/p99);
* :mod:`repro.obs.slo` — latency objectives with rolling burn rate;
* :mod:`repro.obs.logs` — structured JSONL event/access logs stamped
  with the active trace id;
* :mod:`repro.obs.prom` — Prometheus text exposition of the registry;
* :mod:`repro.obs.sinks` — in-memory and JSONL sinks plus a Chrome
  trace-event exporter loadable in Perfetto / ``chrome://tracing``.

Typical use goes through :func:`repro.api.trace_session` or the
``repro trace`` CLI subcommand; library code instruments itself with
``repro.obs.trace.span(...)`` which costs one attribute check while no
session is active.
"""

from repro.obs.context import (
    TraceContext,
    current_context,
    format_traceparent,
    parse_traceparent,
    propagate,
)
from repro.obs.logs import JsonlLogger, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.prom import render_prometheus
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    TraceSink,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.slo import SLO
from repro.obs.trace import (
    IORecord,
    RequestTrace,
    SpanRecord,
    TraceBuffer,
    Tracer,
    enabled,
    get_tracer,
    span,
    trace_session,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "IORecord",
    "RequestTrace",
    "SpanRecord",
    "TraceBuffer",
    "Tracer",
    "enabled",
    "get_tracer",
    "span",
    "trace_session",
    "TraceContext",
    "current_context",
    "format_traceparent",
    "parse_traceparent",
    "propagate",
    "JsonlLogger",
    "get_logger",
    "SLO",
    "render_prometheus",
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
]
