"""Prometheus text exposition (format 0.0.4) for the metrics registry.

Renders every instrument in a :class:`~repro.obs.metrics.MetricsRegistry`
as the plain-text scrape format Prometheus ingests:

* dotted metric names become underscore names (``service.requests`` →
  ``service_requests``) — dots are illegal in Prometheus names;
* counters/gauges render one sample per label set under a shared
  ``# TYPE`` header;
* histograms render the full conformant series: cumulative
  ``_bucket{le="..."}`` samples per bound (``le`` values come from the
  fixed log-spaced layout in :data:`repro.obs.metrics.DEFAULT_BUCKETS`),
  the mandatory ``le="+Inf"`` bucket, plus ``_sum`` and ``_count``;
* label values are escaped per the spec (backslash, quote, newline).

No third-party client library is involved — the format is
line-oriented text and the registry already holds everything needed.
Served by the read tier at ``GET /v1/metrics?format=prometheus``.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    out = _NAME_OK.sub("_", name.replace(".", "_"))
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _label_name(name: str) -> str:
    out = _LABEL_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels, extra: list[tuple[str, str]] | None = None) -> str:
    pairs = [(k, v) for k, v in labels]
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{_label_name(k)}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + body + "}"


def _format_value(value) -> str:
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _format_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return _format_value(bound)


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in the Prometheus text format; ends with ``\\n``.

    Instruments sharing a name (label families) are grouped under one
    ``# TYPE`` comment, as the format requires.
    """
    if registry is None:
        registry = get_registry()
    families: dict[str, list] = {}
    order: list[str] = []
    for metric in registry:
        if metric.name not in families:
            families[metric.name] = []
            order.append(metric.name)
        families[metric.name].append(metric)
    lines: list[str] = []
    for name in sorted(order):
        metrics = families[name]
        pname = _metric_name(name)
        first = metrics[0]
        if isinstance(first, Counter):
            lines.append(f"# TYPE {pname} counter")
            for m in metrics:
                labels = _render_labels(m.labels)
                lines.append(f"{pname}{labels} {_format_value(m.value)}")
        elif isinstance(first, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            for m in metrics:
                labels = _render_labels(m.labels)
                lines.append(f"{pname}{labels} {_format_value(m.value)}")
        elif isinstance(first, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            for m in metrics:
                for bound, cumulative in m.cumulative_buckets():
                    labels = _render_labels(
                        m.labels, [("le", _format_le(bound))]
                    )
                    lines.append(f"{pname}_bucket{labels} {cumulative}")
                labels = _render_labels(m.labels)
                lines.append(f"{pname}_sum{labels} {_format_value(m.total)}")
                lines.append(f"{pname}_count{labels} {m.count}")
        else:  # pragma: no cover - future instrument types
            continue
    return "\n".join(lines) + "\n" if lines else "\n"
