"""Thread-safe metrics registry: counters, gauges, histograms.

The registry is the quantitative backbone of the observability layer
(:mod:`repro.obs`): every subsystem that used to keep private ad-hoc
counters (the retrieval engine's ``EngineStats``, codec byte counts,
benchmark tallies) records through one of these instruments instead, so
a single :meth:`MetricsRegistry.snapshot` captures the whole pipeline's
state at once and the harness can emit it as machine-readable JSON.

Metrics are identified by ``(name, labels)``; labels are free-form
string key/value pairs (``counter("engine.hits_by_tier", tier="lustre")``).
Instruments are created on first use and are safe to mutate from any
thread — the retrieval engine's worker threads update counters
concurrently with the submit path.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, str]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, bytes, cache hits)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot_value(self):
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {dict(self.labels)}, value={self._value})"


class Gauge:
    """Last-observed value (cache occupancy, in-flight spans)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _snapshot_value(self):
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {dict(self.labels)}, value={self._value})"


#: Fixed log-spaced bucket upper bounds (seconds): three per decade
#: from 100 µs to 100 s. A fixed layout (rather than per-instrument
#: tuning) keeps every latency histogram mergeable and gives the
#: Prometheus exposition a stable ``le`` series.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (k / 3.0), 6) for k in range(-12, 7)
)


class Histogram:
    """Bucketed summary of an observed distribution (span durations).

    Observations land in fixed log-spaced buckets (:data:`DEFAULT_BUCKETS`
    by default, plus an implicit +Inf overflow), so :meth:`quantile`
    answers p50/p95/p99 with bounded error and zero per-observation
    allocation, and the layout maps 1:1 onto Prometheus
    ``_bucket{le=...}`` series. count/sum/min/max are kept exactly.
    """

    __slots__ = (
        "name", "labels", "count", "total", "min", "max",
        "bounds", "bucket_counts", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        *,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds: tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
        )
        #: One count per bound, plus the +Inf overflow slot at the end.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.count += 1
            self.total += value
            self.bucket_counts[idx] += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Linear interpolation inside the containing bucket, clamped to
        the exact observed min/max so the tails never over-report.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], not {q}")
        with self._lock:
            count = self.count
            counts = list(self.bucket_counts)
            lo, hi = self.min, self.max
        if not count:
            return 0.0
        rank = q * count
        seen = 0.0
        for idx, n in enumerate(counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                upper = self.bounds[idx] if idx < len(self.bounds) else hi
                frac = (rank - seen) / n
                est = lower + (upper - lower) * max(0.0, min(1.0, frac))
                return float(min(max(est, lo), hi))
            seen += n
        return float(hi)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ...]`` ending at +Inf."""
        out: list[tuple[float, int]] = []
        with self._lock:
            counts = list(self.bucket_counts)
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def _reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = float("inf")
            self.max = float("-inf")
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def _snapshot_value(self):
        if not self.count:
            return {
                "count": 0, "sum": 0.0, "min": None, "max": None,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, {dict(self.labels)}, count={self.count})"


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Creation is serialized under one lock; mutation happens under each
    instrument's own lock, so hot-path increments never contend with
    unrelated metrics.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelsKey], object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict[str, str]):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(key, cls(name, key[1]))
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[object]:
        return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, default=0, **labels: str):
        """Current value of one instrument (``default`` if never created)."""
        metric = self._metrics.get((name, _labels_key(labels)))
        return default if metric is None else metric._snapshot_value()

    def label_values(self, name: str, label: str) -> dict[str, object]:
        """``{label value: metric value}`` across one labeled family."""
        out: dict[str, object] = {}
        for (metric_name, labels), metric in list(self._metrics.items()):
            if metric_name != name:
                continue
            for key, value in labels:
                if key == label:
                    out[value] = metric._snapshot_value()
        return out

    def snapshot(self) -> dict[str, object]:
        """Flat ``{qualified name: value}`` view of every instrument.

        Labeled instruments render as ``name{k=v,...}`` keys, so the
        snapshot is JSON-ready without nesting surprises.
        """
        out: dict[str, object] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            if labels:
                qualified = name + "{" + ",".join(
                    f"{k}={v}" for k, v in labels
                ) + "}"
            else:
                qualified = name
            out[qualified] = metric._snapshot_value()
        return out

    def prefix_snapshot(self, prefix: str) -> dict[str, object]:
        """:meth:`snapshot` restricted to names under ``prefix``.

        ``prefix`` matches whole dotted components (``"service"``
        matches ``service.requests`` but not ``services.x``), which is
        what subsystem views want — e.g. the read tier's
        ``/v1/metrics`` reports only its own ``service.*`` family.
        """
        want = prefix.rstrip(".") + "."
        return {
            name: value
            for name, value in self.snapshot().items()
            if name.startswith(want)
        }

    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        for metric in list(self._metrics.values()):
            metric._reset()


#: Process-wide default registry (used when no explicit registry is wired).
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL
