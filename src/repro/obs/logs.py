"""Structured JSONL event/access logs correlated by trace id.

Plain-text access logs cannot be joined against traces or tenant
accounting; this module emits one JSON object per line instead, and
every line is stamped with the active request's ``trace_id`` and
``tenant`` (from :mod:`repro.obs.context`) automatically, so
``grep <trace-id> access.jsonl`` and ``GET /v1/trace/<trace-id>``
describe the same request.

A :class:`JsonlLogger` always keeps a bounded in-memory ring (cheap,
queryable in tests and from ``repro obs report``) and optionally
appends to a file. Log records are plain dicts with three reserved
keys: ``ts`` (UNIX seconds), ``event`` (dotted name like
``service.request``), ``level``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs import context as obs_context

__all__ = ["JsonlLogger", "configure", "get_logger"]


class JsonlLogger:
    """Bounded in-memory JSONL event log with optional file append.

    Parameters
    ----------
    path:
        When given, every record is appended to this file as one JSON
        line (the parent directory is created). The in-memory ring is
        kept regardless.
    capacity:
        Ring size for the in-memory tail.
    """

    def __init__(self, path=None, *, capacity: int = 2048) -> None:
        self.path = Path(path) if path is not None else None
        self._ring: deque[dict] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def log(self, event: str, *, level: str = "info", **fields) -> dict:
        """Emit one structured record; returns the record emitted.

        The active trace context contributes ``trace_id``/``tenant``
        unless the caller passed them explicitly.
        """
        record: dict = {
            "ts": time.time(),
            "event": event,
            "level": level,
        }
        ctx = obs_context.current()
        if ctx is not None:
            if ctx.trace_id and "trace_id" not in fields:
                record["trace_id"] = ctx.trace_id
            if ctx.tenant and "tenant" not in fields:
                record["tenant"] = ctx.tenant
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._ring.append(record)
            if self._file is not None:
                self._file.write(line + "\n")
                self._file.flush()
        return record

    def access(
        self,
        *,
        method: str,
        path: str,
        status: int,
        wall_seconds: float,
        **fields,
    ) -> dict:
        """One HTTP access-log line (``event=service.request``)."""
        level = "error" if status >= 500 else "info"
        return self.log(
            "service.request",
            level=level,
            method=method,
            path=path,
            status=status,
            wall_seconds=wall_seconds,
            **fields,
        )

    # ------------------------------------------------------------------
    def tail(self, limit: int = 100, *, event: str | None = None) -> list[dict]:
        """Most recent records, oldest first; optionally one event type."""
        with self._lock:
            records = list(self._ring)
        if event is not None:
            records = [r for r in records if r.get("event") == event]
        return records[-max(0, int(limit)):]

    def for_trace(self, trace_id: str) -> list[dict]:
        with self._lock:
            return [r for r in self._ring if r.get("trace_id") == trace_id]

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory"
        return f"JsonlLogger({where}, records={len(self)})"


# ---------------------------------------------------------------------------
# process-wide default logger
# ---------------------------------------------------------------------------
_default = JsonlLogger()
_default_lock = threading.Lock()


def get_logger() -> JsonlLogger:
    """The process-wide logger (memory-only until :func:`configure`)."""
    return _default


def configure(path=None, *, capacity: int = 2048) -> JsonlLogger:
    """Replace the process-wide logger (e.g. to add a file sink)."""
    global _default
    with _default_lock:
        _default.close()
        _default = JsonlLogger(path, capacity=capacity)
        return _default
