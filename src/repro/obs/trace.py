"""Dual-clock tracing: wall-time spans correlated with simulated I/O.

The reproduction runs on two clocks at once. Compute phases (decimation,
delta encoding, ZFP compression, restoration) burn *wall* time measured
with :func:`time.perf_counter`; transfer phases burn *simulated* time
charged to the shared :class:`~repro.storage.simclock.SimClock` by the
tier device models. A trace that shows only one of the two cannot answer
the question the paper's Figs. 6–11 answer — where does retrieval time
actually go when compute overlaps tiered I/O — so every span here
records both:

* ``wall_start``/``wall_end`` — seconds since the tracer started, from
  ``perf_counter``;
* ``sim_start``/``sim_end`` — snapshots of ``SimClock.elapsed`` taken at
  span entry/exit (when a clock is attached);
* ``sim_charged``/``sim_busy``/``sim_read`` — simulated seconds
  attributed to this span specifically: the tracer registers a listener
  on the clock (:meth:`SimClock.add_listener`) and credits each charge
  to the innermost active span *in the charging context*.

Span stacks live on :mod:`contextvars` (one module-level ContextVar
holding an immutable tuple), not ``threading.local``: a request that
hops from the asyncio service node onto the data node's executor and
into the engine's internal pools keeps ONE stack, provided each pool
submit wraps the callable with :func:`repro.obs.context.propagate`.
That makes the span tree — and SimClock charge attribution — keyed by
request rather than by thread. Code running outside any request still
gets natural per-thread roots, because fresh threads start with an
empty context.

``sim_read`` mirrors the data node's tenant accounting formula exactly
(``min(advance, sum of read-event seconds)`` per charge), so summing a
request's spans reproduces the per-tenant ``service.sim_read_seconds``
counters — the acceptance check for end-to-end attribution.

Disabled tracing must be free: module-level :func:`span` checks one
global and returns a shared no-op handle — no allocation, no clock
reads — so the instrumented hot paths (per-record engine reads, codec
calls) cost one attribute check when nobody is looking.

Use :func:`trace_session` (re-exported as ``repro.api.trace_session``)
to install a tracer for a ``with`` block and export the result::

    with trace_session(hierarchy, chrome_path="trace.json") as tracer:
        ds = open_dataset("run", hierarchy)
        for state in read_progressive(ds, "dpot").levels():
            ...
    # trace.json now loads in Perfetto / chrome://tracing
"""

from __future__ import annotations

import contextvars
import sys
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import context as obs_context
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SpanRecord",
    "IORecord",
    "NoopSpan",
    "RequestTrace",
    "TraceBuffer",
    "Tracer",
    "enabled",
    "get_tracer",
    "span",
    "trace_session",
]


@dataclass
class SpanRecord:
    """One finished span, on both clocks."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    thread: str
    wall_start: float
    wall_end: float
    sim_start: float = 0.0
    sim_end: float = 0.0
    #: Simulated seconds charged while this span (and no child) was the
    #: innermost active span in the charging context.
    sim_charged: float = 0.0
    #: Device busy seconds behind ``sim_charged`` (>= sim_charged for
    #: overlapped groups: busy sums, the charge advances max-per-tier).
    sim_busy: float = 0.0
    #: Simulated read seconds, per the tenant-accounting formula
    #: (``min(advance, read busy)`` per charge) — sums across a request's
    #: spans to the per-tenant ``service.sim_read_seconds`` counter.
    sim_read: float = 0.0
    #: W3C trace id of the request this span belongs to ("" outside
    #: any request context).
    trace_id: str = ""
    #: Tenant the enclosing request was authenticated as.
    tenant: str = ""
    args: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def wall_seconds(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def sim_seconds(self) -> float:
        """Simulated clock advance observed across the span."""
        return self.sim_end - self.sim_start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "wall_seconds": self.wall_seconds,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_seconds": self.sim_seconds,
            "sim_charged": self.sim_charged,
            "sim_busy": self.sim_busy,
            "sim_read": self.sim_read,
            "args": dict(self.args),
            "error": self.error,
        }


@dataclass(frozen=True)
class IORecord:
    """One simulated transfer placed on the simulated timeline.

    ``sim_start`` positions the transfer inside its charge group: all
    tiers of an overlapped batch start together at the group's start,
    and each tier's transfers queue behind one another — exactly the
    max-per-tier overlap model the engine charges with.
    """

    tier: str
    op: str
    nbytes: int
    seconds: float
    sim_start: float
    label: str = ""

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "op": self.op,
            "nbytes": self.nbytes,
            "seconds": self.seconds,
            "sim_start": self.sim_start,
            "label": self.label,
        }


class NoopSpan:
    """Shared do-nothing span handle for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **kwargs) -> None:
        pass


_NOOP = NoopSpan()

#: The active span stack for the current context: an immutable tuple of
#: live handles, innermost last. Immutability is what makes propagation
#: safe — a snapshot carried onto a worker thread shares the tuple, and
#: spans the worker pushes exist only in the worker's copied context.
_SPANS: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro-span-stack", default=()
)


class _SpanHandle:
    """Live span: context manager that records on exit."""

    __slots__ = (
        "_tracer", "name", "category", "args",
        "span_id", "parent_id", "trace_id", "tenant",
        "wall_start", "sim_start", "sim_charged", "sim_busy", "sim_read",
        "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, args) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id = 0
        self.parent_id: int | None = None
        self.trace_id = ""
        self.tenant = ""
        self.wall_start = 0.0
        self.sim_start = 0.0
        self.sim_charged = 0.0
        self.sim_busy = 0.0
        self.sim_read = 0.0
        self._token = None

    def note(self, **kwargs) -> None:
        """Attach args discovered mid-span (hit/miss, chosen tier, ...)."""
        if self.args is None:
            self.args = kwargs
        else:
            self.args.update(kwargs)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = _SPANS.get()
        # Parent under the innermost span of *this* tracer: nested
        # sessions keep independent trees even though they share the
        # context stack.
        self.parent_id = None
        for handle in reversed(stack):
            if handle._tracer is tracer:
                self.parent_id = handle.span_id
                break
        ctx = obs_context.current()
        if ctx is not None:
            self.trace_id = ctx.trace_id
            self.tenant = ctx.tenant
        self.span_id = tracer._next_id()
        self._token = _SPANS.set(stack + (self,))
        self.sim_start = tracer._sim_now()
        self.wall_start = time.perf_counter() - tracer.wall_origin
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        wall_end = time.perf_counter() - tracer.wall_origin
        sim_end = tracer._sim_now()
        try:
            # Restores the pre-enter stack, dropping any spans leaked
            # by misbehaving instrumented code along with self.
            _SPANS.reset(self._token)
        except ValueError:
            # Token from another context (exotic misuse): filter instead.
            _SPANS.set(tuple(h for h in _SPANS.get() if h is not self))
        tracer._record(
            SpanRecord(
                name=self.name,
                category=self.category,
                span_id=self.span_id,
                parent_id=self.parent_id,
                thread=threading.current_thread().name,
                trace_id=self.trace_id,
                tenant=self.tenant,
                wall_start=self.wall_start,
                wall_end=wall_end,
                sim_start=self.sim_start,
                sim_end=sim_end,
                sim_charged=self.sim_charged,
                sim_busy=self.sim_busy,
                sim_read=self.sim_read,
                args=self.args if self.args is not None else {},
                error=exc_type.__name__ if exc_type is not None else None,
            )
        )
        return False  # never swallow exceptions


class Tracer:
    """Collects spans and simulated-I/O placements for one session.

    Parameters
    ----------
    clock:
        Optional :class:`~repro.storage.simclock.SimClock`; when given,
        spans snapshot its ``elapsed`` and the tracer listens for
        charges to attribute simulated seconds per span and to place
        per-tier transfers on the simulated timeline.
    sinks:
        Optional :class:`repro.obs.sinks.TraceSink` instances notified
        of every finished span (the in-memory record list is always
        kept regardless).
    registry:
        Metrics registry for instrumented components that want a
        tracer-scoped home; defaults to a fresh one.
    """

    def __init__(self, *, clock=None, sinks=(), registry=None) -> None:
        self.clock = clock
        self.sinks = list(sinks)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.spans: list[SpanRecord] = []
        self.io_records: list[IORecord] = []
        self.wall_origin = time.perf_counter()
        self._lock = threading.Lock()
        self._id_counter = 0
        self._attached = False

    # -- bookkeeping ----------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _sim_now(self) -> float:
        clock = self.clock
        return clock.elapsed if clock is not None else 0.0

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)
        for sink in self.sinks:
            sink.on_span(record)

    # -- clock integration ----------------------------------------------
    def attach_clock(self, clock) -> None:
        """Subscribe to a SimClock (idempotent for the current clock)."""
        if self._attached and self.clock is clock:
            return
        if self._attached and self.clock is not None:
            self.clock.remove_listener(self._on_charge)
        self.clock = clock
        if clock is not None:
            clock.add_listener(self._on_charge)
            self._attached = True

    def detach_clock(self) -> None:
        if self._attached and self.clock is not None:
            self.clock.remove_listener(self._on_charge)
        self._attached = False

    def _on_charge(self, events, advance: float, elapsed_after: float) -> None:
        """SimClock listener: attribute a charge to the active span.

        Runs on the charging thread inside the charging *context*, so
        the innermost span of this tracer on the context stack is the
        code that issued the transfer — on a propagated executor thread
        that is the submitting request's span, not whatever the thread
        ran last. Mutation is locked: several workers can share one
        propagated parent handle and charge concurrently.
        """
        stack = _SPANS.get()
        top = None
        for handle in reversed(stack):
            if handle._tracer is self:
                top = handle
                break
        busy = 0.0
        read_busy = 0.0
        for e in events:
            busy += e.seconds
            if e.op == "read":
                read_busy += e.seconds
        group_start = elapsed_after - advance
        tier_offsets: dict[str, float] = {}
        placed = []
        for e in events:
            offset = tier_offsets.get(e.tier, 0.0)
            placed.append(
                IORecord(
                    tier=e.tier,
                    op=e.op,
                    nbytes=e.nbytes,
                    seconds=e.seconds,
                    sim_start=group_start + offset,
                    label=e.label,
                )
            )
            tier_offsets[e.tier] = offset + e.seconds
        with self._lock:
            if top is not None:
                top.sim_charged += advance
                top.sim_busy += busy
                # Same formula the data node uses for per-tenant read
                # accounting, so per-trace sums match tenant counters.
                top.sim_read += min(advance, read_busy)
            self.io_records.extend(placed)

    # -- span creation ---------------------------------------------------
    def span(self, name: str, category: str = "", args: dict | None = None):
        """New live span handle (use as a context manager)."""
        return _SpanHandle(self, name, category, args)

    def record_span(
        self,
        name: str,
        category: str = "",
        *,
        wall_start: float,
        wall_end: float,
        thread: str = "",
        parent_id: int | None = None,
        args: dict | None = None,
    ) -> SpanRecord:
        """Fold an externally-measured span into this tracer's tree.

        Work executed in another process (the multiprocess encode
        scheduler's workers) cannot push live span handles onto this
        tracer's context stack; instead the owning process reports wall
        timestamps (seconds on *this* tracer's ``wall_origin`` axis) and
        the span is recorded retroactively under ``parent_id``. The
        record flows through sinks exactly like a live span.
        """
        record = SpanRecord(
            name=name,
            category=category,
            span_id=self._next_id(),
            parent_id=parent_id,
            thread=thread or threading.current_thread().name,
            wall_start=wall_start,
            wall_end=wall_end,
            args=dict(args) if args else {},
        )
        ctx = obs_context.current()
        if ctx is not None:
            record.trace_id = ctx.trace_id
            record.tenant = ctx.tenant
        self._record(record)
        return record

    # -- summaries -------------------------------------------------------
    def summary(self) -> dict[str, dict[str, float]]:
        """Per-category totals (inclusive — nested spans both count)."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            spans = list(self.spans)
        for rec in spans:
            cat = out.setdefault(
                rec.category or "uncategorized",
                {"spans": 0, "wall_seconds": 0.0, "sim_charged": 0.0},
            )
            cat["spans"] += 1
            cat["wall_seconds"] += rec.wall_seconds
            cat["sim_charged"] += rec.sim_charged
        return out

    def export_chrome(self, path) -> "str":
        """Write the Chrome trace-event JSON; returns the path written."""
        from repro.obs.sinks import write_chrome_trace

        return write_chrome_trace(path, self.spans, self.io_records)

    def export_jsonl(self, path) -> "str":
        from repro.obs.sinks import write_jsonl

        return write_jsonl(path, self.spans, self.io_records)

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, io={len(self.io_records)}, "
            f"clock={'attached' if self._attached else 'none'})"
        )


# ---------------------------------------------------------------------------
# request trace ring buffer
# ---------------------------------------------------------------------------
@dataclass
class RequestTrace:
    """One finished request's span tree plus its access-log facts."""

    trace_id: str
    route: str = ""
    method: str = ""
    tenant: str = ""
    status: int = 0
    wall_seconds: float = 0.0
    error: str | None = None
    #: Why the buffer kept this trace: "error", "slow", or "sampled".
    kept: str = "sampled"
    spans: list[SpanRecord] = field(default_factory=list)

    @property
    def sim_read_seconds(self) -> float:
        """Simulated read seconds charged to this request (tenant formula)."""
        return sum(s.sim_read for s in self.spans)

    @property
    def sim_charged_seconds(self) -> float:
        return sum(s.sim_charged for s in self.spans)

    def to_summary(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "method": self.method,
            "tenant": self.tenant,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "sim_read_seconds": self.sim_read_seconds,
            "sim_charged_seconds": self.sim_charged_seconds,
            "spans": len(self.spans),
            "kept": self.kept,
            "error": self.error,
        }

    def to_dict(self) -> dict:
        out = self.to_summary()
        out["spans"] = [s.to_dict() for s in self.spans]
        return out


class TraceBuffer:
    """Bounded ring of kept request traces, fed as a live span sink.

    Spans carrying a ``trace_id`` accumulate in a pending area as they
    finish (on whatever thread finished them);
    :meth:`finish` — called once per request by the service node —
    decides whether the assembled tree is kept:

    * **errors** (HTTP 5xx or an unhandled exception) are ALWAYS kept;
    * **slow tail** (wall time >= ``slow_seconds``) is ALWAYS kept;
    * otherwise the head-based sampling decision applies (deterministic
      hash of the trace id against ``sample_rate``, or the upstream
      ``traceparent`` sampled flag when the caller forwarded one).

    Kept traces are served at ``GET /v1/trace/{id}`` and
    ``GET /v1/traces``; the ring evicts oldest-first past ``capacity``.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        sample_rate: float = 0.1,
        slow_seconds: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], not {sample_rate}")
        self.capacity = int(capacity)
        self.sample_rate = float(sample_rate)
        self.slow_seconds = float(slow_seconds)
        self._lock = threading.Lock()
        self._pending: dict[str, list[SpanRecord]] = {}
        self._kept: OrderedDict[str, RequestTrace] = OrderedDict()
        self.finished = 0
        self.dropped = 0

    # -- TraceSink protocol ---------------------------------------------
    def on_span(self, record: SpanRecord) -> None:
        if not record.trace_id:
            return
        with self._lock:
            self._pending.setdefault(record.trace_id, []).append(record)
            # Bound the pending area too: requests that never reach
            # finish() (client vanished mid-flight) must not grow it
            # without limit.
            while len(self._pending) > 4 * self.capacity:
                self._pending.pop(next(iter(self._pending)))

    def close(self) -> None:
        pass

    # -- sampling --------------------------------------------------------
    def head_decision(self, trace_id: str) -> bool:
        """Deterministic head-sampling decision for a trace id."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        try:
            bucket = int(trace_id[:8], 16) / float(0x100000000)
        except ValueError:
            return False
        return bucket < self.sample_rate

    # -- lifecycle -------------------------------------------------------
    def finish(
        self,
        trace_id: str,
        *,
        route: str = "",
        method: str = "",
        tenant: str = "",
        status: int = 0,
        wall_seconds: float = 0.0,
        error: str | None = None,
        sampled: bool | None = None,
    ) -> RequestTrace | None:
        """Seal a request's trace; returns it when kept, else ``None``.

        ``sampled`` overrides the hash decision (pass the upstream
        ``traceparent`` flag); errors and the slow tail are kept no
        matter what it says.
        """
        with self._lock:
            spans = self._pending.pop(trace_id, [])
            self.finished += 1
        if error is not None or status >= 500:
            kept = "error"
        elif wall_seconds >= self.slow_seconds:
            kept = "slow"
        elif sampled if sampled is not None else self.head_decision(trace_id):
            kept = "sampled"
        else:
            with self._lock:
                self.dropped += 1
            return None
        spans.sort(key=lambda s: s.wall_start)
        trace = RequestTrace(
            trace_id=trace_id,
            route=route,
            method=method,
            tenant=tenant,
            status=status,
            wall_seconds=wall_seconds,
            error=error,
            kept=kept,
            spans=spans,
        )
        with self._lock:
            self._kept[trace_id] = trace
            self._kept.move_to_end(trace_id)
            while len(self._kept) > self.capacity:
                self._kept.popitem(last=False)
        return trace

    # -- reads -----------------------------------------------------------
    def get(self, trace_id: str) -> RequestTrace | None:
        with self._lock:
            return self._kept.get(trace_id)

    def list(self, limit: int = 20) -> list[RequestTrace]:
        """Most recently kept traces, newest first."""
        with self._lock:
            kept = list(self._kept.values())
        return kept[::-1][: max(0, int(limit))]

    def slowest(self, limit: int = 10) -> list[RequestTrace]:
        with self._lock:
            kept = list(self._kept.values())
        kept.sort(key=lambda t: t.wall_seconds, reverse=True)
        return kept[: max(0, int(limit))]

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "sample_rate": self.sample_rate,
                "slow_seconds": self.slow_seconds,
                "kept": len(self._kept),
                "pending": len(self._pending),
                "finished": self.finished,
                "dropped": self.dropped,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._kept)


# ---------------------------------------------------------------------------
# module-level current tracer + fast path
# ---------------------------------------------------------------------------
_tracer: Tracer | None = None
_install_lock = threading.Lock()


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _tracer


def enabled() -> bool:
    return _tracer is not None


def span(name: str, category: str = "", args: dict | None = None):
    """A span on the current tracer — or the shared no-op handle.

    This is the call instrumented code makes unconditionally; when no
    tracer is installed it costs one global read and returns a
    singleton, allocating nothing.
    """
    tracer = _tracer
    if tracer is None:
        return _NOOP
    return tracer.span(name, category, args)


def _install(tracer: Tracer) -> Tracer | None:
    global _tracer
    with _install_lock:
        previous = _tracer
        _tracer = tracer
    return previous


def _uninstall(previous: Tracer | None) -> None:
    global _tracer
    with _install_lock:
        _tracer = previous


def _resolve_clock(target):
    """Accept a SimClock, or anything that leads to one.

    ``StorageHierarchy`` / ``StorageTier`` expose ``.clock``;
    ``BPDataset`` exposes ``.hierarchy.clock``; a bare clock passes
    through; ``None`` means wall-clock-only tracing.
    """
    if target is None:
        return None
    if hasattr(target, "charge") and hasattr(target, "elapsed"):
        return target
    clock = getattr(target, "clock", None)
    if clock is not None:
        return clock
    hierarchy = getattr(target, "hierarchy", None)
    if hierarchy is not None:
        return getattr(hierarchy, "clock", None)
    raise TypeError(
        f"cannot find a SimClock on {type(target).__name__!r}; pass a "
        "SimClock, StorageHierarchy, or BPDataset (or None)"
    )


@contextmanager
def trace_session(
    target=None,
    *,
    chrome_path=None,
    jsonl_path=None,
    sinks=(),
    registry=None,
):
    """Install a tracer for the duration of a ``with`` block.

    Parameters
    ----------
    target:
        Where the simulated clock lives: a
        :class:`~repro.storage.simclock.SimClock`, a
        :class:`~repro.storage.hierarchy.StorageHierarchy`, an open
        :class:`~repro.io.dataset.BPDataset` — or ``None`` for
        wall-clock-only tracing.
    chrome_path / jsonl_path:
        When given, the trace is exported there on exit (Chrome
        trace-event JSON for Perfetto / ``chrome://tracing``, or one
        JSON object per line).
    sinks / registry:
        Extra live sinks and an explicit metrics registry (see
        :class:`Tracer`).

    Yields the :class:`Tracer`; it stays readable after the block (for
    ``summary()`` or a custom export). Sessions may nest — the inner
    session's tracer wins until it exits.

    Teardown is unconditional: the global tracer is restored and the
    SimClock listener detached even when the traced block, a sink's
    ``close()``, or an export raises — a failed session must never keep
    attributing charges to a dead tracer (that would double-count the
    next session's I/O).
    """
    clock = _resolve_clock(target)
    tracer = Tracer(clock=clock, sinks=sinks, registry=registry)
    if clock is not None:
        tracer.attach_clock(clock)
    previous = _install(tracer)
    try:
        yield tracer
    finally:
        _uninstall(previous)
        try:
            tracer.detach_clock()
        finally:
            close_failure: BaseException | None = None
            for sink in tracer.sinks:
                close = getattr(sink, "close", None)
                if close is None:
                    continue
                try:
                    close()
                except BaseException as exc:  # noqa: BLE001 - close all sinks
                    if close_failure is None:
                        close_failure = exc
            try:
                if chrome_path is not None:
                    tracer.export_chrome(chrome_path)
            finally:
                try:
                    if jsonl_path is not None:
                        tracer.export_jsonl(jsonl_path)
                finally:
                    # Surface a sink-close failure only when the traced
                    # block itself succeeded — the body's exception is
                    # the primary failure and must not be replaced.
                    if close_failure is not None and sys.exc_info()[0] is None:
                        raise close_failure
