"""Dual-clock tracing: wall-time spans correlated with simulated I/O.

The reproduction runs on two clocks at once. Compute phases (decimation,
delta encoding, ZFP compression, restoration) burn *wall* time measured
with :func:`time.perf_counter`; transfer phases burn *simulated* time
charged to the shared :class:`~repro.storage.simclock.SimClock` by the
tier device models. A trace that shows only one of the two cannot answer
the question the paper's Figs. 6–11 answer — where does retrieval time
actually go when compute overlaps tiered I/O — so every span here
records both:

* ``wall_start``/``wall_end`` — seconds since the tracer started, from
  ``perf_counter``;
* ``sim_start``/``sim_end`` — snapshots of ``SimClock.elapsed`` taken at
  span entry/exit (when a clock is attached);
* ``sim_charged``/``sim_busy`` — simulated seconds attributed to this
  span specifically: the tracer registers a listener on the clock
  (:meth:`SimClock.add_listener`) and credits each charge to the
  innermost span active on the charging thread, so overlapped batches
  land on the engine span that issued them, not on whatever happens to
  be running elsewhere.

Disabled tracing must be free: module-level :func:`span` checks one
global and returns a shared no-op handle — no allocation, no clock
reads — so the instrumented hot paths (per-record engine reads, codec
calls) cost one attribute check when nobody is looking.

Use :func:`trace_session` (re-exported as ``repro.api.trace_session``)
to install a tracer for a ``with`` block and export the result::

    with trace_session(hierarchy, chrome_path="trace.json") as tracer:
        ds = open_dataset("run", hierarchy)
        for state in read_progressive(ds, "dpot").levels():
            ...
    # trace.json now loads in Perfetto / chrome://tracing
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SpanRecord",
    "IORecord",
    "NoopSpan",
    "Tracer",
    "enabled",
    "get_tracer",
    "span",
    "trace_session",
]


@dataclass
class SpanRecord:
    """One finished span, on both clocks."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    thread: str
    wall_start: float
    wall_end: float
    sim_start: float = 0.0
    sim_end: float = 0.0
    #: Simulated seconds charged while this span (and no child) was the
    #: innermost active span on the charging thread.
    sim_charged: float = 0.0
    #: Device busy seconds behind ``sim_charged`` (>= sim_charged for
    #: overlapped groups: busy sums, the charge advances max-per-tier).
    sim_busy: float = 0.0
    args: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def wall_seconds(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def sim_seconds(self) -> float:
        """Simulated clock advance observed across the span."""
        return self.sim_end - self.sim_start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "wall_seconds": self.wall_seconds,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_seconds": self.sim_seconds,
            "sim_charged": self.sim_charged,
            "sim_busy": self.sim_busy,
            "args": dict(self.args),
            "error": self.error,
        }


@dataclass(frozen=True)
class IORecord:
    """One simulated transfer placed on the simulated timeline.

    ``sim_start`` positions the transfer inside its charge group: all
    tiers of an overlapped batch start together at the group's start,
    and each tier's transfers queue behind one another — exactly the
    max-per-tier overlap model the engine charges with.
    """

    tier: str
    op: str
    nbytes: int
    seconds: float
    sim_start: float
    label: str = ""

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "op": self.op,
            "nbytes": self.nbytes,
            "seconds": self.seconds,
            "sim_start": self.sim_start,
            "label": self.label,
        }


class NoopSpan:
    """Shared do-nothing span handle for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **kwargs) -> None:
        pass


_NOOP = NoopSpan()


class _SpanHandle:
    """Live span: context manager that records on exit."""

    __slots__ = (
        "_tracer", "name", "category", "args",
        "span_id", "parent_id",
        "wall_start", "sim_start", "sim_charged", "sim_busy",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, args) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id = 0
        self.parent_id: int | None = None
        self.wall_start = 0.0
        self.sim_start = 0.0
        self.sim_charged = 0.0
        self.sim_busy = 0.0

    def note(self, **kwargs) -> None:
        """Attach args discovered mid-span (hit/miss, chosen tier, ...)."""
        if self.args is None:
            self.args = kwargs
        else:
            self.args.update(kwargs)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = tracer._next_id()
        stack.append(self)
        self.sim_start = tracer._sim_now()
        self.wall_start = time.perf_counter() - tracer.wall_origin
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        wall_end = time.perf_counter() - tracer.wall_origin
        sim_end = tracer._sim_now()
        stack = tracer._stack()
        # Pop self even if instrumented code misbehaved around us.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        tracer._record(
            SpanRecord(
                name=self.name,
                category=self.category,
                span_id=self.span_id,
                parent_id=self.parent_id,
                thread=threading.current_thread().name,
                wall_start=self.wall_start,
                wall_end=wall_end,
                sim_start=self.sim_start,
                sim_end=sim_end,
                sim_charged=self.sim_charged,
                sim_busy=self.sim_busy,
                args=self.args if self.args is not None else {},
                error=exc_type.__name__ if exc_type is not None else None,
            )
        )
        return False  # never swallow exceptions


class Tracer:
    """Collects spans and simulated-I/O placements for one session.

    Parameters
    ----------
    clock:
        Optional :class:`~repro.storage.simclock.SimClock`; when given,
        spans snapshot its ``elapsed`` and the tracer listens for
        charges to attribute simulated seconds per span and to place
        per-tier transfers on the simulated timeline.
    sinks:
        Optional :class:`repro.obs.sinks.TraceSink` instances notified
        of every finished span (the in-memory record list is always
        kept regardless).
    registry:
        Metrics registry for instrumented components that want a
        tracer-scoped home; defaults to a fresh one.
    """

    def __init__(self, *, clock=None, sinks=(), registry=None) -> None:
        self.clock = clock
        self.sinks = list(sinks)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.spans: list[SpanRecord] = []
        self.io_records: list[IORecord] = []
        self.wall_origin = time.perf_counter()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._id_counter = 0
        self._attached = False

    # -- bookkeeping ----------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _sim_now(self) -> float:
        clock = self.clock
        return clock.elapsed if clock is not None else 0.0

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)
        for sink in self.sinks:
            sink.on_span(record)

    # -- clock integration ----------------------------------------------
    def attach_clock(self, clock) -> None:
        """Subscribe to a SimClock (idempotent for the current clock)."""
        if self._attached and self.clock is clock:
            return
        if self._attached and self.clock is not None:
            self.clock.remove_listener(self._on_charge)
        self.clock = clock
        if clock is not None:
            clock.add_listener(self._on_charge)
            self._attached = True

    def detach_clock(self) -> None:
        if self._attached and self.clock is not None:
            self.clock.remove_listener(self._on_charge)
        self._attached = False

    def _on_charge(self, events, advance: float, elapsed_after: float) -> None:
        """SimClock listener: attribute a charge to the active span.

        Runs on the charging thread, so the innermost span on *this*
        thread's stack is the code that issued the transfer.
        """
        stack = self._stack()
        if stack:
            top = stack[-1]
            top.sim_charged += advance
            top.sim_busy += sum(e.seconds for e in events)
        group_start = elapsed_after - advance
        tier_offsets: dict[str, float] = {}
        placed = []
        for e in events:
            offset = tier_offsets.get(e.tier, 0.0)
            placed.append(
                IORecord(
                    tier=e.tier,
                    op=e.op,
                    nbytes=e.nbytes,
                    seconds=e.seconds,
                    sim_start=group_start + offset,
                    label=e.label,
                )
            )
            tier_offsets[e.tier] = offset + e.seconds
        with self._lock:
            self.io_records.extend(placed)

    # -- span creation ---------------------------------------------------
    def span(self, name: str, category: str = "", args: dict | None = None):
        """New live span handle (use as a context manager)."""
        return _SpanHandle(self, name, category, args)

    # -- summaries -------------------------------------------------------
    def summary(self) -> dict[str, dict[str, float]]:
        """Per-category totals (inclusive — nested spans both count)."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            spans = list(self.spans)
        for rec in spans:
            cat = out.setdefault(
                rec.category or "uncategorized",
                {"spans": 0, "wall_seconds": 0.0, "sim_charged": 0.0},
            )
            cat["spans"] += 1
            cat["wall_seconds"] += rec.wall_seconds
            cat["sim_charged"] += rec.sim_charged
        return out

    def export_chrome(self, path) -> "str":
        """Write the Chrome trace-event JSON; returns the path written."""
        from repro.obs.sinks import write_chrome_trace

        return write_chrome_trace(path, self.spans, self.io_records)

    def export_jsonl(self, path) -> "str":
        from repro.obs.sinks import write_jsonl

        return write_jsonl(path, self.spans, self.io_records)

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, io={len(self.io_records)}, "
            f"clock={'attached' if self._attached else 'none'})"
        )


# ---------------------------------------------------------------------------
# module-level current tracer + fast path
# ---------------------------------------------------------------------------
_tracer: Tracer | None = None
_install_lock = threading.Lock()


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _tracer


def enabled() -> bool:
    return _tracer is not None


def span(name: str, category: str = "", args: dict | None = None):
    """A span on the current tracer — or the shared no-op handle.

    This is the call instrumented code makes unconditionally; when no
    tracer is installed it costs one global read and returns a
    singleton, allocating nothing.
    """
    tracer = _tracer
    if tracer is None:
        return _NOOP
    return tracer.span(name, category, args)


def _install(tracer: Tracer) -> Tracer | None:
    global _tracer
    with _install_lock:
        previous = _tracer
        _tracer = tracer
    return previous


def _uninstall(previous: Tracer | None) -> None:
    global _tracer
    with _install_lock:
        _tracer = previous


def _resolve_clock(target):
    """Accept a SimClock, or anything that leads to one.

    ``StorageHierarchy`` / ``StorageTier`` expose ``.clock``;
    ``BPDataset`` exposes ``.hierarchy.clock``; a bare clock passes
    through; ``None`` means wall-clock-only tracing.
    """
    if target is None:
        return None
    if hasattr(target, "charge") and hasattr(target, "elapsed"):
        return target
    clock = getattr(target, "clock", None)
    if clock is not None:
        return clock
    hierarchy = getattr(target, "hierarchy", None)
    if hierarchy is not None:
        return getattr(hierarchy, "clock", None)
    raise TypeError(
        f"cannot find a SimClock on {type(target).__name__!r}; pass a "
        "SimClock, StorageHierarchy, or BPDataset (or None)"
    )


@contextmanager
def trace_session(
    target=None,
    *,
    chrome_path=None,
    jsonl_path=None,
    sinks=(),
    registry=None,
):
    """Install a tracer for the duration of a ``with`` block.

    Parameters
    ----------
    target:
        Where the simulated clock lives: a
        :class:`~repro.storage.simclock.SimClock`, a
        :class:`~repro.storage.hierarchy.StorageHierarchy`, an open
        :class:`~repro.io.dataset.BPDataset` — or ``None`` for
        wall-clock-only tracing.
    chrome_path / jsonl_path:
        When given, the trace is exported there on exit (Chrome
        trace-event JSON for Perfetto / ``chrome://tracing``, or one
        JSON object per line).
    sinks / registry:
        Extra live sinks and an explicit metrics registry (see
        :class:`Tracer`).

    Yields the :class:`Tracer`; it stays readable after the block (for
    ``summary()`` or a custom export). Sessions may nest — the inner
    session's tracer wins until it exits.
    """
    clock = _resolve_clock(target)
    tracer = Tracer(clock=clock, sinks=sinks, registry=registry)
    if clock is not None:
        tracer.attach_clock(clock)
    previous = _install(tracer)
    try:
        yield tracer
    finally:
        _uninstall(previous)
        tracer.detach_clock()
        for sink in tracer.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        if chrome_path is not None:
            tracer.export_chrome(chrome_path)
        if jsonl_path is not None:
            tracer.export_jsonl(jsonl_path)
