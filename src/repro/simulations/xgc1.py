"""Synthetic XGC1 dpot plane (fusion edge turbulence with blobs).

The paper's XGC1 dataset is one poloidal plane of the electrostatic
potential deviation ``dpot``: "a mesh of 41,087 triangles" over "20,694
double-precision mesh values", with "local over/under-densities …
develop near the edge" — the blobs that the §IV-D analytics detect.

The substitute: an annulus mesh of matching size (a tokamak poloidal
cross-section has a central hole at the magnetic axis region modeled
here by the inner radius), carrying

* a smooth turbulent background — low-order poloidal/radial Fourier
  modes, zero-mean;
* ``n_blobs`` Gaussian blobs of positive potential pinned near the
  outer (plasma-edge) radius, amplitudes well above the background so a
  thresholding detector finds them;
* optional small-scale turbulence noise (smooth, seeded).

All structure is deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.generators import annulus
from repro.simulations.base import SyntheticDataset

__all__ = ["make_xgc1"]


def make_xgc1(
    *,
    scale: float = 1.0,
    n_blobs: int = 9,
    blob_amplitude: float = 1.0,
    background_amplitude: float = 0.18,
    seed: int = 7,
) -> SyntheticDataset:
    """Build the synthetic dpot plane.

    ``scale=1.0`` matches the paper's mesh size (≈20.7k vertices, ≈41k
    triangles); smaller scales shrink both mesh dimensions for tests.
    """
    n_rings = max(6, int(round(123 * np.sqrt(scale))))
    n_sectors = max(12, int(round(168 * np.sqrt(scale))))
    r_inner, r_outer = 0.35, 1.0
    mesh = annulus(n_rings, n_sectors, r_inner=r_inner, r_outer=r_outer)

    v = mesh.vertices
    r = np.hypot(v[:, 0], v[:, 1])
    theta = np.arctan2(v[:, 1], v[:, 0])

    rng = np.random.default_rng(seed)
    # Turbulent background: a handful of (m, n) poloidal/radial modes.
    rho = (r - r_inner) / (r_outer - r_inner)
    field = np.zeros(mesh.num_vertices)
    for m in (2, 3, 5, 8):
        amp = background_amplitude / m
        phase = rng.uniform(0, 2 * np.pi)
        radial = np.sin(np.pi * rho * rng.integers(1, 4))
        field += amp * np.cos(m * theta + phase) * radial

    # Edge blobs: Gaussian over/under-densities near the separatrix.
    blob_r = r_outer * 0.84
    blob_sigma = 0.075 * (r_outer - r_inner)
    angles = rng.uniform(0, 2 * np.pi, n_blobs)
    amps = blob_amplitude * rng.uniform(0.8, 1.3, n_blobs)
    for angle, amp in zip(angles, amps):
        cx = blob_r * np.cos(angle)
        cy = blob_r * np.sin(angle)
        d2 = (v[:, 0] - cx) ** 2 + (v[:, 1] - cy) ** 2
        field += amp * np.exp(-d2 / (2 * blob_sigma**2))

    return SyntheticDataset(
        name="xgc1",
        variable="dpot",
        mesh=mesh,
        field=field,
        description=(
            "Synthetic XGC1 poloidal-plane dpot: turbulent background + "
            f"{n_blobs} edge blobs on a {n_rings}x{n_sectors} annulus"
        ),
    )
