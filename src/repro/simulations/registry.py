"""Dataset registry: name → factory, used by examples and benchmarks."""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.simulations.base import SyntheticDataset
from repro.simulations.cfd import make_cfd
from repro.simulations.genasis import make_genasis
from repro.simulations.xgc1 import make_xgc1

__all__ = ["DATASET_FACTORIES", "make_dataset", "dataset_names"]

DATASET_FACTORIES: dict[str, Callable[..., SyntheticDataset]] = {
    "xgc1": make_xgc1,
    "genasis": make_genasis,
    "cfd": make_cfd,
}


def dataset_names() -> list[str]:
    return sorted(DATASET_FACTORIES)


def make_dataset(name: str, **params) -> SyntheticDataset:
    """Instantiate a dataset by name, e.g. ``make_dataset("xgc1", scale=0.2)``."""
    try:
        factory = DATASET_FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    return factory(**params)
