"""Synthetic GenASiS magnetic-field magnitude (supernova core collapse).

The paper's GenASiS dataset shows "the magnetic field (normVec
magnitude) surrounding a solar core collapse, resulting in a supernova",
on a 130,050-triangle mesh. The physical structure visible in Fig. 4b is
a bright accretion-shock ring around a turbulent interior, fading
outward.

Substitute: a disk mesh of matching size carrying a non-negative
magnitude field — strong shock ring + decaying interior turbulence
(angular modes seeded deterministically) + smooth ambient decay.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.generators import disk
from repro.simulations.base import SyntheticDataset

__all__ = ["make_genasis"]


def make_genasis(
    *,
    scale: float = 1.0,
    shock_radius: float = 0.55,
    shock_width: float = 0.06,
    shock_amplitude: float = 1.0,
    seed: int = 11,
) -> SyntheticDataset:
    """Build the synthetic normVec-magnitude field.

    ``scale=1.0`` targets ≈65k vertices / ≈130k triangles to match the
    paper's mesh.
    """
    n_points = max(200, int(round(65_000 * scale)))
    mesh = disk(n_points, radius=1.0, seed=seed, jitter=0.15)

    v = mesh.vertices
    r = np.hypot(v[:, 0], v[:, 1])
    theta = np.arctan2(v[:, 1], v[:, 0])
    rng = np.random.default_rng(seed)

    # Stationary-accretion-shock ring, azimuthally modulated (SASI modes).
    sloshing = 1.0 + 0.25 * np.cos(theta + rng.uniform(0, 2 * np.pi)) + 0.1 * np.cos(
        2 * theta + rng.uniform(0, 2 * np.pi)
    )
    shock = shock_amplitude * sloshing * np.exp(
        -((r - shock_radius) ** 2) / (2 * shock_width**2)
    )

    # Turbulent proto-neutron-star interior, decaying toward the shock.
    interior = np.zeros(mesh.num_vertices)
    for m in (3, 4, 6, 9):
        amp = 0.35 / np.sqrt(m)
        phase = rng.uniform(0, 2 * np.pi)
        interior += amp * np.cos(m * theta + phase) * np.exp(-((r / 0.3) ** 2))
    interior = np.abs(interior)

    ambient = 0.08 * np.exp(-r / 0.8)
    field = shock + interior + ambient

    return SyntheticDataset(
        name="genasis",
        variable="normVec",
        mesh=mesh,
        field=field,
        description=(
            "Synthetic GenASiS |B|: accretion-shock ring + interior "
            f"turbulence on a {mesh.num_vertices}-vertex disk"
        ),
    )
