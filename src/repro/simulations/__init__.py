"""Synthetic stand-ins for the paper's three evaluation datasets.

The real XGC1/GenASiS/CFD outputs are not redistributable; these
generators produce unstructured triangular meshes of matching size and
fields with the same qualitative structure (see DESIGN.md substitution
table): edge blobs for XGC1, a shock ring for GenASiS, body-interface
pressure gradients for CFD.
"""

from repro.simulations.base import SyntheticDataset
from repro.simulations.evolution import FieldEvolution
from repro.simulations.cfd import make_cfd
from repro.simulations.genasis import make_genasis
from repro.simulations.registry import (
    DATASET_FACTORIES,
    dataset_names,
    make_dataset,
)
from repro.simulations.xgc1 import make_xgc1

__all__ = [
    "SyntheticDataset",
    "FieldEvolution",
    "make_xgc1",
    "make_genasis",
    "make_cfd",
    "make_dataset",
    "dataset_names",
    "DATASET_FACTORIES",
]
