"""Synthetic CFD pressure field (exterior flow around a jet nose).

The paper's CFD dataset comes from a CGNS I/O kernel: "pressure values
near the front of a fighter jet" on a 12,577-triangle mesh, with "the
most precision … needed along the interface of the material and the
airflow" (Fig. 4c).

Substitute: a rectangle-with-elliptical-cutout mesh (the body), refined
near the surface, carrying a potential-flow-like pressure coefficient:
stagnation high pressure at the leading edge, suction peaks above/below
the body where flow accelerates, decaying to freestream with distance —
smooth in the farfield, sharp gradients along the body interface.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.generators import rectangle_with_cutout
from repro.simulations.base import SyntheticDataset

__all__ = ["make_cfd"]

_WIDTH, _HEIGHT = 4.0, 2.0
_BODY_CX, _BODY_CY = _WIDTH * 0.3, _HEIGHT * 0.5
_BODY_RX, _BODY_RY = _WIDTH * 0.12, _HEIGHT * 0.18


def make_cfd(
    *,
    scale: float = 1.0,
    p_inf: float = 101_325.0,
    dynamic_pressure: float = 6_000.0,
    seed: int = 23,
) -> SyntheticDataset:
    """Build the synthetic pressure field.

    ``scale=1.0`` targets ≈6.4k vertices / ≈12.6k triangles to match the
    paper's mesh.
    """
    n_points = max(150, int(round(6_400 * scale)))
    mesh = rectangle_with_cutout(
        n_points, width=_WIDTH, height=_HEIGHT, seed=seed
    )

    v = mesh.vertices
    # Elliptical coordinates around the body.
    ex = (v[:, 0] - _BODY_CX) / _BODY_RX
    ey = (v[:, 1] - _BODY_CY) / _BODY_RY
    rho = np.sqrt(ex * ex + ey * ey)  # 1.0 on the body surface
    theta = np.arctan2(ey, ex)  # 0 = leading edge direction? (body x-axis)

    # Cylinder-flow pressure coefficient (flow from -x ⇒ stagnation point
    # at theta = pi): Cp = 1 − 4 sin²θ on the surface, +1 at stagnation,
    # −3 at the suction peaks above/below the body.
    cp_surface = 1.0 - 4.0 * np.sin(theta) ** 2
    # Decay to freestream (~ 1/rho² as for a dipole disturbance).
    cp = cp_surface / np.maximum(rho, 1.0) ** 2
    # Wake deficit trailing the body (downstream = +x side).
    wake = (
        -0.3
        * np.exp(-((ey / 0.6) ** 2))
        * np.exp(-np.maximum(ex - 1.0, 0.0) / 3.0)
        * (ex > 1.0)
    )

    field = p_inf + dynamic_pressure * (cp + wake)

    return SyntheticDataset(
        name="cfd",
        variable="pressure",
        mesh=mesh,
        field=field,
        description=(
            "Synthetic CFD pressure around an elliptical body "
            f"({mesh.num_vertices} vertices)"
        ),
    )
