"""Common shape of the synthetic evaluation datasets.

The paper evaluates Canopus on three applications, each contributing
"floating-point quantities on an unstructured triangular mesh" (§IV-A).
A :class:`SyntheticDataset` bundles one such (mesh, field) pair plus the
naming used in the figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["SyntheticDataset"]


@dataclass
class SyntheticDataset:
    """One evaluation dataset: mesh + per-vertex field + identity."""

    name: str  # e.g. "xgc1"
    variable: str  # e.g. "dpot"
    mesh: TriangleMesh
    field: np.ndarray
    description: str = ""

    def __post_init__(self) -> None:
        self.field = np.ascontiguousarray(self.field, dtype=np.float64)
        if len(self.field) != self.mesh.num_vertices:
            raise ReproError(
                f"{self.name}: field has {len(self.field)} values for "
                f"{self.mesh.num_vertices} vertices"
            )

    @property
    def nbytes(self) -> int:
        return self.field.nbytes

    def summary(self) -> dict[str, object]:
        return {
            "name": self.name,
            "variable": self.variable,
            "vertices": self.mesh.num_vertices,
            "triangles": self.mesh.num_triangles,
            "field_min": float(self.field.min()),
            "field_max": float(self.field.max()),
            "bytes": self.nbytes,
        }
