"""Time evolution of the synthetic fields (for campaign workloads).

The campaign machinery (paper: "written once but analyzed a number of
times") needs physically plausible timestep sequences. Blob filaments in
tokamak edge plasma advect poloidally and intermittently grow/decay
(D'Ippolito et al., the paper's [27]); the evolution model here rotates
the field pattern about the magnetic axis, modulates its amplitude, and
adds a fresh small-scale turbulence realization per step — keeping
successive steps strongly correlated, as real outputs are.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.mesh.interpolation import interpolate_at_points
from repro.mesh.locate import TriangleLocator
from repro.simulations.base import SyntheticDataset

__all__ = ["FieldEvolution"]


class FieldEvolution:
    """Generates a correlated timestep sequence from a base dataset.

    Parameters
    ----------
    dataset:
        The t=0 snapshot (mesh + field).
    rotation_per_step:
        Poloidal advection angle per step (radians).
    growth_per_step:
        Multiplicative amplitude drift per step (e.g. 0.02 = +2 %/step).
    noise_level:
        Std-dev of per-step turbulence noise as a fraction of the field
        range (smooth in space: sampled per vertex then mesh-averaged).
    center:
        Rotation axis.
    """

    def __init__(
        self,
        dataset: SyntheticDataset,
        *,
        rotation_per_step: float = 0.05,
        growth_per_step: float = 0.0,
        noise_level: float = 0.002,
        center: tuple[float, float] = (0.0, 0.0),
        seed: int = 0,
    ) -> None:
        if noise_level < 0:
            raise ReproError("noise_level must be >= 0")
        self.dataset = dataset
        self.rotation_per_step = rotation_per_step
        self.growth_per_step = growth_per_step
        self.noise_level = noise_level
        self.center = np.asarray(center, dtype=np.float64)
        self.seed = seed
        self._locator = TriangleLocator(dataset.mesh)
        indptr, indices = dataset.mesh.vertex_adjacency()
        self._adj = (indptr, indices)

    # ------------------------------------------------------------------
    def _rotated_positions(self, angle: float) -> np.ndarray:
        v = self.dataset.mesh.vertices - self.center
        c, s = np.cos(-angle), np.sin(-angle)
        rot = np.column_stack([c * v[:, 0] - s * v[:, 1],
                               s * v[:, 0] + c * v[:, 1]])
        return rot + self.center

    def _smooth_noise(self, step: int, scale: float) -> np.ndarray:
        """Per-vertex white noise smoothed once over the 1-ring."""
        rng = np.random.default_rng(self.seed * 100_003 + step)
        raw = rng.normal(0.0, scale, self.dataset.mesh.num_vertices)
        indptr, indices = self._adj
        sums = np.add.reduceat(raw[indices], indptr[:-1])
        degree = np.maximum(np.diff(indptr), 1)
        return 0.5 * raw + 0.5 * sums / degree

    def field_at(self, step: int) -> np.ndarray:
        """The field at timestep ``step`` (step 0 = the base snapshot)."""
        if step < 0:
            raise ReproError("step must be >= 0")
        if step == 0:
            return self.dataset.field.copy()
        angle = self.rotation_per_step * step
        # Advect: sample the base field at back-rotated positions.
        positions = self._rotated_positions(angle)
        advected = interpolate_at_points(
            self.dataset.mesh, self.dataset.field, positions,
            locator=self._locator,
        )
        amplitude = (1.0 + self.growth_per_step) ** step
        span = float(np.ptp(self.dataset.field))
        noise = self._smooth_noise(step, self.noise_level * span)
        return amplitude * advected + noise

    def steps(self, n: int):
        """Yield ``(step, field)`` for steps 0..n−1."""
        for step in range(n):
            yield step, self.field_at(step)
