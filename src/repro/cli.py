"""Command-line interface: generate, encode, inspect, restore.

A thin operational layer over the library, mirroring the utilities an
ADIOS install ships (``bpls``-style inspection, plus Canopus encode /
restore). All state lives under a ``--root`` directory holding the
two-tier storage hierarchy.

Examples
--------
::

    python -m repro.cli generate xgc1 --scale 0.3 --out plane.npz
    python -m repro.cli encode plane.npz --field dpot --dataset run \
        --root /tmp/store --levels 3 --tolerance 1e-4
    python -m repro.cli info run --root /tmp/store
    python -m repro.cli restore run --var dpot --level 0 \
        --root /tmp/store --out restored.npz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core import CanopusDecoder, CanopusEncoder, LevelScheme
from repro.errors import ReproError
from repro.harness.report import format_table
from repro.io import BPDataset
from repro.mesh.edge_collapse import KERNELS
from repro.mesh.io import load_mesh, save_mesh
from repro.simulations import dataset_names, make_dataset
from repro.storage import BACKEND_KINDS, two_tier_titan

__all__ = ["main", "build_parser"]


def _add_backend_arg(sub) -> None:
    sub.add_argument(
        "--backend", choices=BACKEND_KINDS, default="filesystem",
        help="object-store backend for each tier (use the same value "
        "for every command touching one --root; 'memory' does not "
        "persist across commands)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Canopus reproduction CLI (generate/encode/info/restore)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset to .npz")
    gen.add_argument("dataset", choices=dataset_names())
    gen.add_argument("--scale", type=float, default=0.3)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", required=True)

    enc = sub.add_parser("encode", help="Canopus-encode a mesh field")
    enc.add_argument("mesh", help=".npz produced by generate/save_mesh")
    enc.add_argument("--field", required=True, help="field name in the .npz")
    enc.add_argument("--dataset", required=True, help="output dataset name")
    enc.add_argument("--root", required=True, help="storage root directory")
    enc.add_argument("--levels", type=int, default=3)
    enc.add_argument("--codec", default="zfp")
    enc.add_argument("--tolerance", type=float, default=1e-4)
    enc.add_argument("--chunks", type=int, default=1)
    enc.add_argument(
        "--method", choices=KERNELS, default="serial",
        help="decimation kernel (serial heap loop or batched rounds)",
    )
    enc.add_argument(
        "--workers", type=int, default=None,
        help="thread count for delta + compress overlap (default: serial)",
    )
    enc.add_argument(
        "--fast-capacity", type=int, default=64 << 20,
        help="fast-tier capacity in bytes",
    )
    enc.add_argument(
        "--placement", choices=("walk", "cost"), default="walk",
        help="product placement: fastest-first capacity walk (paper "
        "default) or close-time cost-based plan",
    )
    _add_backend_arg(enc)

    info = sub.add_parser("info", help="list a dataset's products (bpls-like)")
    info.add_argument("dataset")
    info.add_argument("--root", required=True)
    _add_backend_arg(info)

    fsck = sub.add_parser(
        "fsck",
        help="verify a dataset's integrity (catalog products + per-tier "
        "backend inventory)",
    )
    fsck.add_argument("dataset")
    fsck.add_argument("--root", required=True)
    _add_backend_arg(fsck)

    res = sub.add_parser("restore", help="restore variable(s) to a level")
    res.add_argument(
        "dataset",
    )
    res.add_argument(
        "--var", required=True,
        help="variable name, or comma-separated list for a concurrent "
        "multi-variable restore",
    )
    res.add_argument("--level", type=int, default=0)
    res.add_argument("--root", required=True)
    res.add_argument(
        "--out", required=True,
        help="output .npz (mesh + field); with several --var names, "
        "a '{var}' placeholder is substituted (default: var suffix "
        "before the extension)",
    )
    res.add_argument(
        "--workers", type=int, default=None,
        help="decode thread-pool width (default: the retrieval "
        "engine's worker count)",
    )
    _add_backend_arg(res)

    srv = sub.add_parser(
        "serve",
        help="serve the read tier over HTTP (asyncio, multi-tenant)",
    )
    srv.add_argument("--root", required=True, help="storage root directory")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8686,
        help="listen port (0 picks a free one)",
    )
    srv.add_argument(
        "--workers", type=int, default=4,
        help="decode fan-out width per restore",
    )
    srv.add_argument(
        "--executor-workers", type=int, default=8,
        help="bounded executor size for blocking decode work",
    )
    srv.add_argument(
        "--tenants", default=None,
        help="JSON file: [{\"name\":..., \"token\":..., "
        "\"max_requests\":..., \"max_bytes\":..., \"max_inflight\":..., "
        "\"window_seconds\":...}, ...]; omitted = open access (dev only)",
    )
    _add_backend_arg(srv)

    tr = sub.add_parser(
        "trace",
        help="progressively read a variable under the dual-clock tracer",
    )
    tr.add_argument("dataset")
    tr.add_argument("--var", default=None, help="variable (default: first)")
    tr.add_argument("--level", type=int, default=0, help="stop at this level")
    tr.add_argument("--root", required=True)
    tr.add_argument(
        "--out", default=None,
        help="write a Chrome trace-event JSON (load in Perfetto / "
        "chrome://tracing)",
    )
    tr.add_argument(
        "--jsonl", default=None, help="write spans as JSON lines"
    )
    tr.add_argument(
        "--no-pipeline", action="store_true",
        help="disable I/O/compute overlap in the progressive read",
    )
    _add_backend_arg(tr)
    return parser


def _hierarchy(
    root: str, fast_capacity: int = 64 << 20, backend: str = "filesystem"
):
    return two_tier_titan(
        Path(root), fast_capacity=fast_capacity, slow_capacity=1 << 40,
        backend=backend,
    )


def _cmd_generate(args) -> int:
    params = {"scale": args.scale}
    if args.seed is not None:
        params["seed"] = args.seed
    ds = make_dataset(args.dataset, **params)
    save_mesh(args.out, ds.mesh, {ds.variable: ds.field})
    print(
        f"wrote {args.out}: {ds.mesh.num_vertices} vertices, "
        f"{ds.mesh.num_triangles} triangles, field {ds.variable!r}"
    )
    return 0


def _cmd_encode(args) -> int:
    mesh, fields = load_mesh(args.mesh)
    if args.field not in fields:
        raise ReproError(
            f"{args.mesh} has no field {args.field!r}; found {sorted(fields)}"
        )
    hierarchy = _hierarchy(args.root, args.fast_capacity, args.backend)
    params = {"tolerance": args.tolerance}
    if args.codec == "zfp":
        params["mode"] = "relative"
    encoder = CanopusEncoder(
        hierarchy, codec=args.codec, codec_params=params, chunks=args.chunks,
        method=args.method, workers=args.workers, placement=args.placement,
    )
    report, _ = encoder.encode(
        args.dataset, args.field, mesh, fields[args.field],
        LevelScheme(args.levels),
    )
    rows = [
        {
            "key": key,
            "bytes": report.compressed_bytes[key],
            "tier": report.placed_tiers[key],
        }
        for key in sorted(report.compressed_bytes)
    ]
    print(format_table(rows, title=f"encoded {args.dataset!r}"))
    print(
        f"payloads {report.payload_bytes} B (original "
        f"{report.original_bytes} B, {report.original_bytes / max(1, report.payload_bytes):.1f}x)"
    )
    return 0


def _cmd_info(args) -> int:
    hierarchy = _hierarchy(args.root, backend=args.backend)
    ds = BPDataset.open(args.dataset, hierarchy)
    rows = [
        {
            "key": rec.key,
            "kind": rec.kind,
            "level": rec.level,
            "bytes": rec.length,
            "codec": rec.codec or "-",
            "tier": rec.tier,
        }
        for rec in (ds.inq(k) for k in ds.keys())
    ]
    print(format_table(rows, title=f"dataset {args.dataset!r}"))
    variables = ds.catalog.attrs.get("variables", {})
    for var, meta in sorted(variables.items()):
        print(
            f"variable {var!r}: {meta['num_levels']} levels, "
            f"codec {meta['codec']}, counts {meta['counts']}"
        )
    return 0


def _cmd_fsck(args) -> int:
    from repro.io.fsck import check_dataset

    hierarchy = _hierarchy(args.root, backend=args.backend)
    result = check_dataset(BPDataset.open(args.dataset, hierarchy))
    print(result.report())
    return 0 if result.healthy else 2


def _out_path(template: str, var: str, multi: bool) -> str:
    if "{var}" in template:
        return template.replace("{var}", var)
    if not multi:
        return template
    stem, dot, ext = template.rpartition(".")
    if not dot:
        return f"{template}.{var}"
    return f"{stem}.{var}.{ext}"


def _cmd_restore(args) -> int:
    from repro.core.decode_engine import DecodeEngine

    hierarchy = _hierarchy(args.root, backend=args.backend)
    dataset = BPDataset.open(args.dataset, hierarchy)
    variables = [v for v in args.var.split(",") if v]
    io_before = hierarchy.clock.elapsed
    if len(variables) == 1 and args.workers is None:
        results = {
            variables[0]: CanopusDecoder(dataset).restore_to(
                variables[0], args.level
            )
        }
    else:
        engine = DecodeEngine(dataset, workers=args.workers)
        results = engine.restore_many(variables, args.level)
    # The engine charges the overlapped prefetch batch up front, outside
    # any one variable's PhaseTimings — report the aggregate clock delta.
    io_ms = (hierarchy.clock.elapsed - io_before) * 1e3
    for var, state in results.items():
        field = state.plane(0) if state.field.ndim == 2 else state.field
        out = _out_path(args.out, var, multi=len(variables) > 1)
        save_mesh(out, state.mesh, {var: np.asarray(field)})
        print(
            f"restored {var!r} to level {args.level} "
            f"({state.mesh.num_vertices} vertices) -> {out}"
        )
    print(f"simulated I/O {io_ms:.3f} ms ({len(variables)} variable(s))")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import CanopusService, TenantRegistry

    hierarchy = _hierarchy(args.root, backend=args.backend)
    if args.tenants:
        registry = TenantRegistry.from_file(args.tenants)
    else:
        registry = TenantRegistry.open_access()
    service = CanopusService(
        hierarchy,
        tenants=registry,
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor_workers=args.executor_workers,
    )

    async def _serve() -> None:
        host, port = await service.start()
        names = ", ".join(t.name for t in registry.tenants())
        print(f"serving {args.root} on http://{host}:{port} (tenants: {names})")
        try:
            await service._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import trace_session

    hierarchy = _hierarchy(args.root, backend=args.backend)
    with trace_session(
        hierarchy, chrome_path=args.out, jsonl_path=args.jsonl
    ) as tracer:
        ds = BPDataset.open(args.dataset, hierarchy)
        decoder = CanopusDecoder(ds)
        var = args.var or decoder.variables()[0]
        from repro.core.progressive import ProgressiveReader

        reader = ProgressiveReader(
            decoder, var, pipeline=not args.no_pipeline
        )
        state = reader.state
        while state.level > args.level:
            state = reader.refine()
        ds.close()

    rows = [
        {
            "phase": cat,
            "spans": agg["spans"],
            "wall_ms": f"{agg['wall_seconds'] * 1e3:.3f}",
            "sim_io_ms": f"{agg['sim_charged'] * 1e3:.3f}",
        }
        for cat, agg in sorted(tracer.summary().items())
    ]
    print(format_table(rows, title=f"trace of {args.dataset!r}:{var!r}"))
    print(
        f"{len(tracer.spans)} spans, {len(tracer.io_records)} tier I/O "
        f"transfers; restored {var!r} to level {state.level}"
    )
    for name, value in sorted(tracer.metrics.snapshot().items()):
        print(f"  {name} = {value}")
    if args.out:
        print(f"chrome trace -> {args.out}")
    if args.jsonl:
        print(f"span jsonl -> {args.jsonl}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "encode": _cmd_encode,
    "info": _cmd_info,
    "fsck": _cmd_fsck,
    "restore": _cmd_restore,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
