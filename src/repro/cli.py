"""Command-line interface: generate, encode, inspect, restore.

A thin operational layer over the library, mirroring the utilities an
ADIOS install ships (``bpls``-style inspection, plus Canopus encode /
restore). All state lives under a ``--root`` directory holding the
two-tier storage hierarchy.

Examples
--------
::

    python -m repro.cli generate xgc1 --scale 0.3 --out plane.npz
    python -m repro.cli encode plane.npz --field dpot --dataset run \
        --root /tmp/store --levels 3 --tolerance 1e-4
    python -m repro.cli info run --root /tmp/store
    python -m repro.cli restore run --var dpot --level 0 \
        --root /tmp/store --out restored.npz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core import (
    CanopusDecoder,
    CanopusEncoder,
    LevelScheme,
    encode_partitioned,
)
from repro.errors import ReproError
from repro.harness.report import format_table
from repro.io import BPDataset
from repro.mesh.edge_collapse import KERNELS
from repro.mesh.io import load_mesh, save_mesh
from repro.simulations import dataset_names, make_dataset
from repro.storage import BACKEND_KINDS, two_tier_titan

__all__ = ["main", "build_parser"]


def _add_backend_arg(sub) -> None:
    sub.add_argument(
        "--backend", choices=BACKEND_KINDS, default="filesystem",
        help="object-store backend for each tier (use the same value "
        "for every command touching one --root; 'memory' does not "
        "persist across commands)",
    )
    sub.add_argument(
        "--shards", type=int, default=4,
        help="sub-stores per tier for --backend sharded (layout "
        "parameter: reuse the writing value when reopening a root)",
    )
    sub.add_argument(
        "--replicas", type=int, default=None,
        help="N-way mirroring of sharded/replicated leaves (default: "
        "no mirroring for sharded, 2 for replicated; reuse the writing "
        "value when reopening a root)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Canopus reproduction CLI (generate/encode/info/restore)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset to .npz")
    gen.add_argument("dataset", choices=dataset_names())
    gen.add_argument("--scale", type=float, default=0.3)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", required=True)

    enc = sub.add_parser("encode", help="Canopus-encode a mesh field")
    enc.add_argument("mesh", help=".npz produced by generate/save_mesh")
    enc.add_argument("--field", required=True, help="field name in the .npz")
    enc.add_argument("--dataset", required=True, help="output dataset name")
    enc.add_argument("--root", required=True, help="storage root directory")
    enc.add_argument("--levels", type=int, default=3)
    enc.add_argument("--codec", default="zfp")
    enc.add_argument("--tolerance", type=float, default=1e-4)
    enc.add_argument("--chunks", type=int, default=1)
    enc.add_argument(
        "--method", choices=KERNELS, default="serial",
        help="decimation kernel (serial heap loop or batched rounds)",
    )
    enc.add_argument(
        "--workers", type=int, default=None,
        help="thread count for delta + compress overlap (default: serial)",
    )
    enc.add_argument(
        "--processes", type=int, default=None,
        help="scale the encode across N worker processes (shared-memory "
        "scheduler; writes a partitioned dataset, one patch per plane)",
    )
    enc.add_argument(
        "--window", type=int, default=4,
        help="max raw fields in flight through shared memory "
        "(with --processes; bounds resident memory)",
    )
    enc.add_argument(
        "--parts", type=int, default=None,
        help="mesh patches for --processes (default: one per process)",
    )
    enc.add_argument(
        "--fast-capacity", type=int, default=64 << 20,
        help="fast-tier capacity in bytes",
    )
    enc.add_argument(
        "--placement", choices=("walk", "cost"), default="walk",
        help="product placement: fastest-first capacity walk (paper "
        "default) or close-time cost-based plan",
    )
    _add_backend_arg(enc)

    info = sub.add_parser("info", help="list a dataset's products (bpls-like)")
    info.add_argument("dataset")
    info.add_argument("--root", required=True)
    _add_backend_arg(info)

    fsck = sub.add_parser(
        "fsck",
        help="verify a dataset's integrity (catalog products + per-tier "
        "backend inventory), optionally repairing backend damage",
    )
    fsck.add_argument("dataset")
    fsck.add_argument("--root", required=True)
    fsck.add_argument(
        "--repair", action="store_true",
        help="self-heal before checking: re-replicate from surviving "
        "mirrors, roll interrupted-put journals forward or collect "
        "them, rebuild manifests, garbage-collect orphaned chunks "
        "(unrecoverable damage is still reported BAD)",
    )
    _add_backend_arg(fsck)

    res = sub.add_parser("restore", help="restore variable(s) to a level")
    res.add_argument(
        "dataset",
    )
    res.add_argument(
        "--var", required=True,
        help="variable name, or comma-separated list for a concurrent "
        "multi-variable restore",
    )
    res.add_argument("--level", type=int, default=0)
    res.add_argument("--root", required=True)
    res.add_argument(
        "--out", required=True,
        help="output .npz (mesh + field); with several --var names, "
        "a '{var}' placeholder is substituted (default: var suffix "
        "before the extension)",
    )
    res.add_argument(
        "--workers", type=int, default=None,
        help="decode thread-pool width (default: the retrieval "
        "engine's worker count)",
    )
    _add_backend_arg(res)

    qry = sub.add_parser(
        "query",
        help="accuracy-aware queries over a dataset (plan/stats/blobs)",
    )
    qry.add_argument("dataset")
    qry.add_argument("--root", required=True)
    qry.add_argument("--var", required=True)
    qry.add_argument(
        "--mode", choices=("plan", "stats", "blobs"), default="stats",
        help="plan: explain a restore without executing it; stats: "
        "pushdown min/max/mean/rms from per-chunk summaries; blobs: "
        "summary-pruned blob detection",
    )
    qry.add_argument(
        "--region", default=None,
        help="spatial window 'x0,y0:x1,y1' (all modes)",
    )
    qry.add_argument(
        "--tolerance", type=float, default=None,
        help="RMS tolerance for --mode plan",
    )
    qry.add_argument(
        "--level", type=int, default=None,
        help="explicit level for --mode plan",
    )
    qry.add_argument(
        "--min-significance", type=float, default=0.0,
        help="bounded-lossy chunk pruning threshold for --mode plan",
    )
    qry.add_argument(
        "--threshold", type=float, default=None,
        help="field-value threshold (required for --mode blobs)",
    )
    qry.add_argument(
        "--shape", default="128,128",
        help="raster grid 'ny,nx' for --mode blobs",
    )
    _add_backend_arg(qry)

    srv = sub.add_parser(
        "serve",
        help="serve the read tier over HTTP (asyncio, multi-tenant)",
    )
    srv.add_argument("--root", required=True, help="storage root directory")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8686,
        help="listen port (0 picks a free one)",
    )
    srv.add_argument(
        "--workers", type=int, default=4,
        help="decode fan-out width per restore",
    )
    srv.add_argument(
        "--executor-workers", type=int, default=8,
        help="bounded executor size for blocking decode work",
    )
    srv.add_argument(
        "--tenants", default=None,
        help="JSON file: [{\"name\":..., \"token\":..., "
        "\"max_requests\":..., \"max_bytes\":..., \"max_inflight\":..., "
        "\"window_seconds\":...}, ...]; omitted = open access (dev only)",
    )
    srv.add_argument(
        "--tracing", action="store_true",
        help="enable request tracing (traceparent, /v1/trace* endpoints)",
    )
    srv.add_argument(
        "--trace-capacity", type=int, default=256,
        help="trace ring-buffer size (kept requests)",
    )
    srv.add_argument(
        "--trace-sample-rate", type=float, default=0.1,
        help="head-sampling rate; errors and the slow tail are always kept",
    )
    srv.add_argument(
        "--trace-slow-seconds", type=float, default=1.0,
        help="requests at/above this wall time are always kept",
    )
    srv.add_argument(
        "--access-log", default=None,
        help="write one JSONL access-log line per request to this file",
    )
    srv.add_argument(
        "--slo-target-seconds", type=float, default=0.5,
        help="per-route latency SLO target (seconds)",
    )
    _add_backend_arg(srv)

    tr = sub.add_parser(
        "trace",
        help="progressively read a variable under the dual-clock tracer",
    )
    tr.add_argument("dataset")
    tr.add_argument("--var", default=None, help="variable (default: first)")
    tr.add_argument("--level", type=int, default=0, help="stop at this level")
    tr.add_argument("--root", required=True)
    tr.add_argument(
        "--out", default=None,
        help="write a Chrome trace-event JSON (load in Perfetto / "
        "chrome://tracing)",
    )
    tr.add_argument(
        "--jsonl", default=None, help="write spans as JSON lines"
    )
    tr.add_argument(
        "--no-pipeline", action="store_true",
        help="disable I/O/compute overlap in the progressive read",
    )
    _add_backend_arg(tr)

    obs = sub.add_parser(
        "obs", help="observability utilities over a running service"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    rep = obs_sub.add_parser(
        "report",
        help="render the top-N slowest traces + SLO status from a live "
        "server (--url) or an access-log JSONL file (--jsonl)",
    )
    rep.add_argument(
        "--url", default=None,
        help="live service base URL, e.g. http://127.0.0.1:8686",
    )
    rep.add_argument(
        "--token", default="", help="bearer token for --url requests"
    )
    rep.add_argument(
        "--jsonl", default=None,
        help="access-log JSONL file written by 'serve --access-log'",
    )
    rep.add_argument(
        "--top", type=int, default=10, help="how many slow requests to show"
    )
    rep.add_argument(
        "--slo-target", type=float, default=0.5,
        help="SLO target seconds when computing offline from --jsonl",
    )
    rep.add_argument(
        "--slo-objective", type=float, default=0.95,
        help="SLO objective fraction for offline burn-rate computation",
    )
    return parser


def _hierarchy(
    root: str,
    fast_capacity: int = 64 << 20,
    backend: str = "filesystem",
    *,
    shards: int = 4,
    replicas: int | None = None,
):
    return two_tier_titan(
        Path(root), fast_capacity=fast_capacity, slow_capacity=1 << 40,
        backend=backend, shards=shards, replicas=replicas,
    )


def _args_hierarchy(args, fast_capacity: int = 64 << 20):
    return _hierarchy(
        args.root, fast_capacity, args.backend,
        shards=args.shards, replicas=args.replicas,
    )


def _cmd_generate(args) -> int:
    params = {"scale": args.scale}
    if args.seed is not None:
        params["seed"] = args.seed
    ds = make_dataset(args.dataset, **params)
    save_mesh(args.out, ds.mesh, {ds.variable: ds.field})
    print(
        f"wrote {args.out}: {ds.mesh.num_vertices} vertices, "
        f"{ds.mesh.num_triangles} triangles, field {ds.variable!r}"
    )
    return 0


def _cmd_encode(args) -> int:
    mesh, fields = load_mesh(args.mesh)
    if args.field not in fields:
        raise ReproError(
            f"{args.mesh} has no field {args.field!r}; found {sorted(fields)}"
        )
    hierarchy = _args_hierarchy(args, args.fast_capacity)
    params = {"tolerance": args.tolerance}
    if args.codec == "zfp":
        params["mode"] = "relative"
    if args.processes and args.processes > 1:
        report, _ = encode_partitioned(
            hierarchy, args.dataset, args.field, mesh, fields[args.field],
            LevelScheme(args.levels),
            parts=args.parts or args.processes,
            processes=args.processes, window=args.window,
            codec=args.codec, codec_params=params, method=args.method,
        )
        rows = [
            {"part": i, "encode_seconds": round(s, 4)}
            for i, s in enumerate(report.per_part_seconds)
        ]
        print(
            format_table(
                rows,
                title=(
                    f"encoded {args.dataset!r} ({report.parts} patches on "
                    f"{args.processes} processes, window {args.window})"
                ),
            )
        )
        print(
            f"products {report.compressed_bytes} B incl. per-part geometry "
            f"(original field {report.original_bytes} B)"
        )
        return 0
    encoder = CanopusEncoder(
        hierarchy, codec=args.codec, codec_params=params, chunks=args.chunks,
        method=args.method, workers=args.workers, placement=args.placement,
    )
    report, _ = encoder.encode(
        args.dataset, args.field, mesh, fields[args.field],
        LevelScheme(args.levels),
    )
    rows = [
        {
            "key": key,
            "bytes": report.compressed_bytes[key],
            "tier": report.placed_tiers[key],
        }
        for key in sorted(report.compressed_bytes)
    ]
    print(format_table(rows, title=f"encoded {args.dataset!r}"))
    print(
        f"payloads {report.payload_bytes} B (original "
        f"{report.original_bytes} B, {report.original_bytes / max(1, report.payload_bytes):.1f}x)"
    )
    return 0


def _cmd_info(args) -> int:
    hierarchy = _args_hierarchy(args)
    ds = BPDataset.open(args.dataset, hierarchy)
    rows = [
        {
            "key": rec.key,
            "kind": rec.kind,
            "level": rec.level,
            "bytes": rec.length,
            "codec": rec.codec or "-",
            "tier": rec.tier,
        }
        for rec in (ds.inq(k) for k in ds.keys())
    ]
    print(format_table(rows, title=f"dataset {args.dataset!r}"))
    variables = ds.catalog.attrs.get("variables", {})
    for var, meta in sorted(variables.items()):
        print(
            f"variable {var!r}: {meta['num_levels']} levels, "
            f"codec {meta['codec']}, counts {meta['counts']}"
        )
    return 0


def _cmd_fsck(args) -> int:
    from repro.io.fsck import check_dataset, repair_backends

    hierarchy = _args_hierarchy(args)
    repairs = []
    if args.repair:
        # Repair below the catalog first: a damaged catalog manifest
        # would otherwise prevent even opening the dataset.
        repairs = repair_backends(hierarchy)
    result = check_dataset(BPDataset.open(args.dataset, hierarchy))
    result.repairs = repairs
    print(result.report())
    return 0 if result.healthy else 2


def _out_path(template: str, var: str, multi: bool) -> str:
    if "{var}" in template:
        return template.replace("{var}", var)
    if not multi:
        return template
    stem, dot, ext = template.rpartition(".")
    if not dot:
        return f"{template}.{var}"
    return f"{stem}.{var}.{ext}"


def _cmd_restore(args) -> int:
    from repro.core.decode_engine import DecodeEngine

    hierarchy = _args_hierarchy(args)
    dataset = BPDataset.open(args.dataset, hierarchy)
    variables = [v for v in args.var.split(",") if v]
    io_before = hierarchy.clock.elapsed
    if len(variables) == 1 and args.workers is None:
        results = {
            variables[0]: CanopusDecoder(dataset).restore_to(
                variables[0], args.level
            )
        }
    else:
        engine = DecodeEngine(dataset, workers=args.workers)
        results = engine.restore_many(variables, args.level)
    # The engine charges the overlapped prefetch batch up front, outside
    # any one variable's PhaseTimings — report the aggregate clock delta.
    io_ms = (hierarchy.clock.elapsed - io_before) * 1e3
    for var, state in results.items():
        field = state.plane(0) if state.field.ndim == 2 else state.field
        out = _out_path(args.out, var, multi=len(variables) > 1)
        save_mesh(out, state.mesh, {var: np.asarray(field)})
        print(
            f"restored {var!r} to level {args.level} "
            f"({state.mesh.num_vertices} vertices) -> {out}"
        )
    print(f"simulated I/O {io_ms:.3f} ms ({len(variables)} variable(s))")
    return 0


def _parse_cli_region(raw: str | None):
    if not raw:
        return None
    lo_s, sep, hi_s = raw.partition(":")
    if not sep:
        raise ReproError("--region must be 'x0,y0:x1,y1'")
    try:
        lo = np.array([float(v) for v in lo_s.split(",")])
        hi = np.array([float(v) for v in hi_s.split(",")])
    except ValueError:
        raise ReproError("--region coordinates must be numbers")
    return lo, hi


def _cmd_query(args) -> int:
    import json

    from repro.session import Session

    hierarchy = _args_hierarchy(args)
    region = _parse_cli_region(args.region)
    with Session(hierarchy) as session:
        campaign = session.open(args.dataset)
        if args.mode == "plan":
            plan = campaign.plan(
                args.var,
                level=args.level,
                tolerance=args.tolerance,
                region=region,
                min_significance=args.min_significance,
            )
            print(plan.explain())
        elif args.mode == "stats":
            result = campaign.query_stats(args.var, region=region)
            print(json.dumps(result, indent=2))
        else:
            if args.threshold is None:
                raise ReproError("query --mode blobs needs --threshold")
            try:
                shape = tuple(int(v) for v in args.shape.split(","))
            except ValueError:
                raise ReproError("--shape must be 'ny,nx' integers")
            if len(shape) != 2:
                raise ReproError("--shape must be 'ny,nx' integers")
            result = campaign.query_blobs(
                args.var,
                threshold=args.threshold,
                region=region,
                shape=shape,
            )
            print(json.dumps(result, indent=2))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.obs.logs import JsonlLogger
    from repro.service import CanopusService, TenantRegistry

    hierarchy = _args_hierarchy(args)
    if args.tenants:
        registry = TenantRegistry.from_file(args.tenants)
    else:
        registry = TenantRegistry.open_access()
    service = CanopusService(
        hierarchy,
        tenants=registry,
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor_workers=args.executor_workers,
        tracing=args.tracing,
        trace_capacity=args.trace_capacity,
        trace_sample_rate=args.trace_sample_rate,
        trace_slow_seconds=args.trace_slow_seconds,
        slo_target_seconds=args.slo_target_seconds,
        access_log=(
            JsonlLogger(args.access_log) if args.access_log else None
        ),
    )

    async def _serve() -> None:
        host, port = await service.start()
        names = ", ".join(t.name for t in registry.tenants())
        print(f"serving {args.root} on http://{host}:{port} (tenants: {names})")
        try:
            await service._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import trace_session

    hierarchy = _args_hierarchy(args)
    with trace_session(
        hierarchy, chrome_path=args.out, jsonl_path=args.jsonl
    ) as tracer:
        ds = BPDataset.open(args.dataset, hierarchy)
        decoder = CanopusDecoder(ds)
        var = args.var or decoder.variables()[0]
        from repro.core.progressive import ProgressiveReader

        reader = ProgressiveReader(
            decoder, var, pipeline=not args.no_pipeline
        )
        state = reader.state
        while state.level > args.level:
            state = reader.refine()
        ds.close()

    rows = [
        {
            "phase": cat,
            "spans": agg["spans"],
            "wall_ms": f"{agg['wall_seconds'] * 1e3:.3f}",
            "sim_io_ms": f"{agg['sim_charged'] * 1e3:.3f}",
        }
        for cat, agg in sorted(tracer.summary().items())
    ]
    print(format_table(rows, title=f"trace of {args.dataset!r}:{var!r}"))
    print(
        f"{len(tracer.spans)} spans, {len(tracer.io_records)} tier I/O "
        f"transfers; restored {var!r} to level {state.level}"
    )
    for name, value in sorted(tracer.metrics.snapshot().items()):
        print(f"  {name} = {value}")
    if args.out:
        print(f"chrome trace -> {args.out}")
    if args.jsonl:
        print(f"span jsonl -> {args.jsonl}")
    return 0


def _trace_rows(summaries: list[dict], top: int) -> list[dict]:
    """Table rows for the slowest ``top`` request summaries."""
    ranked = sorted(
        summaries, key=lambda t: t.get("wall_seconds", 0.0), reverse=True
    )
    return [
        {
            "trace_id": t.get("trace_id", "")[:16],
            "route": t.get("route", ""),
            "tenant": t.get("tenant", "") or "-",
            "status": t.get("status", 0),
            "wall_ms": f"{t.get('wall_seconds', 0.0) * 1e3:.2f}",
            "sim_read_ms": f"{t.get('sim_read_seconds', 0.0) * 1e3:.3f}",
            "kept": t.get("kept", "-"),
        }
        for t in ranked[: max(0, top)]
    ]


def _report_from_server(args) -> int:
    import asyncio
    from urllib.parse import urlsplit

    from repro.service.client import ServiceClient

    split = urlsplit(args.url if "//" in args.url else f"//{args.url}")
    if not split.hostname or not split.port:
        raise ReproError(
            f"--url must include host and port, got {args.url!r}"
        )

    async def _fetch():
        client = ServiceClient(
            split.hostname, split.port, token=args.token or ""
        )
        try:
            traces = await client.traces(limit=max(args.top * 5, 100))
            metrics = await client.metrics()
        finally:
            await client.close()
        return traces, metrics

    traces, metrics = asyncio.run(_fetch())
    if not traces.get("tracing"):
        print("tracing is disabled on this server (serve --tracing)")
    else:
        rows = _trace_rows(traces.get("traces", []), args.top)
        if rows:
            print(format_table(rows, title=f"slowest requests ({args.url})"))
        stats = traces.get("stats", {})
        print(
            f"trace buffer: {stats.get('kept', 0)} kept / "
            f"{stats.get('finished', 0)} finished "
            f"({stats.get('dropped', 0)} dropped by sampling)"
        )
    slo_rows = [
        {
            "route": route,
            "target_s": s.get("target_seconds", 0.0),
            "window": s.get("window_requests", 0),
            "compliance": f"{s.get('compliance', 1.0):.4f}",
            "burn_rate": f"{s.get('burn_rate', 0.0):.2f}",
            "healthy": s.get("healthy", True),
        }
        for route, s in sorted(metrics.get("slo", {}).items())
    ]
    if slo_rows:
        print(format_table(slo_rows, title="SLO status (rolling window)"))
    return 0


def _report_from_jsonl(args) -> int:
    import json

    requests: list[dict] = []
    with open(args.jsonl, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if rec.get("event") == "service.request":
                requests.append(rec)
    if not requests:
        print(f"no service.request records in {args.jsonl}")
        return 0
    rows = _trace_rows(requests, args.top)
    print(format_table(rows, title=f"slowest requests ({args.jsonl})"))
    # Offline SLO: recompute per-route compliance from the logged walls.
    per_route: dict[str, list[dict]] = {}
    for rec in requests:
        per_route.setdefault(rec.get("route", "other"), []).append(rec)
    slo_rows = []
    for route, recs in sorted(per_route.items()):
        good = sum(
            1
            for r in recs
            if r.get("status", 0) < 500
            and r.get("error") is None
            and r.get("wall_seconds", 0.0) <= args.slo_target
        )
        compliance = good / len(recs)
        burn = (1.0 - compliance) / max(1e-9, 1.0 - args.slo_objective)
        slo_rows.append(
            {
                "route": route,
                "requests": len(recs),
                "target_s": args.slo_target,
                "compliance": f"{compliance:.4f}",
                "burn_rate": f"{burn:.2f}",
                "healthy": compliance >= args.slo_objective,
            }
        )
    print(
        format_table(
            slo_rows,
            title=(
                f"SLO status (offline, target {args.slo_target}s, "
                f"objective {args.slo_objective:.0%})"
            ),
        )
    )
    return 0


def _cmd_obs(args) -> int:
    if args.obs_command != "report":  # pragma: no cover - argparse guards
        raise ReproError(f"unknown obs command {args.obs_command!r}")
    if bool(args.url) == bool(args.jsonl):
        raise ReproError("obs report needs exactly one of --url or --jsonl")
    if args.url:
        return _report_from_server(args)
    return _report_from_jsonl(args)


_COMMANDS = {
    "generate": _cmd_generate,
    "encode": _cmd_encode,
    "info": _cmd_info,
    "fsck": _cmd_fsck,
    "restore": _cmd_restore,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
