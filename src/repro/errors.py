"""Exception hierarchy for the Canopus reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller embedding the library can catch a single base class. Subsystem
errors mirror the package layout: mesh, compression, I/O container,
storage hierarchy, the Canopus encode/decode core, and the read-tier
service.

Every class carries a stable machine-readable ``code`` string (also
surfaced as ``exc.code`` on instances). Codes — not Python class names —
are the contract the service layer exposes: :data:`HTTP_STATUS` maps
each code to exactly one HTTP status, so ``repro.service`` translates
library failures 1:1 into wire responses (400/404/409/429/503, with 401
for auth and 500 for internal faults) and clients can branch on
``body["code"]`` without importing this module.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MeshError",
    "DecimationError",
    "PointLocationError",
    "CompressionError",
    "UnknownCodecError",
    "BitstreamError",
    "BPFormatError",
    "VariableNotFoundError",
    "TransportError",
    "ConfigError",
    "StorageError",
    "CapacityError",
    "TransientFaultError",
    "CanopusError",
    "RefactoringError",
    "RestorationError",
    "QueryError",
    "AnalyticsError",
    "ServiceError",
    "AuthError",
    "QuotaError",
    "ConflictError",
    "HTTP_STATUS",
    "error_code",
    "http_status",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    #: Stable machine-readable error code (see :data:`HTTP_STATUS`).
    code = "internal"


class MeshError(ReproError):
    """Invalid mesh topology or geometry."""

    code = "mesh"


class DecimationError(MeshError):
    """Edge-collapse decimation could not reach the requested ratio."""

    code = "decimation"


class PointLocationError(MeshError):
    """A query point could not be located in any triangle."""

    code = "point-location"


class CompressionError(ReproError):
    """A compressor failed to encode or decode a payload."""

    code = "codec"


class UnknownCodecError(CompressionError):
    """Codec name not present in the compressor registry."""

    code = "unknown-codec"


class BitstreamError(CompressionError):
    """Bit-level stream underflow/overflow or corrupt header."""

    code = "bitstream"


class BPFormatError(ReproError):
    """Corrupt or unsupported BP container content."""

    code = "bad-format"


class VariableNotFoundError(BPFormatError):
    """Requested variable (or level) absent from the container index."""

    code = "not-found"


class TransportError(ReproError):
    """An I/O transport failed or was misconfigured."""

    code = "transport"


class ConfigError(ReproError):
    """Invalid XML/ dict configuration."""

    code = "bad-config"


class StorageError(ReproError):
    """Storage-hierarchy misuse (capacity, unknown tier, eviction)."""

    code = "storage"


class CapacityError(StorageError):
    """No tier had sufficient capacity for a placement."""

    code = "capacity"


class TransientFaultError(StorageError):
    """A retriable fault (network blip, throttle) on a remote backend.

    Raised by fault injectors and remote stores to signal "try again";
    ``RemoteBackend`` retries with backoff and only surfaces a plain
    :class:`StorageError` once its retry budget is exhausted.
    """

    code = "transient"


class CanopusError(ReproError):
    """Canopus encode/decode pipeline failure."""

    code = "canopus"


class RefactoringError(CanopusError):
    """Data refactoring (decimation/delta) failure."""

    code = "refactoring"


class RestorationError(CanopusError):
    """Progressive restoration failure (missing delta, level mismatch)."""

    code = "bad-request"


class QueryError(RestorationError, ValueError):
    """Malformed query shape (non-positive tolerance, empty region).

    Doubly derived: callers that validate arguments catch ``ValueError``
    as usual, while the service maps the inherited ``bad-request`` code
    to a 400 like every other client-fault restoration error.
    """


class AnalyticsError(ReproError):
    """Analytics-side failure (rasterization, blob detection)."""

    code = "analytics"


# -- service-facing errors (repro.service) ------------------------------


class ServiceError(ReproError):
    """Read-tier service failure (routing, payload, lifecycle)."""

    code = "service"


class AuthError(ServiceError):
    """Missing or invalid tenant credential."""

    code = "unauthorized"


class QuotaError(ServiceError):
    """A tenant exceeded its request/byte/concurrency quota."""

    code = "quota-exceeded"

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Seconds after which the client may retry (429 Retry-After).
        self.retry_after = retry_after


class ConflictError(ServiceError):
    """Client state no longer matches server state (stale cursor)."""

    code = "conflict"


#: One HTTP status per error code — the 1:1 wire contract.
HTTP_STATUS: dict[str, int] = {
    # 4xx — the request (or the client's quota/state) is at fault
    "bad-request": 400,
    "bad-format": 400,
    "bad-config": 400,
    "unknown-codec": 400,
    "unauthorized": 401,
    "not-found": 404,
    "conflict": 409,
    "quota-exceeded": 429,
    # 5xx — the store or service is at fault
    "storage": 503,
    "capacity": 503,
    "transient": 503,
    "transport": 503,
    "internal": 500,
    "mesh": 500,
    "decimation": 500,
    "point-location": 500,
    "codec": 500,
    "bitstream": 500,
    "canopus": 500,
    "refactoring": 500,
    "analytics": 500,
    "service": 503,
}


def error_code(exc: BaseException) -> str:
    """Stable code for any exception (non-repro errors are internal)."""
    return getattr(exc, "code", None) or "internal"


def http_status(exc: BaseException) -> int:
    """The single HTTP status an error translates to on the wire."""
    return HTTP_STATUS.get(error_code(exc), 500)
