"""Exception hierarchy for the Canopus reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller embedding the library can catch a single base class. Subsystem
errors mirror the package layout: mesh, compression, I/O container,
storage hierarchy, and the Canopus encode/decode core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class MeshError(ReproError):
    """Invalid mesh topology or geometry."""


class DecimationError(MeshError):
    """Edge-collapse decimation could not reach the requested ratio."""


class PointLocationError(MeshError):
    """A query point could not be located in any triangle."""


class CompressionError(ReproError):
    """A compressor failed to encode or decode a payload."""


class UnknownCodecError(CompressionError):
    """Codec name not present in the compressor registry."""


class BitstreamError(CompressionError):
    """Bit-level stream underflow/overflow or corrupt header."""


class BPFormatError(ReproError):
    """Corrupt or unsupported BP container content."""


class VariableNotFoundError(BPFormatError):
    """Requested variable (or level) absent from the container index."""


class TransportError(ReproError):
    """An I/O transport failed or was misconfigured."""


class ConfigError(ReproError):
    """Invalid XML/ dict configuration."""


class StorageError(ReproError):
    """Storage-hierarchy misuse (capacity, unknown tier, eviction)."""


class CapacityError(StorageError):
    """No tier had sufficient capacity for a placement."""


class CanopusError(ReproError):
    """Canopus encode/decode pipeline failure."""


class RefactoringError(CanopusError):
    """Data refactoring (decimation/delta) failure."""


class RestorationError(CanopusError):
    """Progressive restoration failure (missing delta, level mismatch)."""


class AnalyticsError(ReproError):
    """Analytics-side failure (rasterization, blob detection)."""
