"""Partitioned (embarrassingly parallel) Canopus encoding.

Production XGC1 runs refactor per rank: every process decimates its own
mesh patch with no communication (paper §III-C1). This module mirrors
that structure on one node:

* :func:`encode_partitioned` splits the mesh into spatial patches,
  refactors + compresses each independently — optionally on a process
  pool — and writes each patch's products under ``{var}/part{i}/...``
  through one shared dataset (the I/O stage is serialized, like an
  aggregating transport);
* :class:`PartitionedDecoder` restores any level per patch and gathers
  full-accuracy fields back to the global vertex order exactly.

Patch-local decimation means coarse patches do not stitch into one
conforming global coarse mesh (cracks at patch seams) — the same
property a per-rank production run has; analytics at reduced accuracy
rasterize the patch union.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.compress import decode_auto
from repro.core.encode_scheduler import EncodeScheduler, SchedPlane
from repro.core.mapping import LevelMapping
from repro.core.notation import LevelScheme
from repro.errors import CanopusError, RestorationError
from repro.io.dataset import BPDataset
from repro.mesh.io import mesh_from_bytes
from repro.mesh.partition import MeshPartition, gather_field, partition_mesh
from repro.mesh.triangle_mesh import TriangleMesh
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["encode_partitioned", "PartitionedDecoder", "PartitionedReport"]


def _part_prefix(var: str, part: int) -> str:
    return f"{var}/part{part}"


@dataclass
class PartitionedReport:
    """Measurements of one partitioned encode."""

    var: str
    parts: int
    refactor_seconds: float  # wall time of the (possibly parallel) stage
    write_seconds: float
    compressed_bytes: int
    original_bytes: int
    per_part_seconds: list[float] = field(default_factory=list)


class _PartitionSink:
    """Accumulates scheduler output per patch for the one-shot writer."""

    def __init__(self) -> None:
        self.geoms: dict[int, dict] = {}
        self.prods: dict[int, dict] = {}
        self.stats: dict[int, dict] = {}

    def geometry(self, plane_id: int, geom: dict) -> None:
        self.geoms[plane_id] = geom

    def products(
        self, plane_id: int, step: int, products: dict, stats: dict
    ) -> None:
        self.prods[plane_id] = products
        self.stats[plane_id] = stats


def encode_partitioned(
    hierarchy: StorageHierarchy,
    dataset_name: str,
    var: str,
    mesh: TriangleMesh,
    data: np.ndarray,
    scheme: LevelScheme,
    *,
    parts: int = 4,
    processes: int | None = None,
    window: int = 4,
    start_method: str | None = None,
    codec: str = "zfp",
    codec_params: dict | None = None,
    estimator: str = "mean",
    priority: str = "length",
    method: str = "serial",
) -> tuple[PartitionedReport, list[MeshPartition]]:
    """Partition, refactor each patch (optionally in parallel), write.

    Patches run through the shared-memory
    :class:`~repro.core.encode_scheduler.EncodeScheduler`: one plane per
    patch, patch fields shipped worker-bound through windowed
    shared-memory slots (never pickled), and each worker decimating
    only its own patches — a stand-in for one MPI rank, exchanging zero
    data with its peers. ``processes=None`` runs patches sequentially
    in-process, where the shared plan cache makes repeated encodes of
    the same partitions replay instead of re-decimating; forked workers
    inherit that same warm cache.

    ``priority`` values that are not plan-eligible (``"data_aware"``,
    callables) decimate from geometry alone on this path — patch fields
    stream through shared memory after plane setup, so they cannot
    steer the collapse order.
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    if data.shape[-1] != mesh.num_vertices:
        raise CanopusError(
            f"data shape {data.shape} does not match mesh "
            f"({mesh.num_vertices} vertices)"
        )
    codec_params = dict(codec_params or {})
    if codec_params.get("mode") == "relative":
        # Resolve against the *global* range once, so every patch (and
        # every worker) instantiates the identical absolute codec.
        codec_params["tolerance"] = codec_params.get("tolerance", 1e-6) * max(
            float(np.ptp(data)), 1e-300
        )
        codec_params["mode"] = "absolute"

    partitions = partition_mesh(mesh, parts)
    scheduler = EncodeScheduler(
        processes=processes, window=window, start_method=start_method,
        codec=codec, codec_params=codec_params, estimator=estimator,
        priority=priority, method=method,
    )
    planes = [
        SchedPlane(plane_id=p.index, mesh=p.mesh, scheme=scheme)
        for p in partitions
    ]
    sink = _PartitionSink()

    t0 = time.perf_counter()
    scheduler.run(
        planes,
        ((p.index, 0, p.restrict(data)) for p in partitions),
        sink,
    )
    refactor_seconds = time.perf_counter() - t0

    ds = BPDataset.create(dataset_name, hierarchy)
    ds.catalog.attrs["partitioned"] = {
        "var": var,
        "parts": len(partitions),
        "num_levels": scheme.num_levels,
        "step_ratio": scheme.step_ratio,
        "num_global_vertices": mesh.num_vertices,
        "counts": {
            str(i): list(sink.geoms[i]["counts"])
            for i in sorted(sink.geoms)
        },
        "global_vertices": {
            str(p.index): p.global_vertices.tolist() for p in partitions
        },
        "owned": {str(p.index): p.owned.tolist() for p in partitions},
    }
    compressed = 0
    clock = hierarchy.clock
    before = clock.elapsed
    base_level = scheme.base_level
    for index in sorted(sink.prods):
        geom = sink.geoms[index]
        summaries = sink.stats[index].get("summaries") or {}
        products = {f"L{base_level}": sink.prods[index]["base"]}
        summary_for = {f"L{base_level}": summaries.get("base")}
        for lvl, blob in enumerate(geom["mesh_blobs"]):
            products[f"mesh{lvl}"] = blob
        for lvl in scheme.delta_levels():
            products[f"delta{lvl}-{lvl + 1}"] = sink.prods[index][
                f"delta{lvl}"
            ]
            summary_for[f"delta{lvl}-{lvl + 1}"] = summaries.get(
                f"delta{lvl}"
            )
            products[f"mapping{lvl}"] = geom["mapping_blobs"][lvl]
        for suffix, blob in sorted(products.items()):
            kind = (
                "base" if suffix == f"L{base_level}"
                else "delta" if suffix.startswith("delta")
                else "mapping" if suffix.startswith("mapping")
                else "mesh"
            )
            # Base-level products prefer the fast tier; the rest descend.
            tier = 0 if suffix.endswith(str(base_level)) else min(
                1, len(hierarchy) - 1
            )
            rec = ds.write(
                f"{_part_prefix(var, index)}/{suffix}", blob,
                kind=kind, codec=codec if kind in ("base", "delta") else "",
                preferred_tier=tier,
            )
            if summary_for.get(suffix) is not None:
                rec.attrs["stats"] = summary_for[suffix]
            compressed += len(blob)
    ds.close()
    write_seconds = clock.elapsed - before

    report = PartitionedReport(
        var=var,
        parts=len(partitions),
        refactor_seconds=refactor_seconds,
        write_seconds=write_seconds,
        compressed_bytes=compressed,
        original_bytes=int(data.nbytes),
        per_part_seconds=[
            sink.stats[i]["wall_seconds"] for i in sorted(sink.stats)
        ],
    )
    return report, partitions


class PartitionedDecoder:
    """Read side of a partitioned dataset."""

    def __init__(self, hierarchy: StorageHierarchy, dataset_name: str) -> None:
        self.dataset = BPDataset.open(dataset_name, hierarchy)
        meta = self.dataset.catalog.attrs.get("partitioned")
        if not meta:
            raise RestorationError(
                f"{dataset_name!r} is not a partitioned dataset"
            )
        self.var: str = meta["var"]
        self.parts: int = int(meta["parts"])
        self.scheme = LevelScheme(
            int(meta["num_levels"]), float(meta["step_ratio"])
        )
        self.num_global = int(meta["num_global_vertices"])
        self._global_vertices = {
            int(k): np.asarray(v, dtype=np.int64)
            for k, v in meta["global_vertices"].items()
        }
        self._owned = {
            int(k): np.asarray(v, dtype=bool) for k, v in meta["owned"].items()
        }

    def _partition_keys(self, part: int, level: int) -> list[str]:
        """Every catalog key one patch's restore chain will touch."""
        prefix = _part_prefix(self.var, part)
        base_level = self.scheme.base_level
        keys = [f"{prefix}/L{base_level}"]
        for lvl in range(base_level - 1, level - 1, -1):
            keys.append(f"{prefix}/mapping{lvl}")
            keys.append(f"{prefix}/delta{lvl}-{lvl + 1}")
        keys.append(f"{prefix}/mesh{level}")
        return keys

    def restore_partition(
        self, part: int, level: int = 0
    ) -> tuple[TriangleMesh, np.ndarray]:
        """Restore one patch to the requested level.

        The patch's whole read chain is known upfront, so it is fetched
        as one overlapped batch through the retrieval engine before any
        decode starts.
        """
        self.scheme.validate_level(level)
        prefix = _part_prefix(self.var, part)
        base_level = self.scheme.base_level
        blobs = self.dataset.read_many(
            self._partition_keys(part, level), label=f"{prefix}:restore"
        )
        field_ = decode_auto(blobs[f"{prefix}/L{base_level}"])
        lvl = base_level
        while lvl > level:
            lvl -= 1
            mapping = LevelMapping.from_bytes(blobs[f"{prefix}/mapping{lvl}"])
            delta = decode_auto(blobs[f"{prefix}/delta{lvl}-{lvl + 1}"])
            field_ = delta + mapping.estimate(field_)
        mesh = mesh_from_bytes(blobs[f"{prefix}/mesh{level}"])
        return mesh, field_

    def restore_levels(
        self, level: int = 0
    ) -> list[tuple[TriangleMesh, np.ndarray]]:
        """Restore every patch to one level (the patch-union view)."""
        return [self.restore_partition(p, level) for p in range(self.parts)]

    def gather_full_accuracy(self, *, workers: int = 4) -> np.ndarray:
        """Reassemble the exact global field at level 0.

        Every patch's byte ranges are prefetched as one engine batch
        (one overlapped charge, issued deterministically before any
        decode), then patches are decoded concurrently on a thread pool
        — the read-side mirror of the per-rank parallel encode.
        """
        self.scheme.validate_level(0)
        all_keys: list[str] = []
        for p in range(self.parts):
            all_keys.extend(self._partition_keys(p, 0))
        self.dataset.prefetch(all_keys, label=f"{self.var}:gather")

        if workers > 1 and self.parts > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                restored = list(
                    pool.map(lambda p: self.restore_partition(p, 0),
                             range(self.parts))
                )
        else:
            restored = [self.restore_partition(p, 0) for p in range(self.parts)]

        locals_ = []
        partitions = []
        for p, (mesh, field_) in enumerate(restored):
            locals_.append(field_)
            partitions.append(
                MeshPartition(
                    index=p,
                    mesh=mesh,
                    global_vertices=self._global_vertices[p],
                    owned=self._owned[p],
                )
            )
        return gather_field(partitions, locals_, self.num_global)
