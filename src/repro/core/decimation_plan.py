"""Reusable decimation plans: decimate geometry once, replay per field.

Algorithm 1's collapse sequence depends only on the mesh (for the
paper's ``"length"`` priority), yet the seed write path re-ran the full
heap loop for every timestep and every variable. A
:class:`DecimationPlan` captures everything the write path needs from
one geometry pass:

* the level meshes ``G^0 .. G^{N−1}``;
* one :class:`~repro.mesh.lineage.CollapseLineage` per step, so
  coarsening any new field is a vectorized replay that is bit-identical
  to re-running the collapse sequence on that field;
* the fine→coarse :class:`~repro.core.mapping.LevelMapping` per step
  (paper §III-E2), needed for delta calculation.

Plans serialize to a single compressed-npz blob and are cached in a
process-wide :class:`PlanCache` keyed by (mesh content fingerprint,
level scheme, kernel, priority, placement, estimator) —
:func:`~repro.core.refactor.refactor`,
:class:`~repro.core.campaign.CampaignWriter` and
:func:`~repro.core.parallel.encode_partitioned` all consult it, so a
campaign decimates once and replays per timestep/variable.

Only geometry-determined priorities are plan-eligible: ``"data_aware"``
orders collapses by the field being written, and callables are opaque,
so both bypass the cache (see :func:`plan_eligible`).
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.delta import compute_delta
from repro.core.mapping import LevelMapping, build_mapping
from repro.core.notation import LevelScheme
from repro.errors import RefactoringError
from repro.mesh.edge_collapse import KERNELS, decimate
from repro.mesh.lineage import CollapseLineage
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace

__all__ = [
    "DecimationPlan",
    "PlanCache",
    "build_plan",
    "get_plan_cache",
    "mesh_fingerprint",
    "plan_eligible",
]

_FORMAT_VERSION = 1


def mesh_fingerprint(mesh: TriangleMesh) -> str:
    """Content hash of a mesh (vertex coordinates + connectivity)."""
    h = hashlib.blake2b(digest_size=16)
    v = np.ascontiguousarray(mesh.vertices, dtype=np.float64)
    t = np.ascontiguousarray(mesh.triangles, dtype=np.int64)
    h.update(np.int64(v.shape[0]).tobytes())
    h.update(np.int64(t.shape[0]).tobytes())
    h.update(v.tobytes())
    h.update(t.tobytes())
    return h.hexdigest()


def plan_eligible(priority) -> bool:
    """True when the collapse order is determined by geometry alone."""
    return priority == "length"


@dataclass
class DecimationPlan:
    """Replayable record of one full multi-level geometry refactoring.

    Attributes
    ----------
    scheme:
        The level progression the plan realizes.
    meshes:
        ``meshes[l]`` is ``G^l``; index 0 is the input mesh.
    lineages:
        ``lineages[l]`` replays the ``G^l → G^{l+1}`` collapse sequence
        on any per-vertex field of ``G^l``.
    mappings:
        ``mappings[l]`` lifts level ``l+1`` estimates back to ``l``.
    method / priority / placement / estimator:
        The kernel configuration the plan was built with.
    build_seconds:
        Wall time of the one-time geometry pass (decimation + mapping).
    """

    scheme: LevelScheme
    meshes: list[TriangleMesh]
    lineages: list[CollapseLineage]
    mappings: list[LevelMapping]
    method: str = "serial"
    priority: str = "length"
    placement: str = "midpoint"
    estimator: str = "mean"
    build_seconds: float = 0.0
    achieved_ratios: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return self.scheme.num_levels

    def coarsen(self, data: np.ndarray, *, arena=None) -> list[np.ndarray]:
        """All level fields ``[L^0 .. L^{N−1}]`` for a new fine field.

        Each step is a vectorized lineage replay — bit-identical to
        running the recorded collapse sequence on ``data``. Accepts
        ``(n,)`` or ``(planes, n)``. ``arena`` may supply a buffer pool
        (``take(shape)`` / ``give(buf)``, e.g.
        :class:`~repro.core.encode_scheduler.BufferArena`) for the
        replay's extended-id scratch, so streaming encoders coarsen many
        fields without per-call allocation; the level arrays themselves
        are always fresh.
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.shape[-1] != self.meshes[0].num_vertices:
            raise RefactoringError(
                f"data of shape {data.shape} does not match plan's "
                f"{self.meshes[0].num_vertices} fine vertices"
            )
        levels = [data]
        for lineage in self.lineages:
            prev = levels[-1]
            if arena is None:
                levels.append(lineage.replay(prev))
                continue
            scratch = arena.take(
                prev.shape[:-1] + (lineage.n_fine + lineage.num_merges,)
            )
            levels.append(lineage.replay(prev, scratch=scratch))
            arena.give(scratch)
        return levels

    def deltas_for(
        self, levels: list[np.ndarray], *, workers: int | None = None
    ) -> list[np.ndarray]:
        """Per-level deltas for already-coarsened level fields.

        With ``workers > 1`` the per-level delta computations run on a
        thread pool (NumPy releases the GIL in the gather/scatter
        kernels).
        """

        def one_delta(lvl: int) -> np.ndarray:
            return compute_delta(
                levels[lvl], levels[lvl + 1], self.mappings[lvl]
            )

        delta_levels = list(self.scheme.delta_levels())
        if workers and workers > 1 and len(delta_levels) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(workers, len(delta_levels))
            ) as pool:
                return list(pool.map(one_delta, delta_levels))
        return [one_delta(lvl) for lvl in delta_levels]

    def refactor_fields(
        self, data: np.ndarray, *, workers: int | None = None
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Levels and deltas for a new fine field (no geometry work)."""
        levels = self.coarsen(data)
        return levels, self.deltas_for(levels, workers=workers)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to one compressed-npz blob."""
        arrays: dict[str, np.ndarray] = {
            "meta": np.frombuffer(
                json.dumps(
                    {
                        "version": _FORMAT_VERSION,
                        "num_levels": self.scheme.num_levels,
                        "step_ratio": self.scheme.step_ratio,
                        "method": self.method,
                        "priority": self.priority,
                        "placement": self.placement,
                        "estimator": self.estimator,
                        "build_seconds": self.build_seconds,
                        "achieved_ratios": list(self.achieved_ratios),
                    }
                ).encode("utf-8"),
                dtype=np.uint8,
            ),
        }
        for lvl, mesh in enumerate(self.meshes):
            arrays[f"mesh{lvl}_vertices"] = mesh.vertices
            arrays[f"mesh{lvl}_triangles"] = mesh.triangles
        for step, lineage in enumerate(self.lineages):
            arrays.update(lineage.to_arrays(prefix=f"lineage{step}_"))
        for step, mapping in enumerate(self.mappings):
            arrays[f"mapping{step}"] = np.frombuffer(
                mapping.to_bytes(), dtype=np.uint8
            )
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DecimationPlan":
        with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
            arrays = {k: npz[k] for k in npz.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise RefactoringError(
                f"unsupported plan format version {meta.get('version')!r}"
            )
        scheme = LevelScheme(
            int(meta["num_levels"]), float(meta["step_ratio"])
        )
        meshes = [
            TriangleMesh(
                arrays[f"mesh{lvl}_vertices"],
                arrays[f"mesh{lvl}_triangles"],
                validate=False,
            )
            for lvl in range(scheme.num_levels)
        ]
        lineages = [
            CollapseLineage.from_arrays(arrays, prefix=f"lineage{step}_")
            for step in range(scheme.num_levels - 1)
        ]
        mappings = [
            LevelMapping.from_bytes(bytes(arrays[f"mapping{step}"]))
            for step in range(scheme.num_levels - 1)
        ]
        return cls(
            scheme=scheme,
            meshes=meshes,
            lineages=lineages,
            mappings=mappings,
            method=str(meta["method"]),
            priority=str(meta["priority"]),
            placement=str(meta["placement"]),
            estimator=str(meta["estimator"]),
            build_seconds=float(meta["build_seconds"]),
            achieved_ratios=[float(r) for r in meta["achieved_ratios"]],
        )


def build_plan(
    mesh: TriangleMesh,
    scheme: LevelScheme,
    *,
    method: str = "serial",
    priority: str = "length",
    placement: str = "midpoint",
    estimator: str = "mean",
) -> DecimationPlan:
    """One geometry pass: decimate every level and build every mapping."""
    if method not in KERNELS:
        raise RefactoringError(
            f"unknown decimation method {method!r}; expected one of {KERNELS}"
        )
    t0 = time.perf_counter()
    meshes: list[TriangleMesh] = [mesh]
    lineages: list[CollapseLineage] = []
    ratios: list[float] = [1.0]
    for step in range(scheme.num_levels - 1):
        with trace.span(
            "plan.decimate", "refactor",
            {"level": step + 1, "vertices_in": meshes[-1].num_vertices,
             "method": method},
        ):
            result = decimate(
                meshes[-1], None, ratio=scheme.step_ratio,
                priority=priority, placement=placement,
                method=method, record_lineage=True,
            )
        meshes.append(result.mesh)
        lineages.append(result.lineage)
        ratios.append(mesh.num_vertices / result.mesh.num_vertices)
    mappings = []
    for lvl in scheme.delta_levels():
        with trace.span("plan.mapping", "refactor", {"level": lvl}):
            mappings.append(
                build_mapping(
                    meshes[lvl], meshes[lvl + 1], estimator=estimator
                )
            )
    return DecimationPlan(
        scheme=scheme,
        meshes=meshes,
        lineages=lineages,
        mappings=mappings,
        method=method,
        priority=priority,
        placement=placement,
        estimator=estimator,
        build_seconds=time.perf_counter() - t0,
        achieved_ratios=ratios,
    )


class PlanCache:
    """Process-wide LRU of :class:`DecimationPlan` keyed by content.

    The key includes the mesh's content fingerprint, so two
    structurally identical meshes share an entry while any geometry
    change misses. Thread-safe; hit/miss counts are surfaced on the
    active tracer ("plan.cache.hits"/"plan.cache.misses") so
    ``repro trace`` shows whether a campaign actually reused its plan.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise RefactoringError("PlanCache maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, DecimationPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(
        mesh: TriangleMesh,
        scheme: LevelScheme,
        *,
        method: str,
        priority: str,
        placement: str,
        estimator: str,
    ) -> tuple:
        return (
            mesh_fingerprint(mesh),
            scheme.num_levels,
            scheme.step_ratio,
            method,
            priority,
            placement,
            estimator,
        )

    def get_or_build(
        self,
        mesh: TriangleMesh,
        scheme: LevelScheme,
        *,
        method: str = "serial",
        priority: str = "length",
        placement: str = "midpoint",
        estimator: str = "mean",
    ) -> DecimationPlan:
        """Return the cached plan for this configuration, building on miss."""
        if not plan_eligible(priority):
            raise RefactoringError(
                f"priority {priority!r} is not plan-cacheable (collapse "
                "order depends on field data)"
            )
        key = self.key_for(
            mesh, scheme, method=method, priority=priority,
            placement=placement, estimator=estimator,
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                self._count("plan.cache.hits")
                return plan
        # Build outside the lock: geometry passes are long and hitting
        # threads must not serialize behind them. A concurrent duplicate
        # build is harmless (last insert wins, both plans identical).
        plan = build_plan(
            mesh, scheme, method=method, priority=priority,
            placement=placement, estimator=estimator,
        )
        with self._lock:
            self.misses += 1
            self._count("plan.cache.misses")
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
        return plan

    @staticmethod
    def _count(name: str) -> None:
        tracer = trace.get_tracer()
        if tracer is not None:
            tracer.metrics.counter(name).inc()

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
            }


_default_cache = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-wide default plan cache."""
    return _default_cache
