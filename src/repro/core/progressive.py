"""User-facing progressive data exploration (paper §III-E, Fig. 1 right).

``ProgressiveReader`` wraps the decoder in the interaction loop the
paper describes: start from the base, refine level by level, stop either
interactively or automatically "if the criteria to terminate (e.g., root
mean square error between two adjacent levels) is known a priori".

With ``pipeline=True`` the reader overlaps tier I/O with decode: before
decompressing/applying the current delta it hints the retrieval engine
with the next ``lookahead`` levels' byte ranges
(:meth:`~repro.core.decoder.CanopusDecoder.prefetch_levels`), so worker
threads fetch them while the CPU is busy. Restored fields are
bit-identical to the serial path — pipelining changes *when* bytes are
fetched, never what is applied — while the simulated I/O charge drops to
the engine's overlapped batch model (per-op latency paid once per batch,
device streams in parallel, tiers overlapped max-per-tier).
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.decoder import CanopusDecoder, LevelData
from repro.errors import RestorationError
from repro.obs import trace

__all__ = ["ProgressiveReader"]


class ProgressiveReader:
    """Iterative refinement handle for one variable.

    Parameters
    ----------
    decoder / var:
        The configured read pipeline and the variable to refine.
    pipeline:
        Overlap tier I/O with decode by prefetching upcoming levels
        through the retrieval engine. Off by default so existing serial
        measurements stay comparable; the :func:`repro.api.read_progressive`
        façade turns it on.
    lookahead:
        How many refinement levels to keep in flight ahead of the
        current one (≥ 1 when pipelining).
    min_significance:
        Default significance threshold applied by every refinement:
        chunks whose recorded ``|max|`` correction is below it are
        skipped (bounded-lossy focused retrieval, decoder §). Individual
        :meth:`refine` calls can override it.
    """

    def __init__(
        self,
        decoder: CanopusDecoder,
        var: str,
        *,
        pipeline: bool = False,
        lookahead: int = 2,
        min_significance: float = 0.0,
    ) -> None:
        if lookahead < 1:
            raise RestorationError("lookahead must be >= 1")
        if min_significance < 0.0:
            raise RestorationError("min_significance must be >= 0")
        self.decoder = decoder
        self.var = var
        self.scheme = decoder.scheme(var)
        self.pipeline = pipeline
        self.lookahead = lookahead
        self.min_significance = min_significance
        self._state: LevelData | None = None

    # ------------------------------------------------------------------
    def _clock(self):
        return self.decoder.dataset.hierarchy.clock

    def _prefetch_window(self, next_target: int) -> float:
        """Issue hints for [next_target .. next_target-lookahead+1].

        Returns the simulated seconds charged for newly issued batches
        (already-cached / in-flight ranges are free), so callers can
        fold the cost into the current step's I/O phase — the charge is
        honest: it happens when the requests are issued.
        """
        clock = self._clock()
        before = clock.elapsed
        levels = range(next_target, max(-1, next_target - self.lookahead), -1)
        with trace.span(
            "progressive.prefetch", "pipeline",
            {"var": self.var, "next_target": next_target},
        ):
            self.decoder.prefetch_levels(
                self.var, levels, label=f"{self.var}:pipeline"
            )
        return clock.elapsed - before

    # ------------------------------------------------------------------
    @property
    def state(self) -> LevelData:
        """Current restored level (reads the base on first access)."""
        if self._state is None:
            with trace.span(
                "progressive.base", "pipeline",
                {"var": self.var, "pipeline": self.pipeline},
            ):
                prefetch_io = 0.0
                if self.pipeline:
                    # Batch the base field + base mesh into one engine
                    # fetch, and start the first deltas moving behind it.
                    clock = self._clock()
                    before = clock.elapsed
                    self.decoder.dataset.prefetch(
                        self.decoder.base_keys(self.var),
                        label=f"{self.var}:base",
                    )
                    prefetch_io = clock.elapsed - before
                    prefetch_io += self._prefetch_window(
                        self.scheme.base_level - 1
                    )
                self._state = self.decoder.read_base(self.var)
                self._state.timings.io_seconds += prefetch_io
        return self._state

    @property
    def level(self) -> int:
        return self.state.level

    @property
    def at_full_accuracy(self) -> bool:
        return self.state.level == 0

    def reset(self) -> None:
        self._state = None

    # ------------------------------------------------------------------
    def refine(
        self,
        *,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float | None = None,
    ) -> LevelData:
        """Fetch the next delta and lift one level.

        When pipelining, the level after this one starts fetching before
        the current delta is decompressed/applied; region-restricted or
        significance-pruned refinement disables the hint for that step
        (the engine cannot know which chunks the filter will keep).
        ``min_significance=None`` uses the reader-wide default.
        """
        if self.at_full_accuracy:
            raise RestorationError("already at full accuracy")
        if min_significance is None:
            min_significance = self.min_significance
        target = self.state.level - 1
        with trace.span(
            "progressive.refine", "pipeline",
            {"var": self.var, "target": target},
        ):
            prefetch_io = 0.0
            if self.pipeline and region is None and min_significance == 0.0:
                prefetch_io = self._prefetch_window(target)
            self._state = self.decoder.refine(
                self.state, region=region, min_significance=min_significance
            )
            self._state.timings.io_seconds += prefetch_io
        return self._state

    def refine_until(
        self,
        *,
        rms_tolerance: float | None = None,
        stop: Callable[[LevelData], bool] | None = None,
        max_level: int = 0,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float | None = None,
    ) -> LevelData:
        """Refine until a termination criterion fires.

        Parameters
        ----------
        rms_tolerance:
            Stop when the RMS of the applied delta drops below this —
            the next correction would move the field less than the
            tolerance, so further accuracy is unlikely to change
            conclusions. Steps that applied *nothing* (every chunk
            filtered out) report NaN and never trigger this stop.
        stop:
            Arbitrary predicate on the refined state (e.g. "blob count
            stopped changing"). Checked after every refinement.
        max_level:
            Do not refine below this level (0 = full accuracy).
        region / min_significance:
            Forwarded to every :meth:`refine` step (focused /
            significance-pruned retrieval).
        """
        if rms_tolerance is None and stop is None:
            raise RestorationError("need rms_tolerance and/or stop predicate")
        while self.state.level > max_level:
            state = self.refine(
                region=region, min_significance=min_significance
            )
            # NaN rms (nothing applied) compares False here, so a fully
            # filtered step can never fake convergence.
            if rms_tolerance is not None and state.last_delta_rms <= rms_tolerance:
                break
            if stop is not None and stop(state):
                break
        return self.state

    def levels(self) -> Iterator[LevelData]:
        """Iterate from the current level down to full accuracy."""
        yield self.state
        while not self.at_full_accuracy:
            yield self.refine()
