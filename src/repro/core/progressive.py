"""User-facing progressive data exploration (paper §III-E, Fig. 1 right).

``ProgressiveReader`` wraps the decoder in the interaction loop the
paper describes: start from the base, refine level by level, stop either
interactively or automatically "if the criteria to terminate (e.g., root
mean square error between two adjacent levels) is known a priori".
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.decoder import CanopusDecoder, LevelData
from repro.errors import RestorationError

__all__ = ["ProgressiveReader"]


class ProgressiveReader:
    """Iterative refinement handle for one variable."""

    def __init__(self, decoder: CanopusDecoder, var: str) -> None:
        self.decoder = decoder
        self.var = var
        self.scheme = decoder.scheme(var)
        self._state: LevelData | None = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> LevelData:
        """Current restored level (reads the base on first access)."""
        if self._state is None:
            self._state = self.decoder.read_base(self.var)
        return self._state

    @property
    def level(self) -> int:
        return self.state.level

    @property
    def at_full_accuracy(self) -> bool:
        return self.state.level == 0

    def reset(self) -> None:
        self._state = None

    # ------------------------------------------------------------------
    def refine(
        self, *, region: tuple[np.ndarray, np.ndarray] | None = None
    ) -> LevelData:
        """Fetch the next delta and lift one level."""
        if self.at_full_accuracy:
            raise RestorationError("already at full accuracy")
        self._state = self.decoder.refine(self.state, region=region)
        return self._state

    def refine_until(
        self,
        *,
        rms_tolerance: float | None = None,
        stop: Callable[[LevelData], bool] | None = None,
        max_level: int = 0,
    ) -> LevelData:
        """Refine until a termination criterion fires.

        Parameters
        ----------
        rms_tolerance:
            Stop when the RMS of the applied delta drops below this —
            the next correction would move the field less than the
            tolerance, so further accuracy is unlikely to change
            conclusions.
        stop:
            Arbitrary predicate on the refined state (e.g. "blob count
            stopped changing"). Checked after every refinement.
        max_level:
            Do not refine below this level (0 = full accuracy).
        """
        if rms_tolerance is None and stop is None:
            raise RestorationError("need rms_tolerance and/or stop predicate")
        while self.state.level > max_level:
            state = self.refine()
            if rms_tolerance is not None and state.last_delta_rms <= rms_tolerance:
                break
            if stop is not None and stop(state):
                break
        return self.state

    def levels(self) -> Iterator[LevelData]:
        """Iterate from the current level down to full accuracy."""
        yield self.state
        while not self.at_full_accuracy:
            yield self.refine()
