"""Level/delta naming and the paper's notation (§III-B).

* ``L^l`` — data at accuracy level ``l``; ``l = 0`` is full accuracy,
  ``l = N−1`` is the base;
* ``delta^{l−(l+1)} = L^l − Estimate(L^{l+1})`` — the delta that lifts
  level ``l+1`` to level ``l``;
* ``d_l = |V^0| / |V^l|`` — decimation ratio of level ``l`` relative to
  the original (``d_l = step**l`` for a uniform per-step ratio).

Variable keys in the BP catalog follow these conventions::

    {var}/L{l}            field payload of level l (base stores l = N−1)
    {var}/delta{l}-{l+1}  delta payload lifting l+1 → l
    {var}/delta{l}-{l+1}/chunk{c}   spatially-chunked delta (focused reads)
    {var}/mapping{l}      fine-vertex → coarse-triangle mapping for level l
    {var}/mesh{l}         mesh geometry of level l
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CanopusError

__all__ = [
    "GEOM_VAR",
    "LevelScheme",
    "level_key",
    "delta_key",
    "mapping_key",
    "mesh_key",
    "chunk_key",
    "step_key",
]

#: Pseudo-variable holding a campaign's shared geometry products
#: (level meshes + mappings, stored once per campaign dataset).
GEOM_VAR = "geometry"


def level_key(var: str, level: int) -> str:
    return f"{var}/L{level}"


def step_key(var: str, step: int, level: int, kind: str) -> str:
    """Catalog key of one campaign timestep product.

    ``kind`` is ``"base"`` (level payload) or ``"delta"`` (the delta
    lifting ``level+1 → level``).
    """
    if kind == "base":
        return f"{var}/step{step}/L{level}"
    return f"{var}/step{step}/delta{level}-{level + 1}"


def delta_key(var: str, level: int) -> str:
    """Key of the delta lifting level+1 → level (paper: delta^{l-(l+1)})."""
    return f"{var}/delta{level}-{level + 1}"


def chunk_key(var: str, level: int, chunk: int) -> str:
    return f"{delta_key(var, level)}/chunk{chunk}"


def mapping_key(var: str, level: int) -> str:
    return f"{var}/mapping{level}"


def mesh_key(var: str, level: int) -> str:
    return f"{var}/mesh{level}"


@dataclass(frozen=True)
class LevelScheme:
    """Accuracy-level progression parameters.

    Attributes
    ----------
    num_levels:
        N in the paper; levels run ``0 <= l < N``.
    step_ratio:
        Per-step decimation ratio between consecutive levels (the paper
        uses 2, so ``d_l = 2**l``).
    """

    num_levels: int
    step_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise CanopusError("need at least one level")
        if self.step_ratio <= 1.0:
            raise CanopusError("step_ratio must exceed 1")

    @property
    def base_level(self) -> int:
        """Index of the base dataset, N−1."""
        return self.num_levels - 1

    def decimation_ratio(self, level: int) -> float:
        """``d_l = |V^0| / |V^l|`` under a uniform per-step ratio."""
        self.validate_level(level)
        return self.step_ratio**level

    def validate_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise CanopusError(
                f"level {level} out of range [0, {self.num_levels})"
            )

    def levels(self) -> range:
        """All levels, fine → coarse (0 .. N−1)."""
        return range(self.num_levels)

    def delta_levels(self) -> range:
        """Levels that own a delta: every level except the base."""
        return range(self.num_levels - 1)

    def restore_path(self, target_level: int) -> list[int]:
        """Delta levels applied (in order) to lift the base to ``target``.

        E.g. N=3, target 0 → [1, 0]: apply delta1-2 then delta0-1.
        """
        self.validate_level(target_level)
        return list(range(self.num_levels - 2, target_level - 1, -1))
