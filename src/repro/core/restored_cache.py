"""Process-wide read-side caches: restored levels and shared geometry.

The write path got a content-keyed :class:`~repro.core.decimation_plan.PlanCache`
so repeated campaigns skip geometry passes; this module is its read-side
mirror. Analytics sessions over the same dataset repeat two kinds of
work:

* re-restoring the same (variable, level) — every session walks base →
  deltas → level even when another reader just produced that exact
  field;
* re-decoding geometry — every :class:`~repro.core.decoder.CanopusDecoder`
  instance keeps private mesh/mapping caches, so N readers decode the
  same static mesh hierarchy N times.

:class:`RestoredLevelCache` keeps finished fields keyed by *dataset
content fingerprint* + variable + level + retrieval filter, so a second
session gets the field back with zero I/O, and a session asking for a
finer level warm-starts from the closest cached coarser level instead of
the base (fewer deltas to read and apply). :class:`GeometryCache` shares
decoded meshes/mappings across decoder instances.

Both caches are thread-safe and content-keyed: datasets with different
catalogs (different bytes on disk) never collide, so correctness does
not depend on cache invalidation. Hit/miss counts are surfaced on the
active tracer (``restore.cache.*`` / ``geometry.cache.*``) so
``repro trace`` shows whether sessions actually shared work.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs import trace

__all__ = [
    "CachedLevel",
    "GeometryCache",
    "RestoredLevelCache",
    "dataset_fingerprint",
    "get_geometry_cache",
    "get_restored_cache",
]


def dataset_fingerprint(dataset) -> str:
    """Stable content fingerprint of an open dataset's catalog.

    Hashes every record's identity (key, subfile, byte range, CRC), so
    two handles onto the same bytes share cache entries while any
    re-write — even same-length — changes the fingerprint via the
    checksum. Cached on the dataset object after the first call.
    """
    cached = getattr(dataset, "_content_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    records = dataset.catalog.records
    for key in sorted(records):
        rec = records[key]
        h.update(
            f"{rec.key}|{rec.subfile}|{rec.offset}|{rec.length}"
            f"|{rec.checksum}\n".encode()
        )
    fp = h.hexdigest()
    try:
        dataset._content_fingerprint = fp
    except AttributeError:  # exotic dataset objects without __dict__
        pass
    return fp


def _counter(name: str) -> None:
    tracer = trace.get_tracer()
    if tracer is not None:
        tracer.metrics.counter(name).inc()


@dataclass(frozen=True)
class CachedLevel:
    """One cached restored field (immutable snapshot)."""

    field: np.ndarray  # read-only; copy before mutating
    level: int
    refined_mask: np.ndarray | None
    last_delta_rms: float

    @property
    def nbytes(self) -> int:
        n = self.field.nbytes
        if self.refined_mask is not None:
            n += self.refined_mask.nbytes
        return n


class RestoredLevelCache:
    """Process-wide byte-budgeted LRU of restored fields.

    Keys are ``(fingerprint, var, level, region, min_significance)``;
    entries produced by focused (``region``) or bounded-lossy
    (``min_significance``) retrieval are cached under their exact filter
    and never substituted for full-accuracy results. Warm-start lookups
    (:meth:`warmest`) only ever consider unfiltered entries, because a
    filtered field is not a valid refinement starting point for other
    requests.
    """

    def __init__(self, max_bytes: int = 512 << 20) -> None:
        if max_bytes < 1:
            raise ValueError("RestoredLevelCache max_bytes must be >= 1")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CachedLevel] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    # -- keying ---------------------------------------------------------
    @staticmethod
    def key_for(
        dataset,
        var: str,
        level: int,
        *,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ) -> tuple:
        """Cache key: content identity + tenant-visible filter state only.

        ``dataset`` may be an open dataset *or* an already-computed
        fingerprint string — nothing about the handle (engine width,
        checksum policy, which session/tenant opened it) enters the key,
        so any two sessions restoring the same
        ``(fingerprint, var, level, region, min_significance)`` share
        one entry. Filter values are normalized (plain floats, ``-0.0``
        folded to ``0.0``) so equivalent requests spelled with lists vs
        arrays collide onto the same key.
        """
        region_token = None
        if region is not None:
            lo, hi = region
            region_token = (
                tuple(float(v) + 0.0 for v in np.asarray(lo).ravel()),
                tuple(float(v) + 0.0 for v in np.asarray(hi).ravel()),
            )
        fp = dataset if isinstance(dataset, str) else dataset_fingerprint(dataset)
        return (
            fp,
            str(var),
            int(level),
            region_token,
            float(min_significance) + 0.0,
        )

    # -- access ---------------------------------------------------------
    def get(self, key: tuple) -> CachedLevel | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _counter("restore.cache.misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _counter("restore.cache.hits")
            return entry

    def has(self, key: tuple) -> bool:
        """Membership peek that does not touch LRU order or counters."""
        with self._lock:
            return key in self._entries

    def warmest(self, dataset, var: str, level: int) -> CachedLevel | None:
        """Best unfiltered starting point for restoring ``var`` to ``level``.

        Returns the cached entry with the smallest level >= ``level``
        (i.e. the already-restored field closest to the target), or
        ``None``. An exact-level entry is returned as-is — callers can
        use it directly instead of refining.
        """
        fp = dataset_fingerprint(dataset)
        with self._lock:
            best_key = None
            best_level = None
            for key, entry in self._entries.items():
                kfp, kvar, klevel, kregion, kms = key
                if kfp != fp or kvar != var or kregion is not None or kms != 0.0:
                    continue
                if klevel < level:
                    continue  # finer than requested: not a refinement start
                if best_level is None or klevel < best_level:
                    best_key, best_level = key, klevel
            if best_key is None:
                return None
            self._entries.move_to_end(best_key)
            _counter("restore.cache.warm_starts")
            return self._entries[best_key]

    def put(
        self,
        key: tuple,
        field: np.ndarray,
        *,
        refined_mask: np.ndarray | None = None,
        last_delta_rms: float = float("nan"),
    ) -> CachedLevel:
        """Insert a restored field; stores an immutable copy."""
        snapshot = np.array(field, copy=True)
        snapshot.setflags(write=False)
        mask = None
        if refined_mask is not None:
            mask = np.array(refined_mask, copy=True)
            mask.setflags(write=False)
        entry = CachedLevel(
            field=snapshot,
            level=int(key[2]),
            refined_mask=mask,
            last_delta_rms=float(last_delta_rms),
        )
        if entry.nbytes > self.max_bytes:
            return entry  # larger than the whole budget: never cache
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                _counter("restore.cache.evictions")
        return entry

    # -- maintenance ----------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
            }


class GeometryCache:
    """Process-wide LRU of decoded geometry (meshes and mappings).

    Keyed by (dataset fingerprint, catalog key). Decoded geometry
    objects are treated as immutable by the read path, so sharing one
    instance across decoders and threads is safe.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("GeometryCache maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, dataset, key: str):
        k = (dataset_fingerprint(dataset), key)
        with self._lock:
            obj = self._entries.get(k)
            if obj is None:
                self.misses += 1
                _counter("geometry.cache.misses")
                return None
            self._entries.move_to_end(k)
            self.hits += 1
            _counter("geometry.cache.hits")
            return obj

    def has(self, dataset, key: str) -> bool:
        """Membership peek that does not touch LRU order or counters."""
        k = (dataset_fingerprint(dataset), key)
        with self._lock:
            return k in self._entries

    def put(self, dataset, key: str, obj) -> None:
        k = (dataset_fingerprint(dataset), key)
        with self._lock:
            self._entries[k] = obj
            self._entries.move_to_end(k)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }


_restored_cache = RestoredLevelCache()
_geometry_cache = GeometryCache()


def get_restored_cache() -> RestoredLevelCache:
    """The process-wide default restored-level cache."""
    return _restored_cache


def get_geometry_cache() -> GeometryCache:
    """The process-wide default geometry cache."""
    return _geometry_cache
