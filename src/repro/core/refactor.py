"""Multi-level refactoring driver (decimation + delta chain).

One refactoring pass produces, from ``(G^0, L^0)``:

* the level meshes ``G^1 .. G^{N−1}`` and fields ``L^1 .. L^{N−1}``
  (paper Alg. 1, one :func:`~repro.mesh.edge_collapse.decimate` call per
  step);
* the mappings ``mapping^l`` (fine vertex → coarse triangle, §III-E2);
* the deltas ``delta^{l-(l+1)}`` (paper Alg. 2).

Only ``L^{N−1}`` (the base) and the deltas are persisted — the
intermediate levels exist transiently, which is the whole point of
Motivation 2 (Canopus vs. naive multi-level compression). Per-phase wall
times are recorded for the write-cost study (Fig. 6b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.decimation_plan import (
    DecimationPlan,
    get_plan_cache,
    plan_eligible,
)
from repro.core.delta import compute_delta
from repro.core.mapping import LevelMapping, build_mapping
from repro.core.notation import LevelScheme
from repro.errors import RefactoringError
from repro.mesh.edge_collapse import decimate
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace

__all__ = ["RefactorResult", "refactor"]


@dataclass
class RefactorResult:
    """All products of one refactoring pass.

    Attributes
    ----------
    scheme:
        The level progression used.
    meshes:
        ``meshes[l]`` is ``G^l``; index 0 is the input mesh.
    levels:
        ``levels[l]`` is ``L^l``; only ``levels[-1]`` (the base) is
        persisted by the encoder.
    deltas:
        ``deltas[l] = delta^{l-(l+1)}`` for ``0 <= l < N−1``.
    mappings:
        ``mappings[l]`` lifts level ``l+1`` to ``l``.
    decimation_seconds / delta_seconds:
        Wall time spent in each phase (Fig. 6b inputs).
    """

    scheme: LevelScheme
    meshes: list[TriangleMesh]
    levels: list[np.ndarray]
    deltas: list[np.ndarray]
    mappings: list[LevelMapping]
    decimation_seconds: float = 0.0
    delta_seconds: float = 0.0
    achieved_ratios: list[float] = field(default_factory=list)
    plan: DecimationPlan | None = None

    @property
    def base_field(self) -> np.ndarray:
        return self.levels[-1]

    @property
    def base_mesh(self) -> TriangleMesh:
        return self.meshes[-1]


def refactor(
    mesh: TriangleMesh,
    data: np.ndarray,
    scheme: LevelScheme,
    *,
    estimator: str = "mean",
    priority: str = "length",
    method: str = "serial",
    workers: int | None = None,
    plan: DecimationPlan | None = None,
    use_plan_cache: bool = True,
    arena=None,
) -> RefactorResult:
    """Refactor ``(mesh, data)`` into a base + delta chain.

    Parameters
    ----------
    scheme:
        Number of levels and the per-step decimation ratio.
    estimator:
        ``Estimate()`` form for the deltas: ``"mean"`` (paper) or
        ``"barycentric"`` (ablation).
    priority:
        Edge-collapse priority strategy (see
        :func:`repro.mesh.edge_collapse.make_priority`).
    method:
        Decimation kernel: ``"serial"`` (Algorithm 1's heap loop) or
        ``"batched"`` (round-based vectorized kernel).
    workers:
        With ``workers > 1``, per-level delta computations run on a
        thread pool.
    plan:
        A prebuilt :class:`~repro.core.decimation_plan.DecimationPlan`
        for this exact mesh + scheme; skips all geometry work.
    use_plan_cache:
        When true (default) and the priority is geometry-determined,
        consult the process-wide plan cache so repeated refactorings of
        the same mesh decimate once and replay thereafter. The replayed
        results are bit-identical to the direct path.
    arena:
        Optional buffer pool (``take(shape)`` / ``give(buf)``, e.g.
        :class:`~repro.core.encode_scheduler.BufferArena`) forwarded to
        the plan replay so streaming callers reuse scratch across
        fields. Ignored on the direct (data-aware) path.
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    if data.ndim not in (1, 2) or data.shape[-1] != mesh.num_vertices:
        raise RefactoringError(
            f"data of shape {data.shape} does not match "
            f"{mesh.num_vertices} vertices (expect (n,) or (planes, n))"
        )

    if plan is None and use_plan_cache and plan_eligible(priority):
        # The collapse sequence depends only on geometry, so the cached
        # (or freshly built) plan reproduces the direct path exactly.
        t0 = time.perf_counter()
        with trace.span(
            "refactor.decimate", "refactor",
            {"levels": scheme.num_levels, "method": method, "plan": True},
        ):
            plan = get_plan_cache().get_or_build(
                mesh, scheme, method=method, priority=priority,
                estimator=estimator,
            )
            levels = plan.coarsen(data, arena=arena)
        t_decimate = time.perf_counter() - t0
    elif plan is not None:
        if plan.scheme != scheme:
            raise RefactoringError(
                f"plan was built for {plan.scheme}, not {scheme}"
            )
        t0 = time.perf_counter()
        with trace.span(
            "refactor.decimate", "refactor",
            {"levels": scheme.num_levels, "method": plan.method,
             "plan": True},
        ):
            levels = plan.coarsen(data, arena=arena)
        t_decimate = time.perf_counter() - t0
    else:
        plan = None
        levels = None
        t_decimate = 0.0

    if plan is not None:
        t0 = time.perf_counter()
        with trace.span(
            "refactor.delta", "refactor",
            {"levels": scheme.num_levels, "workers": workers or 1},
        ):
            deltas = plan.deltas_for(levels, workers=workers)
        t_delta = time.perf_counter() - t0
        return RefactorResult(
            scheme=scheme,
            meshes=plan.meshes,
            levels=levels,
            deltas=deltas,
            mappings=plan.mappings,
            decimation_seconds=t_decimate,
            delta_seconds=t_delta,
            achieved_ratios=list(plan.achieved_ratios),
            plan=plan,
        )

    # --- direct path: data-aware / callable priorities ----------------------
    planes = data.shape[0] if data.ndim == 2 else 0  # 0 = un-stacked

    def _to_fields(level_data: np.ndarray) -> dict[str, np.ndarray]:
        if planes:
            return {str(p): level_data[p] for p in range(planes)}
        return {"data": level_data}

    def _from_fields(fields: dict[str, np.ndarray]) -> np.ndarray:
        if planes:
            return np.stack([fields[str(p)] for p in range(planes)])
        return fields["data"]

    meshes: list[TriangleMesh] = [mesh]
    levels = [data]
    ratios: list[float] = [1.0]
    t_decimate = 0.0
    for step in range(scheme.num_levels - 1):
        t0 = time.perf_counter()
        with trace.span(
            "refactor.decimate", "refactor",
            {"level": step + 1, "vertices_in": meshes[-1].num_vertices,
             "method": method},
        ):
            result = decimate(
                meshes[-1],
                _to_fields(levels[-1]),
                ratio=scheme.step_ratio,
                priority=priority,
                method=method,
            )
        t_decimate += time.perf_counter() - t0
        meshes.append(result.mesh)
        levels.append(_from_fields(result.fields))
        ratios.append(mesh.num_vertices / result.mesh.num_vertices)

    deltas: list[np.ndarray] = []
    mappings: list[LevelMapping] = []
    t_delta = 0.0

    def _one_delta(lvl: int) -> tuple[LevelMapping, np.ndarray]:
        mapping = build_mapping(
            meshes[lvl], meshes[lvl + 1], estimator=estimator
        )
        return mapping, compute_delta(levels[lvl], levels[lvl + 1], mapping)

    delta_levels = list(scheme.delta_levels())
    if workers and workers > 1 and len(delta_levels) > 1:
        from concurrent.futures import ThreadPoolExecutor

        t0 = time.perf_counter()
        with trace.span(
            "refactor.delta", "refactor",
            {"levels": len(delta_levels), "workers": workers},
        ):
            with ThreadPoolExecutor(
                max_workers=min(workers, len(delta_levels))
            ) as pool:
                for mapping, delta in pool.map(_one_delta, delta_levels):
                    deltas.append(delta)
                    mappings.append(mapping)
        t_delta = time.perf_counter() - t0
    else:
        for lvl in delta_levels:
            t0 = time.perf_counter()
            with trace.span("refactor.delta", "refactor", {"level": lvl}):
                mapping, delta = _one_delta(lvl)
            t_delta += time.perf_counter() - t0
            deltas.append(delta)
            mappings.append(mapping)

    return RefactorResult(
        scheme=scheme,
        meshes=meshes,
        levels=levels,
        deltas=deltas,
        mappings=mappings,
        decimation_seconds=t_decimate,
        delta_seconds=t_delta,
        achieved_ratios=ratios,
    )
