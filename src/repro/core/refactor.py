"""Multi-level refactoring driver (decimation + delta chain).

One refactoring pass produces, from ``(G^0, L^0)``:

* the level meshes ``G^1 .. G^{N−1}`` and fields ``L^1 .. L^{N−1}``
  (paper Alg. 1, one :func:`~repro.mesh.edge_collapse.decimate` call per
  step);
* the mappings ``mapping^l`` (fine vertex → coarse triangle, §III-E2);
* the deltas ``delta^{l-(l+1)}`` (paper Alg. 2).

Only ``L^{N−1}`` (the base) and the deltas are persisted — the
intermediate levels exist transiently, which is the whole point of
Motivation 2 (Canopus vs. naive multi-level compression). Per-phase wall
times are recorded for the write-cost study (Fig. 6b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.delta import compute_delta
from repro.core.mapping import LevelMapping, build_mapping
from repro.core.notation import LevelScheme
from repro.errors import RefactoringError
from repro.mesh.edge_collapse import decimate
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace

__all__ = ["RefactorResult", "refactor"]


@dataclass
class RefactorResult:
    """All products of one refactoring pass.

    Attributes
    ----------
    scheme:
        The level progression used.
    meshes:
        ``meshes[l]`` is ``G^l``; index 0 is the input mesh.
    levels:
        ``levels[l]`` is ``L^l``; only ``levels[-1]`` (the base) is
        persisted by the encoder.
    deltas:
        ``deltas[l] = delta^{l-(l+1)}`` for ``0 <= l < N−1``.
    mappings:
        ``mappings[l]`` lifts level ``l+1`` to ``l``.
    decimation_seconds / delta_seconds:
        Wall time spent in each phase (Fig. 6b inputs).
    """

    scheme: LevelScheme
    meshes: list[TriangleMesh]
    levels: list[np.ndarray]
    deltas: list[np.ndarray]
    mappings: list[LevelMapping]
    decimation_seconds: float = 0.0
    delta_seconds: float = 0.0
    achieved_ratios: list[float] = field(default_factory=list)

    @property
    def base_field(self) -> np.ndarray:
        return self.levels[-1]

    @property
    def base_mesh(self) -> TriangleMesh:
        return self.meshes[-1]


def refactor(
    mesh: TriangleMesh,
    data: np.ndarray,
    scheme: LevelScheme,
    *,
    estimator: str = "mean",
    priority: str = "length",
) -> RefactorResult:
    """Refactor ``(mesh, data)`` into a base + delta chain.

    Parameters
    ----------
    scheme:
        Number of levels and the per-step decimation ratio.
    estimator:
        ``Estimate()`` form for the deltas: ``"mean"`` (paper) or
        ``"barycentric"`` (ablation).
    priority:
        Edge-collapse priority strategy (see
        :func:`repro.mesh.edge_collapse.make_priority`).
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    if data.ndim not in (1, 2) or data.shape[-1] != mesh.num_vertices:
        raise RefactoringError(
            f"data of shape {data.shape} does not match "
            f"{mesh.num_vertices} vertices (expect (n,) or (planes, n))"
        )
    planes = data.shape[0] if data.ndim == 2 else 0  # 0 = un-stacked

    def _to_fields(level_data: np.ndarray) -> dict[str, np.ndarray]:
        if planes:
            return {str(p): level_data[p] for p in range(planes)}
        return {"data": level_data}

    def _from_fields(fields: dict[str, np.ndarray]) -> np.ndarray:
        if planes:
            return np.stack([fields[str(p)] for p in range(planes)])
        return fields["data"]

    meshes: list[TriangleMesh] = [mesh]
    levels: list[np.ndarray] = [data]
    ratios: list[float] = [1.0]
    t_decimate = 0.0
    for step in range(scheme.num_levels - 1):
        t0 = time.perf_counter()
        with trace.span(
            "refactor.decimate", "refactor",
            {"level": step + 1, "vertices_in": meshes[-1].num_vertices},
        ):
            result = decimate(
                meshes[-1],
                _to_fields(levels[-1]),
                ratio=scheme.step_ratio,
                priority=priority,
            )
        t_decimate += time.perf_counter() - t0
        meshes.append(result.mesh)
        levels.append(_from_fields(result.fields))
        ratios.append(mesh.num_vertices / result.mesh.num_vertices)

    deltas: list[np.ndarray] = []
    mappings: list[LevelMapping] = []
    t_delta = 0.0
    for lvl in scheme.delta_levels():
        t0 = time.perf_counter()
        with trace.span(
            "refactor.delta", "refactor", {"level": lvl}
        ):
            mapping = build_mapping(
                meshes[lvl], meshes[lvl + 1], estimator=estimator
            )
            delta = compute_delta(levels[lvl], levels[lvl + 1], mapping)
        t_delta += time.perf_counter() - t0
        deltas.append(delta)
        mappings.append(mapping)

    return RefactorResult(
        scheme=scheme,
        meshes=meshes,
        levels=levels,
        deltas=deltas,
        mappings=mappings,
        decimation_seconds=t_decimate,
        delta_seconds=t_delta,
        achieved_ratios=ratios,
    )
