"""Canopus core: progressive refactoring, placement, and restoration.

This subpackage is the paper's primary contribution. The write path is
:class:`~repro.core.encoder.CanopusEncoder` (refactor → compress →
place); the read path is :class:`~repro.core.decoder.CanopusDecoder`
and :class:`~repro.core.progressive.ProgressiveReader` (retrieve →
decompress → restore, level by level).
"""

from repro.core.bytesplit import ByteSplitProduct, byte_restore, byte_split
from repro.core.blocksplit import QualityLayer, block_restore, block_split
from repro.core.campaign import CampaignReader, CampaignWriter, StepReport
from repro.core.parallel import (
    PartitionedDecoder,
    PartitionedReport,
    encode_partitioned,
)
from repro.core.decoder import CanopusDecoder, LevelData, PhaseTimings
from repro.core.decimation_plan import (
    DecimationPlan,
    PlanCache,
    build_plan,
    get_plan_cache,
    mesh_fingerprint,
    plan_eligible,
)
from repro.core.delta import apply_delta, compute_delta
from repro.core.encode_scheduler import (
    BufferArena,
    EncodeScheduler,
    ScaleoutReport,
    SchedPlane,
    encode_campaign_scaleout,
    fused_step_products,
)
from repro.core.encoder import CanopusEncoder, EncodeReport
from repro.core.mapping import LevelMapping, build_mapping
from repro.core.notation import (
    LevelScheme,
    chunk_key,
    delta_key,
    level_key,
    mapping_key,
    mesh_key,
)
from repro.core.plan import PlacementPlan, plan_placement
from repro.core.progressive import ProgressiveReader
from repro.core.refactor import RefactorResult, refactor

__all__ = [
    "LevelScheme",
    "level_key",
    "delta_key",
    "chunk_key",
    "mapping_key",
    "mesh_key",
    "LevelMapping",
    "build_mapping",
    "compute_delta",
    "apply_delta",
    "refactor",
    "RefactorResult",
    "DecimationPlan",
    "PlanCache",
    "build_plan",
    "get_plan_cache",
    "mesh_fingerprint",
    "plan_eligible",
    "PlacementPlan",
    "plan_placement",
    "CanopusEncoder",
    "EncodeReport",
    "CanopusDecoder",
    "LevelData",
    "PhaseTimings",
    "ProgressiveReader",
    "ByteSplitProduct",
    "byte_split",
    "byte_restore",
    "CampaignWriter",
    "CampaignReader",
    "StepReport",
    "QualityLayer",
    "block_split",
    "block_restore",
    "encode_partitioned",
    "PartitionedDecoder",
    "PartitionedReport",
    "BufferArena",
    "EncodeScheduler",
    "ScaleoutReport",
    "SchedPlane",
    "encode_campaign_scaleout",
    "fused_step_products",
]
