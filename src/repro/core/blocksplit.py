"""Block-splitting refactorer — JPEG 2000-style progressive quality layers.

The third refactoring approach §III-C lists (after byte splitting and
mesh decimation), modeled on the JPEG 2000 code-stream the paper cites
as its inspiration: the value stream is tiled into fixed-size blocks and
each block is coded into *quality layers*. Layer 0 encodes the block at
a coarse tolerance; each subsequent layer encodes the residual left by
the previous layers at a tighter tolerance. Reading a prefix of layers
reconstructs every value to that layer's accuracy.

Compared to mesh decimation (the paper's preference):

* no geometry awareness — the base layer is *not* "complete in
  geometry"; it is full-resolution but low-precision, so analytics that
  need a standalone coarse mesh can't use it directly;
* but per-block layering gives region-selective *precision* refinement
  with no mapping metadata, and the layer sizes shrink geometrically.

Layers are ordinary self-describing codec payloads, so they flow through
the same storage/placement machinery as decimation products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress import decode_auto, get_codec
from repro.errors import RefactoringError

__all__ = ["QualityLayer", "block_split", "block_restore"]

DEFAULT_BLOCK = 4096


@dataclass(frozen=True)
class QualityLayer:
    """One quality layer: per-block codec payloads at one tolerance."""

    index: int
    tolerance: float
    payloads: tuple[bytes, ...]  # one per block

    @property
    def nbytes(self) -> int:
        return sum(len(p) for p in self.payloads)


def block_split(
    data: np.ndarray,
    tolerances: tuple[float, ...],
    *,
    block: int = DEFAULT_BLOCK,
    codec: str = "zfp",
) -> list[QualityLayer]:
    """Encode ``data`` into progressive quality layers.

    ``tolerances`` must be strictly decreasing; layer *k* encodes the
    residual after layers ``0..k−1`` at ``tolerances[k]``, so reading
    layers ``0..k`` reconstructs within ``tolerances[k]``.
    """
    if not tolerances:
        raise RefactoringError("need at least one tolerance")
    if any(t <= 0 for t in tolerances):
        raise RefactoringError("tolerances must be positive")
    if list(tolerances) != sorted(tolerances, reverse=True) or len(
        set(tolerances)
    ) != len(tolerances):
        raise RefactoringError("tolerances must be strictly decreasing")
    if block < 1:
        raise RefactoringError("block must be positive")

    data = np.ascontiguousarray(data, dtype=np.float64).ravel()
    n_blocks = max(1, (data.size + block - 1) // block)
    layers: list[QualityLayer] = []
    residual = data.copy()
    for k, tol in enumerate(tolerances):
        coder = get_codec(codec, tolerance=tol)
        payloads = []
        reconstructed = np.empty_like(residual)
        for b in range(n_blocks):
            lo, hi = b * block, min((b + 1) * block, data.size)
            blob = coder.encode(residual[lo:hi])
            payloads.append(blob)
            reconstructed[lo:hi] = decode_auto(blob)
        layers.append(
            QualityLayer(index=k, tolerance=tol, payloads=tuple(payloads))
        )
        residual = residual - reconstructed
    return layers


def block_restore(
    layers: list[QualityLayer],
    *,
    count: int | None = None,
    block_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Reconstruct from a prefix of layers.

    ``block_mask`` (bool per block) restricts decoding to selected
    blocks — region-selective precision refinement; unselected blocks
    decode only layer 0 (they always get the base quality).
    """
    if not layers:
        raise RefactoringError("need at least the base layer")
    layers = sorted(layers, key=lambda l: l.index)
    if layers[0].index != 0:
        raise RefactoringError("base layer (index 0) is required")
    for a, b in zip(layers, layers[1:]):
        if b.index != a.index + 1:
            raise RefactoringError("layers must form a contiguous prefix")
    n_blocks = len(layers[0].payloads)
    if any(len(l.payloads) != n_blocks for l in layers):
        raise RefactoringError("layers disagree on block count")
    if block_mask is not None and len(block_mask) != n_blocks:
        raise RefactoringError("block_mask length must match block count")

    pieces: list[np.ndarray] = []
    for b in range(n_blocks):
        acc: np.ndarray | None = None
        use = layers if (block_mask is None or block_mask[b]) else layers[:1]
        for layer in use:
            part = decode_auto(layer.payloads[b])
            acc = part if acc is None else acc + part
        pieces.append(acc)
    out = np.concatenate(pieces)
    if count is not None:
        out = out[:count]
    return out
