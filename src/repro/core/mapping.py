"""Fine-vertex → coarse-triangle mapping metadata.

Restoration (paper Alg. 3) must know, for every vertex ``V^l_x``, which
coarse triangle ``<V^{l+1}_i, V^{l+1}_j, V^{l+1}_k>`` it falls into. The
paper: "the brute force approach … can be expensive … Canopus stores
the mapping between V^l_n and the triangle into ADIOS metadata during
the refactoring phase". :class:`LevelMapping` is that metadata: the
coarse vertex-index triple per fine vertex, plus the estimator weights.

For the paper-default mean estimator (α=β=γ=1/3) the weights are
implicit and not serialized; the barycentric estimator (our ablation of
the "optimal form of Estimate() is left for future study" remark)
serializes its per-vertex weights.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import RefactoringError
from repro.mesh.locate import TriangleLocator
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["LevelMapping", "build_mapping"]

_MAGIC = b"CMAP"
_MEAN_WEIGHTS = (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)


@dataclass
class LevelMapping:
    """Mapping used to lift level ``l+1`` data to level ``l``.

    Attributes
    ----------
    tri_vertices:
        ``(n_fine, 3)`` int64 — for each fine vertex, the coarse vertex
        indices ``(i, j, k)`` of its containing triangle.
    weights:
        ``(n_fine, 3)`` float64 estimator coefficients ``(α, β, γ)``
        summing to 1 per row, or ``None`` for the implicit mean
        estimator.
    """

    tri_vertices: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.tri_vertices = np.ascontiguousarray(self.tri_vertices, dtype=np.int64)
        if self.tri_vertices.ndim != 2 or self.tri_vertices.shape[1] != 3:
            raise RefactoringError("tri_vertices must be (n, 3)")
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)
            if self.weights.shape != self.tri_vertices.shape:
                raise RefactoringError("weights shape must match tri_vertices")

    @property
    def n_fine(self) -> int:
        return len(self.tri_vertices)

    def estimate(self, coarse_field: np.ndarray) -> np.ndarray:
        """``Estimate(L^{l+1}_i, L^{l+1}_j, L^{l+1}_k)`` per fine vertex.

        ``coarse_field`` may be ``(n_coarse,)`` or ``(planes, n_coarse)``
        (XGC1's dpot is a stack of poloidal planes sharing one mesh);
        the plane axis broadcasts.
        """
        corners = coarse_field[..., self.tri_vertices]  # (..., n_fine, 3)
        if self.weights is None:
            return corners.mean(axis=-1)
        return np.einsum("...ij,ij->...i", corners, self.weights)

    # -- serialization ----------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize (deflated — indices are highly repetitive)."""
        has_w = self.weights is not None
        header = _MAGIC + struct.pack("<QB", self.n_fine, int(has_w))
        body = self.tri_vertices.astype("<i8").tobytes()
        if has_w:
            body += self.weights.astype("<f8").tobytes()
        return header + zlib.compress(body, 6)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "LevelMapping":
        if len(blob) < 13 or blob[:4] != _MAGIC:
            raise RefactoringError("not a mapping payload")
        n, has_w = struct.unpack_from("<QB", blob, 4)
        body = zlib.decompress(blob[13:])
        tri = np.frombuffer(body, dtype="<i8", count=n * 3).reshape(n, 3)
        weights = None
        if has_w:
            weights = np.frombuffer(
                body, dtype="<f8", count=n * 3, offset=n * 3 * 8
            ).reshape(n, 3)
        return cls(tri_vertices=tri.copy(), weights=None if weights is None else weights.copy())


def build_mapping(
    fine_mesh: TriangleMesh,
    coarse_mesh: TriangleMesh,
    *,
    estimator: str = "mean",
    locator: TriangleLocator | None = None,
) -> LevelMapping:
    """Locate every fine vertex in the coarse mesh and build the mapping.

    Parameters
    ----------
    estimator:
        ``"mean"`` — the paper's α=β=γ=1/3 (weights implicit);
        ``"barycentric"`` — linear-exact weights from point location.
    """
    if estimator not in ("mean", "barycentric"):
        raise RefactoringError(f"unknown estimator {estimator!r}")
    if locator is None:
        locator = TriangleLocator(coarse_mesh)
    tri_ids, bary = locator.locate(fine_mesh.vertices)
    tri_vertices = coarse_mesh.triangles[tri_ids]
    if estimator == "mean":
        return LevelMapping(tri_vertices=tri_vertices)
    return LevelMapping(tri_vertices=tri_vertices, weights=bary)
