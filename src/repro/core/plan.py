"""Placement planning: mapping refactored products onto storage tiers.

Paper Fig. 1 / §III-D: the base goes to the fastest tier (ST2), the
coarsest delta to the next (ST1), the finest delta to the slowest (ST0).
"Note that the adjacent levels are not necessarily mapped to adjacent
physical levels due to the fact that some physical tiers may not have
the sufficient capacity" — the *preferred* tier computed here is a hint;
the dataset layer applies the bypass rule against actual capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.notation import LevelScheme

__all__ = ["PlacementPlan", "plan_placement"]


@dataclass(frozen=True)
class PlacementPlan:
    """Preferred tier index (0 = fastest) for each product."""

    base_tier: int
    delta_tiers: dict[int, int]  # delta level l -> preferred tier index

    def preferred_tier_for_delta(self, level: int) -> int:
        return self.delta_tiers[level]


def plan_placement(scheme: LevelScheme, num_tiers: int) -> PlacementPlan:
    """Compute preferred tiers for a base + delta chain.

    The base prefers tier 0. Delta level ``l`` (which lifts ``l+1 → l``)
    prefers tier ``N−1−l`` clamped to the slowest tier: coarser deltas
    (read more often, smaller) sit on faster tiers than finer ones.

    With the paper's 3 levels and 3 tiers: base → ST2 (fastest),
    delta^{1-2} → ST1, delta^{0-1} → ST0 (slowest).
    """
    delta_tiers = {
        lvl: min(num_tiers - 1, scheme.num_levels - 1 - lvl)
        for lvl in scheme.delta_levels()
    }
    return PlacementPlan(base_tier=0, delta_tiers=delta_tiers)
