"""Delta calculation (paper Algorithm 2) and its inverse.

For each fine-level vertex ``x`` inside coarse triangle ``<i, j, k>``::

    delta^{l-(l+1)}_x = L^l_x − Estimate(L^{l+1}_i, L^{l+1}_j, L^{l+1}_k)
    Estimate(·) = α·L^{l+1}_i + β·L^{l+1}_j + γ·L^{l+1}_k,  α+β+γ = 1

The estimate exploits the correlation between adjacent levels: the delta
is near zero and much smoother than ``L^l`` itself, so it compresses far
better (the paper's Fig. 4/Fig. 5 observation). Restoration
(Algorithm 3) is the exact inverse, so with a lossless compressor the
round trip is bit-exact; with a lossy compressor the error is exactly
the compressor's bound on the delta payload.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import LevelMapping
from repro.errors import RefactoringError, RestorationError

__all__ = ["compute_delta", "apply_delta"]


def compute_delta(
    fine_field: np.ndarray,
    coarse_field: np.ndarray,
    mapping: LevelMapping,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``delta = L^l − Estimate(L^{l+1})`` (Algorithm 2, vectorized).

    Fields may be ``(n,)`` or ``(planes, n)``; the plane axis broadcasts.
    ``out`` may supply a preallocated result buffer of the fine field's
    shape (the fused encode kernels pass pooled scratch); the values are
    bit-identical either way — same IEEE-754 subtraction, same operands.
    """
    fine_field = np.asarray(fine_field, dtype=np.float64)
    coarse_field = np.asarray(coarse_field, dtype=np.float64)
    if fine_field.shape[-1] != mapping.n_fine:
        raise RefactoringError(
            f"fine field has {fine_field.shape[-1]} values; mapping expects "
            f"{mapping.n_fine}"
        )
    if mapping.tri_vertices.max(initial=-1) >= coarse_field.shape[-1]:
        raise RefactoringError("mapping references vertices beyond coarse field")
    estimate = mapping.estimate(coarse_field)
    if out is None:
        return fine_field - estimate
    if out.shape != fine_field.shape or out.dtype != np.float64:
        raise RefactoringError(
            f"out buffer {out.shape}/{out.dtype} does not match fine field "
            f"{fine_field.shape}/float64"
        )
    np.subtract(fine_field, estimate, out=out)
    return out


def apply_delta(
    coarse_field: np.ndarray,
    delta: np.ndarray,
    mapping: LevelMapping,
) -> np.ndarray:
    """``L^l = delta + Estimate(L^{l+1})`` (Algorithm 3, vectorized)."""
    coarse_field = np.asarray(coarse_field, dtype=np.float64)
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape[-1] != mapping.n_fine:
        raise RestorationError(
            f"delta has {delta.shape[-1]} values; mapping expects {mapping.n_fine}"
        )
    if mapping.tri_vertices.max(initial=-1) >= coarse_field.shape[-1]:
        raise RestorationError("mapping references vertices beyond coarse field")
    return delta + mapping.estimate(coarse_field)
