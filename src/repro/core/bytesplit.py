"""Byte-splitting refactorer — the paper's alternative to decimation.

§III-C lists three refactoring approaches: byte splitting, block
splitting, and mesh decimation (the paper's focus). Byte splitting keeps
every vertex but splits each float64 into big-endian byte *planes*: the
base holds the top ``plan[0]`` bytes of every value (sign, exponent,
leading mantissa), and each delta product appends the next bytes.
Reading k products reconstructs every value truncated to
``sum(plan[:k])`` bytes, giving a per-value relative error bound of
``2**-(8*mantissa_bytes - 4)`` (roughly — one exponent step).

Compared to mesh decimation (paper's reasons for preferring decimation):
byte splitting cannot exceed 8 products (≤8× reduction for the base),
while decimation reaches 1000×; but it preserves full spatial resolution
at reduced precision, which some analytics prefer. It shares the same
progressive-retrieval machinery, so it slots into the same placement
plan.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import RefactoringError

__all__ = ["ByteSplitProduct", "byte_split", "byte_restore"]


@dataclass(frozen=True)
class ByteSplitProduct:
    """One byte-plane product: bytes ``offset .. offset+width`` of each value."""

    offset: int
    width: int
    payload: bytes  # deflated plane bytes
    count: int

    def planes(self) -> np.ndarray:
        raw = np.frombuffer(zlib.decompress(self.payload), dtype=np.uint8)
        return raw.reshape(self.width, self.count)


def byte_split(
    data: np.ndarray, plan: tuple[int, ...] = (2, 2, 4)
) -> list[ByteSplitProduct]:
    """Split float64s into byte-plane products per ``plan``.

    ``plan`` lists the byte widths of each product, summing to 8. The
    first product is the base (most significant bytes). Planes are
    stored transposed (plane-major) and deflated — the top bytes of
    neighboring floats are highly correlated, so the base plane
    compresses well.
    """
    if sum(plan) != 8 or any(w < 1 for w in plan):
        raise RefactoringError(f"plan must be positive widths summing to 8: {plan}")
    data = np.ascontiguousarray(data, dtype=np.float64)
    # Big-endian view puts the most significant byte first.
    be = data.astype(">f8").view(np.uint8).reshape(-1, 8)
    products = []
    offset = 0
    for width in plan:
        planes = np.ascontiguousarray(be[:, offset : offset + width].T)
        products.append(
            ByteSplitProduct(
                offset=offset,
                width=width,
                payload=zlib.compress(planes.tobytes(), 6),
                count=len(data),
            )
        )
        offset += width
    return products


def byte_restore(products: list[ByteSplitProduct]) -> np.ndarray:
    """Reconstruct from a prefix of the products (missing bytes = 0).

    Products must be a contiguous prefix (base first); order is
    normalized internally.
    """
    if not products:
        raise RefactoringError("need at least the base product")
    products = sorted(products, key=lambda p: p.offset)
    if products[0].offset != 0:
        raise RefactoringError("base product (offset 0) is required")
    count = products[0].count
    be = np.zeros((count, 8), dtype=np.uint8)
    expected = 0
    for p in products:
        if p.offset != expected:
            raise RefactoringError(
                f"non-contiguous products: expected offset {expected}, got {p.offset}"
            )
        if p.count != count:
            raise RefactoringError("product counts disagree")
        be[:, p.offset : p.offset + p.width] = p.planes().T
        expected += p.width
    return be.reshape(-1).view(">f8").astype(np.float64)
