"""Canopus write path: refactor → compress → place (paper Fig. 1, left).

The encoder drives one variable through the full pipeline:

1. :func:`~repro.core.refactor.refactor` produces the base, the deltas,
   and the vertex→triangle mappings;
2. the base and each delta are compressed with the configured
   floating-point codec; mappings and mesh geometry are stored
   losslessly (deflate);
3. everything is written through an ADIOS-like
   :class:`~repro.io.dataset.BPDataset` with preferred tiers from
   :func:`~repro.core.plan.plan_placement` (base on the fastest tier,
   deltas descending), subject to the capacity-bypass rule.

Deltas may be split into spatial chunks (``chunks > 1``) so analytics
can later fetch only the chunks overlapping a region of interest — the
"focused data retrieval" the paper sketches in §III-E.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.compress import get_codec
from repro.core.notation import (
    LevelScheme,
    chunk_key,
    delta_key,
    level_key,
    mapping_key,
    mesh_key,
)
from repro.core.encode_scheduler import BufferArena
from repro.core.plan import plan_placement
from repro.core.refactor import RefactorResult, refactor
from repro.errors import CanopusError
from repro.io.dataset import BPDataset
from repro.io.transports import Transport
from repro.mesh.edge_collapse import KERNELS
from repro.mesh.io import mesh_to_bytes
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["CanopusEncoder", "EncodeReport"]


@dataclass
class EncodeReport:
    """Measurements from one encode (write-path) run.

    ``decimation_seconds`` / ``delta_seconds`` / ``compress_seconds`` are
    wall times; ``io_seconds`` is the simulated tier write time. Sizes
    are per product key.
    """

    var: str
    scheme: LevelScheme
    original_bytes: int
    compressed_bytes: dict[str, int] = field(default_factory=dict)
    decimation_seconds: float = 0.0
    delta_seconds: float = 0.0
    compress_seconds: float = 0.0
    io_seconds: float = 0.0
    placed_tiers: dict[str, str] = field(default_factory=dict)

    @property
    def total_compressed_bytes(self) -> int:
        return sum(self.compressed_bytes.values())

    @property
    def payload_bytes(self) -> int:
        """Field/delta payload bytes only (no mesh/mapping metadata)."""
        return sum(
            n
            for key, n in self.compressed_bytes.items()
            if "/mesh" not in key and "/mapping" not in key
        )


def _spatial_chunks(vertices: np.ndarray, target: int) -> list[np.ndarray]:
    """Bin vertices into ≈``target`` spatially compact groups.

    A uniform grid over the bounding box; empty cells are dropped, so the
    returned group count can be below ``target``. Every vertex appears in
    exactly one group.
    """
    g = max(1, int(np.ceil(np.sqrt(target))))
    lo = vertices.min(axis=0)
    hi = vertices.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    cells = np.clip(
        ((vertices - lo) / span * g).astype(np.int64), 0, g - 1
    )
    flat = cells[:, 0] * g + cells[:, 1]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
    return [grp for grp in np.split(order, boundaries) if len(grp)]


class CanopusEncoder:
    """Configured Canopus write pipeline.

    Parameters
    ----------
    hierarchy:
        Target storage hierarchy.
    codec / codec_params:
        Floating-point compressor for base and delta payloads.
    estimator:
        ``Estimate()`` form (``"mean"`` or ``"barycentric"``).
    priority:
        Edge-collapse priority strategy.
    method:
        Decimation kernel: ``"serial"`` (Algorithm 1's heap loop,
        default) or ``"batched"`` (round-based vectorized kernel).
    workers:
        With ``workers > 1``, per-level delta computation and codec
        encodes overlap on a thread pool (NumPy and the codecs release
        the GIL in their hot loops).
    chunks:
        Number of spatial chunks per delta (1 = monolithic).
    total_error_budget:
        When set, guarantees ``|restored − original| <= budget`` at full
        accuracy by splitting the budget evenly across the base and
        every delta stage (errors add: one codec bound per applied
        product). Overrides ``codec_params["tolerance"]``. Interpreted
        as absolute, or as a fraction of the variable's range when
        ``codec_params["mode"] == "relative"``.
    transports:
        Optional per-tier transports (defaults to POSIX).
    placement:
        ``"walk"`` (paper §III-D fastest-first capacity walk, default)
        or ``"cost"`` (close-time cost-based
        :class:`~repro.storage.placement.PlacementEngine` plan).
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        *,
        codec: str = "zfp",
        codec_params: dict | None = None,
        estimator: str = "mean",
        priority: str = "length",
        method: str = "serial",
        workers: int | None = None,
        chunks: int = 1,
        total_error_budget: float | None = None,
        transports: dict[str, Transport] | None = None,
        use_plan_cache: bool = True,
        placement: str = "walk",
    ) -> None:
        if chunks < 1:
            raise CanopusError("chunks must be >= 1")
        if total_error_budget is not None and total_error_budget <= 0:
            raise CanopusError("total_error_budget must be positive")
        if method not in KERNELS:
            raise CanopusError(
                f"unknown decimation method {method!r}; "
                f"expected one of {KERNELS}"
            )
        if workers is not None and workers < 1:
            raise CanopusError("workers must be >= 1")
        self.hierarchy = hierarchy
        self.codec_name = codec
        self.codec_params = dict(codec_params or {})
        self.estimator = estimator
        self.priority = priority
        self.method = method
        self.workers = workers
        self.chunks = chunks
        self.total_error_budget = total_error_budget
        self.transports = transports
        self.use_plan_cache = use_plan_cache
        self.placement = placement
        # Replay-scratch pool shared across this encoder's encode()
        # calls: steady-state multi-variable / multi-step encodes reuse
        # the extended-id work buffers instead of reallocating per field.
        self._arena = BufferArena()
        # Fail fast on bad codec configuration.
        get_codec(codec, **self.codec_params)

    # ------------------------------------------------------------------
    def encode(
        self,
        dataset_name: str,
        var: str,
        mesh: TriangleMesh,
        data: np.ndarray,
        scheme: LevelScheme,
        *,
        dataset: BPDataset | None = None,
        close: bool = True,
    ) -> tuple[EncodeReport, RefactorResult]:
        """Run the full write path for one variable.

        An existing open ``dataset`` may be supplied to co-locate several
        variables in one BP dataset; set ``close=False`` to keep it open.
        """
        report = EncodeReport(
            var=var,
            scheme=scheme,
            original_bytes=int(np.asarray(data).nbytes),
        )
        with trace.span(
            "encode.refactor", "refactor",
            {"var": var, "levels": scheme.num_levels,
             "method": self.method},
        ):
            result = refactor(
                mesh, data, scheme,
                estimator=self.estimator, priority=self.priority,
                method=self.method, workers=self.workers,
                use_plan_cache=self.use_plan_cache,
                arena=self._arena,
            )
        report.decimation_seconds = result.decimation_seconds
        report.delta_seconds = result.delta_seconds

        ds = dataset or BPDataset.create(
            dataset_name, self.hierarchy, self.transports,
            placement=self.placement,
        )
        plan = plan_placement(scheme, len(self.hierarchy))
        # A "relative" tolerance is resolved ONCE against the input
        # variable's range, then applied as the same absolute bound to the
        # base and every delta. Re-normalizing per product would tighten
        # the bound on the low-amplitude deltas and throw away exactly the
        # compressibility the delta refactoring creates (paper Fig. 5).
        codec_params = dict(self.codec_params)
        if self.total_error_budget is not None:
            # One codec bound applies per product on the restore path
            # (base + N−1 deltas); splitting the budget evenly makes the
            # full-accuracy guarantee exact.
            codec_params["tolerance"] = (
                self.total_error_budget / scheme.num_levels
            )
        if codec_params.get("mode") == "relative":
            value_range = float(np.ptp(data)) if np.asarray(data).size else 1.0
            codec_params["tolerance"] = (
                codec_params.get("tolerance", 1e-6) * max(value_range, 1e-300)
            )
            codec_params["mode"] = "absolute"
        codec = get_codec(self.codec_name, **codec_params)

        from repro.io.query import ChunkStats

        data_arr = np.asarray(data)
        planes = data_arr.shape[0] if data_arr.ndim == 2 else 0
        ds.catalog.attrs.setdefault("variables", {})[var] = {
            "num_levels": scheme.num_levels,
            "step_ratio": scheme.step_ratio,
            "codec": self.codec_name,
            "codec_params": self.codec_params,
            "estimator": self.estimator,
            "chunks": self.chunks,
            "planes": planes,
            "counts": [m.num_vertices for m in result.meshes],
            # Whole-field value summary: lets aggregate predicates
            # (min/max/mean over the full domain) answer from the
            # catalog footer alone, with zero data I/O.
            "field_stats": ChunkStats.of(data_arr).as_dict(),
        }

        # Compress every field/delta payload first — with workers > 1
        # the codec encodes overlap on a thread pool (the codecs release
        # the GIL in their hot loops) — then place the blobs in the same
        # deterministic order as before.
        base_level = scheme.base_level
        chunk_groups: dict[int, list[np.ndarray]] = {}
        jobs: list[tuple[str, np.ndarray]] = [
            ("base", result.base_field.ravel())
        ]
        for lvl in scheme.delta_levels():
            delta = result.deltas[lvl]
            if self.chunks == 1:
                jobs.append((f"delta{lvl}", delta.ravel()))
            else:
                groups = _spatial_chunks(
                    result.meshes[lvl].vertices, self.chunks
                )
                chunk_groups[lvl] = groups
                for c, idx in enumerate(groups):
                    jobs.append((f"chunk{lvl}/{c}", delta[..., idx].ravel()))
        t0 = time.perf_counter()
        with trace.span(
            "encode.compress", "compress",
            {"var": var, "payloads": len(jobs),
             "workers": self.workers or 1},
        ):
            blobs = self._encode_payloads(codec, jobs)
        report.compress_seconds += time.perf_counter() - t0

        # Base product: field + mesh on the fastest tier.
        self._put(
            ds, report, level_key(var, base_level), blobs["base"],
            kind="base", level=base_level, count=result.base_field.size,
            codec=self.codec_name, tier=plan.base_tier,
            values=result.base_field,
        )
        self._put(
            ds, report, mesh_key(var, base_level),
            mesh_to_bytes(result.base_mesh),
            kind="mesh", level=base_level, tier=plan.base_tier,
        )

        # Delta products: delta (possibly chunked) + mapping + level mesh.
        for lvl in scheme.delta_levels():
            tier = plan.preferred_tier_for_delta(lvl)
            delta = result.deltas[lvl]
            if self.chunks == 1:
                self._put(
                    ds, report, delta_key(var, lvl), blobs[f"delta{lvl}"],
                    kind="delta", level=lvl, count=delta.size,
                    codec=self.codec_name, tier=tier,
                    values=delta,
                )
            else:
                # Spatial chunking: bin fine vertices on a 2-D grid so a
                # region-of-interest read touches only the chunks whose
                # bounding box intersects it ("focused data retrieval",
                # §III-E). Each chunk stores its vertex-index list (the
                # scatter map) next to its delta values.
                fine_mesh = result.meshes[lvl]
                groups = chunk_groups[lvl]
                for c, idx in enumerate(groups):
                    piece = delta[..., idx]
                    pts = fine_mesh.vertices[idx]
                    bbox = [
                        float(pts[:, 0].min()), float(pts[:, 1].min()),
                        float(pts[:, 0].max()), float(pts[:, 1].max()),
                    ]
                    attrs = {
                        "chunk": c, "bbox": bbox, "n_vertices": len(idx),
                    }
                    if lvl == 0:
                        # Level-0 chunks partition the *original* mesh
                        # vertices, so summarizing the input field over
                        # this chunk's vertex set is exact — window
                        # predicates (min/max/mean over a region) answer
                        # from the catalog without touching data.
                        attrs["field_stats"] = ChunkStats.of(
                            data_arr[..., idx]
                        ).as_dict()
                    self._put(
                        ds, report, chunk_key(var, lvl, c),
                        blobs[f"chunk{lvl}/{c}"],
                        kind="delta", level=lvl, count=piece.size,
                        codec=self.codec_name, tier=tier,
                        attrs=attrs,
                        values=piece,
                    )
                    self._put(
                        ds, report, chunk_key(var, lvl, c) + "/idx",
                        zlib.compress(idx.astype("<i8").tobytes(), 6),
                        kind="mapping", level=lvl, tier=tier,
                        attrs={"chunk": c},
                    )
                # Record how many chunks were actually written (empty
                # spatial bins are dropped).
                meta = ds.catalog.attrs["variables"][var]
                meta.setdefault("chunks_per_level", {})[str(lvl)] = len(groups)
            self._put(
                ds, report, mapping_key(var, lvl),
                result.mappings[lvl].to_bytes(),
                kind="mapping", level=lvl, tier=tier,
            )
            self._put(
                ds, report, mesh_key(var, lvl),
                mesh_to_bytes(result.meshes[lvl]),
                kind="mesh", level=lvl, tier=tier,
            )

        if close:
            clock = self.hierarchy.clock
            before = clock.elapsed
            with trace.span("encode.flush", "io", {"var": var}):
                ds.close()
            report.io_seconds = clock.elapsed - before
            for key in list(report.placed_tiers):
                report.placed_tiers[key] = ds.catalog.get(key).tier
        return report, result

    # ------------------------------------------------------------------
    def _encode_payloads(
        self, codec, jobs: list[tuple[str, np.ndarray]]
    ) -> dict[str, bytes]:
        """Encode all payload arrays, overlapped when workers > 1."""
        if self.workers and self.workers > 1 and len(jobs) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(jobs))
            ) as pool:
                encoded = pool.map(codec.encode, (arr for _, arr in jobs))
                return {tag: blob for (tag, _), blob in zip(jobs, encoded)}
        return {tag: codec.encode(arr) for tag, arr in jobs}

    # ------------------------------------------------------------------
    @staticmethod
    def _put(
        ds: BPDataset,
        report: EncodeReport,
        key: str,
        payload: bytes,
        *,
        kind: str,
        level: int,
        tier: int,
        count: int = 0,
        codec: str = "",
        attrs: dict | None = None,
        values: np.ndarray | None = None,
    ) -> None:
        rec = ds.write(
            key, payload, kind=kind, level=level, count=count,
            codec=codec, preferred_tier=tier, attrs=attrs,
        )
        if values is not None:
            # Catalog-resident value statistics enable query-driven chunk
            # pruning (repro.io.query) with zero data I/O.
            from repro.io.query import attach_stats

            attach_stats(rec, values)
        report.compressed_bytes[key] = len(payload)
        report.placed_tiers[key] = rec.tier
