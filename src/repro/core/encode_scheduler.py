"""Multiprocess streaming encode: shared-memory scheduler + fused kernels.

The write path (paper §III-C1) refactors per MPI rank with zero
inter-rank communication; PR 3 brought that spirit to one Python
process (plan replay + thread-parallel delta/compress), but the
GIL-bound replay loop caps throughput well below the hardware on
campaigns 100x fig scale. This module scales the encode across
*processes* while keeping products bit-identical:

* :class:`EncodeScheduler` shards encode work by ``(plane, timestep)``
  with **locality-aware assignment**: every timestep of one plane lands
  on the worker that already holds that plane's
  :class:`~repro.core.decimation_plan.DecimationPlan`. Plans are
  decimated at most once per mesh fingerprint per worker (through the
  worker's process-local plan cache — warm when forked) and replayed
  per task; they are never pickled per task.
* Field data moves worker-bound through
  :mod:`multiprocessing.shared_memory` slots instead of pickled
  ndarrays. A windowed producer keeps at most ``window`` timesteps of
  raw data in flight, so a campaign of any length encodes in
  O(window) resident memory; compressed products flow back to the
  single aggregating writer (the I/O stage stays serialized, like an
  aggregating transport).
* Each task runs the **fused** decimate→delta→compress kernel
  (:func:`fused_step_products`): one level in flight at a time, pooled
  scratch buffers from a :class:`BufferArena` instead of materializing
  every level and every delta before compressing.

Observability: ``encode.sched.*`` counters (tasks, shm_bytes,
plan_replays, plan_builds, window_stalls), ``encode.sched.peak_rss_bytes``
/ ``encode.sched.shm_hwm_bytes`` gauges, and per-worker task spans
folded into the active trace tree via ``Tracer.record_span``.
"""

from __future__ import annotations

import math
import multiprocessing
import queue as queue_mod
import resource
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.compress import get_codec
from repro.core.decimation_plan import (
    build_plan,
    get_plan_cache,
    mesh_fingerprint,
    plan_eligible,
)
from repro.core.delta import compute_delta
from repro.core.notation import LevelScheme
from repro.errors import CanopusError
from repro.mesh.io import mesh_to_bytes
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace
from repro.obs.metrics import get_registry

__all__ = [
    "BufferArena",
    "EncodeScheduler",
    "ScaleoutReport",
    "SchedPlane",
    "encode_campaign_scaleout",
    "fused_step_products",
]

_STOP = ("stop",)


# ---------------------------------------------------------------------------
# metrics helpers: bump both the global registry and the active tracer's
# (when they are distinct objects), so `repro trace` and the service
# metrics endpoint both see scheduler activity.
def _bump(name: str, n: int | float = 1) -> None:
    get_registry().counter(name).inc(n)
    tracer = trace.get_tracer()
    if tracer is not None and tracer.metrics is not get_registry():
        tracer.metrics.counter(name).inc(n)


def _gauge_max(name: str, value: float) -> None:
    """Set a high-water gauge (monotone within a process)."""
    registries = [get_registry()]
    tracer = trace.get_tracer()
    if tracer is not None and tracer.metrics is not get_registry():
        registries.append(tracer.metrics)
    for registry in registries:
        gauge = registry.gauge(name)
        if value > gauge.value:
            gauge.set(value)


def _peak_rss_bytes() -> int:
    """This process's peak resident set size (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


# ---------------------------------------------------------------------------
class BufferArena:
    """Pool of reusable float64 scratch buffers keyed by shape.

    The fused kernel's per-level working set (replay extended-id buffer,
    delta output) has a fixed set of shapes per plane, so after the
    first task every allocation is a pool hit — allocation churn on the
    steady-state encode path drops to the codec's internals.
    """

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_reused = 0

    def take(self, shape: tuple) -> np.ndarray:
        stack = self._free.get(shape)
        if stack:
            self.hits += 1
            buf = stack.pop()
            self.bytes_reused += buf.nbytes
            return buf
        self.misses += 1
        return np.empty(shape, dtype=np.float64)

    def give(self, buf: np.ndarray) -> None:
        self._free.setdefault(buf.shape, []).append(buf)

    @property
    def pooled_bytes(self) -> int:
        return sum(
            b.nbytes for stack in self._free.values() for b in stack
        )

    def clear(self) -> None:
        self._free.clear()


def fused_step_products(
    plan, data: np.ndarray, codec, *, arena: BufferArena | None = None,
    summaries: dict | None = None,
) -> tuple[dict[str, bytes], dict[str, float]]:
    """Fused decimate→delta→compress for one timestep of one plane.

    Walks the level chain keeping a single level in flight: replay the
    collapse lineage to the next level, compute the delta straight into
    a pooled buffer, compress it, drop the fine level, continue. Peak
    scratch is ~3 level fields instead of the ``2N`` arrays the staged
    path (`coarsen()` then `deltas_for()`) materializes.

    Returns ``({"base": ..., "delta{l}": ...}, stage_seconds)``. The
    payload bytes are bit-identical to the staged path: replay and
    :func:`~repro.core.delta.compute_delta` evaluate the same IEEE-754
    expressions on the same operands, pooled buffers or not.

    When ``summaries`` is a dict it is filled with one
    :meth:`~repro.io.query.ChunkStats.as_dict` per product (same keys
    as ``products``), computed here while each level's delta is still
    in a live buffer — the only point in the pipeline where the
    uncompressed values exist without an extra decode. The retrieval
    planner (:mod:`repro.query`) prunes delta levels from exactly these
    bounds, so they must describe the *pre-compression* values.
    """
    from repro.io.query import ChunkStats

    arena = arena if arena is not None else BufferArena()
    data = np.ascontiguousarray(data, dtype=np.float64)
    products: dict[str, bytes] = {}
    stats = {"replay_seconds": 0.0, "delta_seconds": 0.0,
             "compress_seconds": 0.0, "summary_seconds": 0.0}
    fine = data
    for lvl in plan.scheme.delta_levels():
        lineage = plan.lineages[lvl]
        scratch_shape = fine.shape[:-1] + (
            lineage.n_fine + lineage.num_merges,
        )
        scratch = arena.take(scratch_shape)
        t0 = time.perf_counter()
        coarse = lineage.replay(fine, scratch=scratch)
        t1 = time.perf_counter()
        arena.give(scratch)
        delta = arena.take(fine.shape)
        compute_delta(fine, coarse, plan.mappings[lvl], out=delta)
        t2 = time.perf_counter()
        if summaries is not None:
            summaries[f"delta{lvl}"] = ChunkStats.of(delta).as_dict()
        t2b = time.perf_counter()
        products[f"delta{lvl}"] = codec.encode(delta.ravel())
        t3 = time.perf_counter()
        arena.give(delta)
        stats["replay_seconds"] += t1 - t0
        stats["delta_seconds"] += t2 - t1
        stats["summary_seconds"] += t2b - t2
        stats["compress_seconds"] += t3 - t2b
        fine = coarse
    if summaries is not None:
        t0 = time.perf_counter()
        summaries["base"] = ChunkStats.of(fine).as_dict()
        stats["summary_seconds"] += time.perf_counter() - t0
    t0 = time.perf_counter()
    products["base"] = codec.encode(fine.ravel())
    stats["compress_seconds"] += time.perf_counter() - t0
    return products, stats


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SchedPlane:
    """One shard source: a mesh whose timesteps form encode tasks."""

    plane_id: int
    mesh: TriangleMesh
    scheme: LevelScheme


@dataclass
class ScaleoutReport:
    """Measurements of one scheduler run."""

    tasks: int = 0
    planes: int = 0
    processes: int = 0
    window: int = 0
    start_method: str = "inline"
    wall_seconds: float = 0.0
    #: cumulative raw bytes shipped worker-bound through shared memory
    shm_bytes: int = 0
    #: high-water mark of concurrently allocated shared-memory slots
    shm_hwm_bytes: int = 0
    window_stalls: int = 0
    plan_builds: int = 0
    plan_replays: int = 0
    compressed_bytes: int = 0
    #: max peak RSS across the parent and every worker process
    peak_rss_bytes: int = 0
    per_task_seconds: list[float] = field(default_factory=list)
    worker_stats: list[dict] = field(default_factory=list)
    #: campaign frontend only: ``{step: (compressed_bytes, stage_stats)}``
    step_records: dict = field(default_factory=dict)

    @property
    def vertices_encoded(self) -> int:
        return int(self._vertices)

    _vertices: int = 0

    def throughput_vertices_per_second(self) -> float:
        return self._vertices / max(self.wall_seconds, 1e-9)


# ---------------------------------------------------------------------------
# worker side
def _attach_shm(name: str):
    """Attach to a parent-owned segment without adopting its lifetime.

    Attaching normally re-registers the segment with the (shared)
    resource tracker, so a worker exiting — or unregistering — would
    clobber the parent's registration and the parent's unlink would
    then trip the tracker. Suppressing the register during attach keeps
    ownership squarely with the parent, which unlinks everything at
    shutdown. (Python 3.13's ``track=False`` does this natively; this
    supports older interpreters.)
    """
    from multiprocessing import resource_tracker, shared_memory

    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


def _shm_ndarray(shm, shape: tuple, dtype: str, offset: int = 0) -> np.ndarray:
    count = int(math.prod(shape)) if shape else 1
    arr = np.frombuffer(
        shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
    )
    return arr.reshape(shape)


def _build_plane_state(
    mesh: TriangleMesh, scheme: LevelScheme, cfg: dict
) -> tuple:
    """(plan, codec, built_flag, geometry_payload) for one plane."""
    cache = get_plan_cache()
    if plan_eligible(cfg["priority"]):
        before = cache.stats["misses"]
        plan = cache.get_or_build(
            mesh, scheme, method=cfg["method"], priority=cfg["priority"],
            estimator=cfg["estimator"],
        )
        built = cache.stats["misses"] > before
    else:
        # Data-dependent priorities degenerate to geometry-only here
        # (the stream's fields are not known at plane-setup time),
        # matching CampaignWriter's campaign-setup semantics.
        plan = build_plan(
            mesh, scheme, method=cfg["method"], priority=cfg["priority"],
            estimator=cfg["estimator"],
        )
        built = True
    codec = get_codec(cfg["codec"], **cfg["codec_params"])
    geom = {
        "fingerprint": mesh_fingerprint(mesh),
        "built": built,
        "counts": [m.num_vertices for m in plan.meshes],
        "mesh_blobs": [mesh_to_bytes(m) for m in plan.meshes],
        "mapping_blobs": [m.to_bytes() for m in plan.mappings],
    }
    return plan, codec, built, geom


def _worker_main(worker_id: int, task_q, result_q, cfg: dict) -> None:
    """Worker loop: own plans for assigned planes, fuse-encode tasks.

    Protocol (task_q, FIFO): ``("plane", ...)`` registers a plane (mesh
    arrives via a one-shot shm block), ``("task", ...)`` encodes one
    timestep read from a windowed shm slot, ``("stop",)`` drains out.
    Every reply carries ``worker_id`` so the parent can fold per-worker
    spans and counters into its trace.
    """
    planes: dict[int, tuple] = {}
    attached: dict[str, object] = {}
    arena = BufferArena()
    counters = {
        "worker_id": worker_id, "tasks": 0, "plan_builds": 0,
        "plan_replays": 0, "arena_hits": 0, "arena_bytes_reused": 0,
    }
    try:
        while True:
            msg = task_q.get()
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "plane":
                (_, plane_id, shm_name, v_shape, v_dtype, t_shape,
                 t_dtype, num_levels, step_ratio) = msg
                shm = _attach_shm(shm_name)
                v_bytes = int(math.prod(v_shape)) * np.dtype(v_dtype).itemsize
                vertices = _shm_ndarray(shm, v_shape, v_dtype).copy()
                triangles = _shm_ndarray(
                    shm, t_shape, t_dtype, offset=v_bytes
                ).copy()
                try:
                    shm.close()  # one-shot block; parent unlinks on geom
                except BufferError:  # pragma: no cover - views were copied
                    pass
                mesh = TriangleMesh(vertices, triangles, validate=False)
                scheme = LevelScheme(num_levels, step_ratio)
                plan, codec, built, geom = _build_plane_state(
                    mesh, scheme, cfg
                )
                counters["plan_builds"] += int(built)
                planes[plane_id] = (plan, codec)
                geom["mesh_shm"] = shm_name
                result_q.put(("geom", worker_id, plane_id, geom))
            elif kind == "task":
                _, seq, plane_id, step, shm_name, shape = msg
                plan, codec = planes[plane_id]
                if shm_name not in attached:
                    attached[shm_name] = _attach_shm(shm_name)
                data = _shm_ndarray(attached[shm_name], shape, "float64")
                t0 = time.perf_counter()
                summaries: dict = {}
                products, stats = fused_step_products(
                    plan, data, codec, arena=arena, summaries=summaries
                )
                stats["wall_seconds"] = time.perf_counter() - t0
                # Summaries ride inside the stats dict so the sink
                # protocol (geometry/products) keeps its arity for
                # every existing sink implementation.
                stats["summaries"] = summaries
                del data
                counters["tasks"] += 1
                counters["plan_replays"] += 1
                result_q.put(
                    ("done", worker_id, seq, plane_id, step, products, stats)
                )
    except Exception:
        result_q.put(("error", worker_id, traceback.format_exc()))
    finally:
        counters["arena_hits"] = arena.hits
        counters["arena_bytes_reused"] = arena.bytes_reused
        counters["peak_rss_bytes"] = _peak_rss_bytes()
        arena.clear()
        for shm in attached.values():
            try:
                shm.close()
            except BufferError:
                pass
        result_q.put(("bye", worker_id, counters))


# ---------------------------------------------------------------------------
# parent side
class _SlotPool:
    """Windowed pool of shared-memory slots owned by the parent.

    At most ``window`` slots exist; a slot is re-used verbatim when the
    next task fits, grown (unlink + re-create) when it does not. The
    pool's total allocation is the streaming path's resident footprint
    for raw field data — ``shm_hwm_bytes`` reports its high water.
    """

    def __init__(self, window: int) -> None:
        from multiprocessing import shared_memory

        self._shared_memory = shared_memory
        self.window = window
        self._free: list = []
        self._live: dict[str, object] = {}
        self.total_bytes = 0
        self.hwm_bytes = 0

    def __len__(self) -> int:
        return len(self._live)

    @property
    def in_use(self) -> int:
        return len(self._live) - len(self._free)

    def acquire(self, nbytes: int):
        for i, shm in enumerate(self._free):
            if shm.size >= nbytes:
                return self._free.pop(i)
        if self._free:
            # Every free slot is too small: grow the smallest one.
            shm = min(self._free, key=lambda s: s.size)
            self._free.remove(shm)
            self._destroy(shm)
        if len(self._live) >= self.window:
            raise CanopusError(
                "slot pool over-acquired beyond its window"
            )  # pragma: no cover - guarded by the scheduler loop
        shm = self._shared_memory.SharedMemory(create=True, size=nbytes)
        self._live[shm.name] = shm
        self.total_bytes += shm.size
        self.hwm_bytes = max(self.hwm_bytes, self.total_bytes)
        return shm

    def release(self, name: str) -> None:
        self._free.append(self._live[name])

    def _destroy(self, shm) -> None:
        del self._live[shm.name]
        self.total_bytes -= shm.size
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, BufferError):
            pass

    def destroy_all(self) -> None:
        self._free.clear()
        for shm in list(self._live.values()):
            self._destroy(shm)


class EncodeScheduler:
    """Locality-aware process-pool scheduler for streaming encodes.

    Parameters
    ----------
    processes:
        Worker process count; ``None`` or ``<= 1`` runs every task
        inline (sharing this process's plan cache), which is also the
        degenerate path the multiprocess results are bit-compared
        against.
    window:
        Maximum timesteps of raw field data in flight at once. The
        producer blocks (``encode.sched.window_stalls``) when the
        window is full, so resident memory for raw data is
        O(window x field size) no matter how long the stream is.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None`` uses the
        platform default. Forked workers inherit a warm plan cache and
        skip decimation entirely; spawned workers decimate once per
        assigned plane.
    codec / codec_params / estimator / priority / method:
        Encode configuration, applied identically by every worker.
        ``"relative"`` codec tolerances must be resolved by the caller
        before scheduling (workers never see the full stream, so they
        cannot normalize consistently).
    """

    def __init__(
        self,
        *,
        processes: int | None = None,
        window: int = 4,
        start_method: str | None = None,
        codec: str = "zfp",
        codec_params: dict | None = None,
        estimator: str = "mean",
        priority: str = "length",
        method: str = "serial",
    ) -> None:
        if processes is not None and processes < 1:
            raise CanopusError("processes must be >= 1")
        if window < 1:
            raise CanopusError("window must be >= 1")
        self.processes = processes
        self.window = window
        self.start_method = start_method
        self.cfg = {
            "codec": codec,
            "codec_params": dict(codec_params or {}),
            "estimator": estimator,
            "priority": priority,
            "method": method,
        }
        # Fail fast on bad codec configuration (workers would otherwise
        # each discover it after process startup).
        get_codec(codec, **self.cfg["codec_params"])

    # ------------------------------------------------------------------
    def run(self, planes, tasks, sink) -> ScaleoutReport:
        """Encode a ``(plane_id, step, field)`` stream through ``sink``.

        ``planes`` is a list of :class:`SchedPlane`; ``tasks`` any
        iterable (a generator keeps the stream out-of-core) yielding
        ``(plane_id, step, ndarray)``. ``sink.geometry(plane_id, geom)``
        fires once per plane; ``sink.products(plane_id, step, products,
        stats)`` fires exactly once per task **in submission order**
        regardless of worker completion order — the write stage stays a
        single serialized aggregator.
        """
        planes = list(planes)
        if not planes:
            raise CanopusError("scheduler needs at least one plane")
        ids = [p.plane_id for p in planes]
        if len(set(ids)) != len(ids):
            raise CanopusError(f"duplicate plane ids: {sorted(ids)}")
        mp_run = self.processes is not None and self.processes > 1
        t0 = time.perf_counter()
        with trace.span(
            "encode.sched.run", "refactor",
            {"processes": self.processes or 1, "window": self.window,
             "planes": len(planes), "mode": "mp" if mp_run else "inline"},
        ) as root:
            if mp_run:
                report = self._run_mp(planes, tasks, sink, root)
            else:
                report = self._run_inline(planes, tasks, sink)
        report.wall_seconds = time.perf_counter() - t0
        report.planes = len(planes)
        report.window = self.window
        report.peak_rss_bytes = max(report.peak_rss_bytes, _peak_rss_bytes())
        _bump("encode.sched.tasks", report.tasks)
        _bump("encode.sched.shm_bytes", report.shm_bytes)
        _bump("encode.sched.plan_replays", report.plan_replays)
        _bump("encode.sched.plan_builds", report.plan_builds)
        _bump("encode.sched.window_stalls", report.window_stalls)
        _gauge_max("encode.sched.peak_rss_bytes", report.peak_rss_bytes)
        _gauge_max("encode.sched.shm_hwm_bytes", report.shm_hwm_bytes)
        return report

    # ------------------------------------------------------------------
    def _run_inline(self, planes, tasks, sink) -> ScaleoutReport:
        report = ScaleoutReport(processes=1, start_method="inline")
        arena = BufferArena()
        states: dict[int, tuple] = {}
        specs = {p.plane_id: p for p in planes}
        for plane_id, step, data in tasks:
            if plane_id not in states:
                spec = specs[plane_id]
                plan, codec, built, geom = _build_plane_state(
                    spec.mesh, spec.scheme, self.cfg
                )
                states[plane_id] = (plan, codec)
                report.plan_builds += int(built)
                sink.geometry(plane_id, geom)
            plan, codec = states[plane_id]
            t0 = time.perf_counter()
            summaries: dict = {}
            products, stats = fused_step_products(
                plan, data, codec, arena=arena, summaries=summaries
            )
            stats["wall_seconds"] = time.perf_counter() - t0
            stats["summaries"] = summaries
            report.tasks += 1
            report.plan_replays += 1
            report._vertices += int(np.asarray(data).shape[-1])
            report.per_task_seconds.append(stats["wall_seconds"])
            sink.products(plane_id, step, products, stats)
        return report

    # ------------------------------------------------------------------
    def _run_mp(self, planes, tasks, sink, root_span) -> ScaleoutReport:
        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        nproc = self.processes
        report = ScaleoutReport(
            processes=nproc,
            start_method=self.start_method or ctx.get_start_method(),
        )
        # Locality policy: planes round-robin over workers, every task
        # of a plane follows its plane to the same worker — the worker
        # that already decimated (or inherited) that plane's plan.
        owner = {
            p.plane_id: i % nproc for i, p in enumerate(
                sorted(planes, key=lambda p: p.plane_id)
            )
        }
        specs = {p.plane_id: p for p in planes}
        task_qs = [ctx.Queue() for _ in range(nproc)]
        result_q = ctx.Queue()
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(i, task_qs[i], result_q, self.cfg),
                name=f"repro-encw-{i}",
                daemon=True,
            )
            for i in range(nproc)
        ]
        for w in workers:
            w.start()

        pool = _SlotPool(self.window)
        mesh_blocks: dict[str, object] = {}
        pending: dict[int, tuple] = {}
        in_flight: dict[int, str] = {}  # seq -> slot name
        tracer = trace.get_tracer()
        parent_id = getattr(root_span, "span_id", None)
        next_emit = 0
        submitted = 0
        byes = 0

        def ship_plane(plane_id: int) -> None:
            from multiprocessing import shared_memory

            spec = specs[plane_id]
            v = np.ascontiguousarray(spec.mesh.vertices, dtype=np.float64)
            t = np.ascontiguousarray(spec.mesh.triangles, dtype=np.int64)
            shm = shared_memory.SharedMemory(
                create=True, size=v.nbytes + t.nbytes
            )
            shm.buf[: v.nbytes] = v.tobytes()
            shm.buf[v.nbytes: v.nbytes + t.nbytes] = t.tobytes()
            mesh_blocks[shm.name] = shm
            task_qs[owner[plane_id]].put(
                ("plane", plane_id, shm.name, v.shape, "float64",
                 t.shape, "int64", spec.scheme.num_levels,
                 spec.scheme.step_ratio)
            )

        def emit_ready() -> None:
            nonlocal next_emit
            while next_emit in pending:
                plane_id, step, products, stats = pending.pop(next_emit)
                sink.products(plane_id, step, products, stats)
                next_emit += 1

        def handle(msg) -> None:
            nonlocal byes
            kind = msg[0]
            if kind == "done":
                _, worker_id, seq, plane_id, step, products, stats = msg
                pool.release(in_flight.pop(seq))
                pending[seq] = (plane_id, step, products, stats)
                report.per_task_seconds.append(stats["wall_seconds"])
                if tracer is not None:
                    end = time.perf_counter() - tracer.wall_origin
                    span_stats = {
                        k: v for k, v in stats.items() if k != "summaries"
                    }
                    tracer.record_span(
                        "encode.sched.task", "refactor",
                        wall_start=end - stats["wall_seconds"],
                        wall_end=end,
                        thread=f"repro-encw-{worker_id}",
                        parent_id=parent_id,
                        args={"plane": plane_id, "step": step, **span_stats},
                    )
                emit_ready()
            elif kind == "geom":
                _, worker_id, plane_id, geom = msg
                shm = mesh_blocks.pop(geom.pop("mesh_shm"), None)
                if shm is not None:
                    shm.close()
                    shm.unlink()
                report.plan_builds += int(geom["built"])
                sink.geometry(plane_id, geom)
            elif kind == "bye":
                _, worker_id, counters = msg
                byes += 1
                report.worker_stats.append(counters)
                report.plan_replays += counters["plan_replays"]
                report.peak_rss_bytes = max(
                    report.peak_rss_bytes, counters["peak_rss_bytes"]
                )
            elif kind == "error":
                _, worker_id, tb = msg
                raise CanopusError(
                    f"encode worker {worker_id} failed:\n{tb}"
                )

        def drain_one(block: bool) -> bool:
            try:
                msg = result_q.get(timeout=1.0 if block else 0.0)
            except queue_mod.Empty:
                if block:
                    for w in workers:
                        if not w.is_alive() and w.exitcode not in (0, None):
                            raise CanopusError(
                                f"encode worker {w.name} died "
                                f"(exit {w.exitcode})"
                            )
                return False
            handle(msg)
            return True

        try:
            for plane_id in sorted(specs):
                ship_plane(plane_id)
            for plane_id, step, data in tasks:
                data = np.ascontiguousarray(data, dtype=np.float64)
                # Window back-pressure: never more than `window` raw
                # timesteps resident; drain results until a slot frees.
                if pool.in_use >= self.window:
                    report.window_stalls += 1
                    while pool.in_use >= self.window:
                        drain_one(block=True)
                while drain_one(block=False):
                    pass  # keep the reorder buffer and slots shallow
                slot = pool.acquire(data.nbytes)
                slot.buf[: data.nbytes] = data.tobytes()
                in_flight[submitted] = slot.name
                task_qs[owner[plane_id]].put(
                    ("task", submitted, plane_id, step, slot.name,
                     data.shape)
                )
                report.tasks += 1
                report.shm_bytes += data.nbytes
                report._vertices += int(data.shape[-1])
                submitted += 1
            for q in task_qs:
                q.put(_STOP)
            while byes < nproc or in_flight:
                drain_one(block=True)
            emit_ready()
            if next_emit != submitted:  # pragma: no cover - invariant
                raise CanopusError(
                    f"scheduler lost results: emitted {next_emit} of "
                    f"{submitted}"
                )
        finally:
            for q in task_qs:
                try:  # idempotent stop so error paths don't hang joins
                    q.put_nowait(_STOP)
                except Exception:
                    pass
            for w in workers:
                w.join(timeout=5.0)
                if w.is_alive():
                    w.terminate()
            report.shm_hwm_bytes = pool.hwm_bytes
            pool.destroy_all()
            for shm in mesh_blocks.values():
                shm.close()
                shm.unlink()
            for q in task_qs + [result_q]:
                q.close()
        return report


# ---------------------------------------------------------------------------
class _CampaignSink:
    """Aggregating writer: scheduler products → a campaign BP dataset.

    Produces exactly the layout :class:`~repro.core.campaign.CampaignWriter`
    writes (shared geometry once under ``GEOM_VAR``, base + deltas per
    step), so :class:`~repro.core.campaign.CampaignReader` restores the
    result unchanged and byte-compares clean against the in-process path.
    """

    def __init__(self, dataset, var, scheme, placement_plan, codec_name):
        from repro.core.notation import (
            GEOM_VAR, mapping_key, mesh_key, step_key,
        )

        self._keys = (GEOM_VAR, mapping_key, mesh_key, step_key)
        self.dataset = dataset
        self.var = var
        self.scheme = scheme
        self.plan = placement_plan
        self.codec_name = codec_name
        self.steps: list[int] = []
        self.compressed_bytes = 0
        self.step_records: dict[int, tuple[int, dict]] = {}

    def geometry(self, plane_id: int, geom: dict) -> None:
        geom_var, mapping_key, mesh_key, _ = self._keys
        self.dataset.catalog.attrs["campaign"]["counts"] = list(
            geom["counts"]
        )
        for lvl, blob in enumerate(geom["mesh_blobs"]):
            tier = (
                self.plan.base_tier
                if lvl == self.scheme.base_level
                else self.plan.preferred_tier_for_delta(lvl)
            )
            self.dataset.write(
                mesh_key(geom_var, lvl), blob,
                kind="mesh", level=lvl, preferred_tier=tier,
            )
        for lvl, blob in enumerate(geom["mapping_blobs"]):
            self.dataset.write(
                mapping_key(geom_var, lvl), blob,
                kind="mapping", level=lvl,
                preferred_tier=self.plan.preferred_tier_for_delta(lvl),
            )

    def products(
        self, plane_id: int, step: int, products: dict, stats: dict
    ) -> None:
        _, _, _, step_key = self._keys
        # The fused kernel ships per-product value summaries inside the
        # stats dict; attach them to the catalog records it writes so
        # the retrieval planner works on a cold-opened campaign.
        summaries = stats.pop("summaries", None) or {}
        before = self.compressed_bytes
        base_level = self.scheme.base_level
        blob = products["base"]
        rec = self.dataset.write(
            step_key(self.var, step, base_level, "base"), blob,
            kind="base", level=base_level, codec=self.codec_name,
            preferred_tier=self.plan.base_tier,
        )
        if "base" in summaries:
            rec.attrs["stats"] = summaries["base"]
        self.compressed_bytes += len(blob)
        for lvl in self.scheme.delta_levels():
            blob = products[f"delta{lvl}"]
            rec = self.dataset.write(
                step_key(self.var, step, lvl, "delta"), blob,
                kind="delta", level=lvl, codec=self.codec_name,
                preferred_tier=self.plan.preferred_tier_for_delta(lvl),
            )
            if f"delta{lvl}" in summaries:
                rec.attrs["stats"] = summaries[f"delta{lvl}"]
            self.compressed_bytes += len(blob)
        self.steps.append(step)
        self.step_records[step] = (self.compressed_bytes - before, stats)
        self.dataset.catalog.attrs["campaign"]["steps"] = sorted(self.steps)


def encode_campaign_scaleout(
    hierarchy,
    name: str,
    var: str,
    mesh: TriangleMesh,
    scheme: LevelScheme,
    steps,
    *,
    processes: int | None = None,
    window: int = 4,
    start_method: str | None = None,
    codec: str = "zfp",
    codec_params: dict | None = None,
    estimator: str = "mean",
    priority: str = "length",
    method: str = "serial",
    placement: str = "walk",
) -> tuple[ScaleoutReport, float]:
    """Encode a timestep campaign on the process-pool scheduler.

    ``steps`` is any iterable yielding ``(step, field)`` pairs (pass a
    generator to stream an out-of-core campaign: at most ``window``
    raw timesteps are resident at once). The written dataset is
    byte-compatible with :class:`~repro.core.campaign.CampaignWriter` —
    same keys, same products, bit-identical payloads — and is read back
    with :class:`~repro.core.campaign.CampaignReader`.

    Returns ``(report, io_seconds)`` where ``io_seconds`` is the
    simulated write time realized at close.
    """
    from repro.core.plan import plan_placement
    from repro.io.dataset import BPDataset

    codec_params = dict(codec_params or {})
    scheduler = EncodeScheduler(
        processes=processes, window=window, start_method=start_method,
        codec=codec, codec_params=codec_params, estimator=estimator,
        priority=priority, method=method,
    )
    dataset = BPDataset.create(name, hierarchy, placement=placement)
    dataset.catalog.attrs["campaign"] = {
        "var": var,
        "num_levels": scheme.num_levels,
        "step_ratio": scheme.step_ratio,
        "codec": codec,
        "counts": [],
        "steps": [],
    }
    sink = _CampaignSink(
        dataset, var, scheme, plan_placement(scheme, len(hierarchy)), codec
    )
    plane = SchedPlane(plane_id=0, mesh=mesh, scheme=scheme)

    def task_stream():
        for step, data in steps:
            yield 0, int(step), data

    clock = hierarchy.clock
    before = clock.elapsed
    try:
        report = scheduler.run([plane], task_stream(), sink)
    finally:
        dataset.close()
    report.compressed_bytes = sink.compressed_bytes
    report.step_records = sink.step_records
    return report, clock.elapsed - before
