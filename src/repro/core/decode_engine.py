"""Parallel read-side decode engine (the write path's mirror).

PR 3 gave the write side a batched kernel + plan replay + a parallel
compress stage; this module does the same for the paper's analytics loop
(Fig. 1 right, Alg. 3). A :class:`DecodeEngine` wraps one open dataset
and restores *many* variables (or one variable many times) as fast as
the hardware allows:

* **Fan-out** — ``restore_many()`` restores multiple variables
  concurrently on a thread pool. Before any worker starts, every
  chain's byte ranges are hinted to the retrieval engine as one
  overlapped batch, so the simulated I/O charge is deterministic (it is
  made at submit time, independent of thread scheduling) and workers
  overlap decompression with each other's fetches.
* **Shared caches** — the engine turns on the process-wide
  :class:`~repro.core.restored_cache.GeometryCache` (each mesh/mapping
  decoded once per dataset content, not once per decoder) and
  :class:`~repro.core.restored_cache.RestoredLevelCache` (a second
  session asking for an already-restored (var, level) gets it back with
  zero I/O; a finer request warm-starts from the closest cached level).
* **Parallel chunk decode** — the underlying
  :class:`~repro.core.decoder.CanopusDecoder` decodes spatial chunks of
  one delta on the same worker budget (disjoint vertex sets, so the
  scatter is order-independent).

Results are bit-identical to the serial seed path: parallelism changes
*when* bytes move and which CPU decodes them, never what is applied.

Filtered retrieval (``region`` / ``min_significance``) composes with the
fan-out; filtered chains are cached under their exact filter key and
never substituted for full-accuracy results, and the upfront prefetch is
skipped for them (the engine cannot know which chunks the filter keeps —
same rule as :class:`~repro.core.progressive.ProgressiveReader`).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.decoder import CanopusDecoder, LevelData, PhaseTimings
from repro.core.restored_cache import (
    RestoredLevelCache,
    dataset_fingerprint,
    get_restored_cache,
)
from repro.errors import RestorationError
from repro.io.dataset import BPDataset
from repro.obs import context as obs_context
from repro.obs import trace

__all__ = ["DecodeEngine"]


def _counter(name: str, n: int = 1) -> None:
    tracer = trace.get_tracer()
    if tracer is not None:
        tracer.metrics.counter(name).inc(n)


class DecodeEngine:
    """Concurrent multi-variable restore over one open dataset.

    Parameters
    ----------
    dataset:
        The open dataset to decode from.
    workers:
        Thread-pool width for the variable fan-out *and* the per-delta
        chunk decode. ``None`` inherits the retrieval engine's width.
    use_restored_cache:
        Consult/publish the process-wide restored-level cache.
    pipeline / lookahead:
        Forwarded to :meth:`CanopusDecoder.restore_to` — prefetch the
        next ``lookahead`` levels while the current delta decodes.
    """

    def __init__(
        self,
        dataset: BPDataset,
        *,
        workers: int | None = None,
        use_restored_cache: bool = True,
        pipeline: bool = True,
        lookahead: int = 2,
    ) -> None:
        if workers is None:
            workers = getattr(dataset.engine, "workers", 4)
        if workers < 1:
            raise RestorationError("DecodeEngine workers must be >= 1")
        self.dataset = dataset
        self.workers = int(workers)
        self.use_restored_cache = use_restored_cache
        self.pipeline = pipeline
        self.lookahead = lookahead
        self.decoder = CanopusDecoder(
            dataset, workers=workers, share_geometry=True
        )
        #: Content fingerprint of the open catalog, snapshotted once.
        #: Every cache key below derives from this string — the
        #: tenant-visible content identity — never from handle identity,
        #: so any two engines (sessions, service tenants) over the same
        #: bytes share restored-level entries.
        self.fingerprint = dataset_fingerprint(dataset)

    # ------------------------------------------------------------------
    @property
    def _cache(self) -> RestoredLevelCache | None:
        return get_restored_cache() if self.use_restored_cache else None

    def variables(self) -> list[str]:
        return self.decoder.variables()

    # ------------------------------------------------------------------
    def restore(
        self,
        var: str,
        level: int = 0,
        *,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ) -> LevelData:
        """Restore one variable to ``level`` (cached, pipelined)."""
        with trace.span(
            "decode.restore", "restore",
            {"var": var, "level": level,
             "filtered": region is not None or min_significance > 0.0},
        ):
            if region is None and min_significance == 0.0:
                return self.decoder.restore_to(
                    var,
                    level,
                    pipeline=self.pipeline,
                    lookahead=self.lookahead,
                    use_cache=self.use_restored_cache,
                )
            return self._restore_filtered(var, level, region, min_significance)

    def _restore_filtered(
        self,
        var: str,
        level: int,
        region: tuple[np.ndarray, np.ndarray] | None,
        min_significance: float,
    ) -> LevelData:
        """Filtered chain: the filter applies at *every* refinement step.

        Warm-starting from an unfiltered cached level would apply the
        upper deltas unfiltered — a different (finer) result than the
        filtered chain from the base — so filtered chains only ever
        exact-hit entries stored under the same filter key.
        """
        decoder = self.decoder
        scheme = decoder.scheme(var)
        scheme.validate_level(level)
        cache = self._cache
        if cache is not None:
            hit = cache.get(
                cache.key_for(
                    self.fingerprint, var, level,
                    region=region, min_significance=min_significance,
                )
            )
            if hit is not None:
                timings = PhaseTimings()
                mesh = decoder._read_mesh(var, level, timings)
                return LevelData(
                    var=var,
                    level=level,
                    mesh=mesh,
                    field=hit.field.copy(),
                    timings=timings,
                    refined_mask=(
                        None
                        if hit.refined_mask is None
                        else hit.refined_mask.copy()
                    ),
                    last_delta_rms=hit.last_delta_rms,
                )
        state = decoder.read_base(var)
        while state.level > level:
            state = decoder.refine(
                state, region=region, min_significance=min_significance
            )
        if cache is not None:
            cache.put(
                cache.key_for(
                    self.fingerprint, var, level,
                    region=region, min_significance=min_significance,
                ),
                state.field,
                refined_mask=state.refined_mask,
                last_delta_rms=state.last_delta_rms,
            )
        return state

    # ------------------------------------------------------------------
    def _chain_keys(self, var: str, level: int) -> list[str]:
        """Every catalog key an unfiltered restore chain will touch."""
        decoder = self.decoder
        scheme = decoder.scheme(var)
        keys = list(decoder.base_keys(var))
        for lvl in range(scheme.base_level - 1, level - 1, -1):
            keys.extend(decoder.level_keys(var, lvl))
        return keys

    def restore_many(
        self,
        variables,
        level: int = 0,
        *,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ) -> dict[str, LevelData]:
        """Restore several variables concurrently; ``{var: LevelData}``.

        Bit-identical to calling :meth:`restore` serially for each
        variable. For unfiltered requests every chain's byte ranges are
        prefetched as one overlapped batch *before* the fan-out, making
        the simulated I/O charge independent of thread scheduling.
        """
        variables = list(variables)
        if not variables:
            return {}
        filtered = region is not None or min_significance > 0.0
        with trace.span(
            "decode.restore_many", "restore",
            {"vars": len(variables), "level": level, "workers": self.workers},
        ):
            _counter("decode.restore_many.calls")
            _counter("decode.restore_many.vars", len(variables))
            if not filtered:
                cache = self._cache
                keys: list[str] = []
                for var in variables:
                    if cache is not None and cache.has(
                        cache.key_for(self.fingerprint, var, level)
                    ):
                        continue  # no bytes needed for this chain
                    keys.extend(self._chain_keys(var, level))
                if keys:
                    self.dataset.prefetch(
                        keys, label="decode_engine:restore_many"
                    )

            def _one(var: str) -> LevelData:
                return self.restore(
                    var, level,
                    region=region, min_significance=min_significance,
                )

            if self.workers > 1 and len(variables) > 1:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(variables)),
                    thread_name_prefix="repro-restore",
                ) as pool:
                    results = list(
                        pool.map(obs_context.propagate(_one), variables)
                    )
            else:
                results = [_one(v) for v in variables]
        return dict(zip(variables, results))
