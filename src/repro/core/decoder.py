"""Canopus read path: retrieve → decompress → restore (paper Fig. 1, right).

Analytics choose an accuracy level; the decoder fetches the base from
the fastest tier, then walks deltas down from slower tiers, restoring
one level per step (paper Alg. 3). Per-phase costs are tracked
separately — I/O (simulated, tier-model), decompression (wall), and
restoration (wall) — because those are exactly the bars of Figs. 9–11.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.compress import decode_auto
from repro.core.delta import apply_delta
from repro.core.mapping import LevelMapping
from repro.core.notation import (
    LevelScheme,
    chunk_key,
    delta_key,
    level_key,
    mapping_key,
    mesh_key,
)
from repro.core.restored_cache import get_geometry_cache, get_restored_cache
from repro.errors import RestorationError
from repro.io.dataset import BPDataset
from repro.mesh.io import mesh_from_bytes
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import context as obs_context
from repro.obs import trace

__all__ = ["PhaseTimings", "LevelData", "CanopusDecoder"]


@dataclass
class PhaseTimings:
    """Accumulated per-phase costs of a retrieval chain."""

    io_seconds: float = 0.0  # simulated (tier device models)
    decompress_seconds: float = 0.0  # wall
    restore_seconds: float = 0.0  # wall

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.decompress_seconds + self.restore_seconds

    def __add__(self, other: "PhaseTimings") -> "PhaseTimings":
        return PhaseTimings(
            self.io_seconds + other.io_seconds,
            self.decompress_seconds + other.decompress_seconds,
            self.restore_seconds + other.restore_seconds,
        )


@dataclass
class LevelData:
    """A variable restored to one accuracy level."""

    var: str
    level: int
    mesh: TriangleMesh
    field: np.ndarray
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: True per vertex when its delta was applied (only < 1 everywhere for
    #: focused/ROI refinement).
    refined_mask: np.ndarray | None = None
    #: RMS of the delta applied in the most recent refinement step — the
    #: paper's suggested auto-termination statistic.
    last_delta_rms: float = float("nan")

    def plane(self, index: int = 0) -> np.ndarray:
        """One poloidal plane of a stacked field (or the field itself)."""
        return self.field[index] if self.field.ndim == 2 else self.field


class CanopusDecoder:
    """Configured Canopus read pipeline over an open dataset.

    Parameters
    ----------
    dataset:
        The open dataset to read from.
    workers:
        Thread-pool width for parallel chunk decode inside one delta
        read. ``None`` inherits the retrieval engine's worker count;
        ``1`` forces the serial path (chunk loop in submission order —
        results are bit-identical either way because spatial chunks
        cover disjoint vertex sets).
    share_geometry:
        Consult/populate the process-wide :class:`GeometryCache` so
        decoder instances over the same dataset bytes decode each mesh
        and mapping once. Per-instance caches remain as a lock-free L1.
        Off by default so standalone decoders keep the seed's per-
        instance I/O accounting; :class:`~repro.core.decode_engine.DecodeEngine`
        and the :mod:`repro.api` façade turn it on.
    """

    def __init__(
        self,
        dataset: BPDataset,
        *,
        workers: int | None = None,
        share_geometry: bool = False,
    ) -> None:
        self.dataset = dataset
        self._clock = dataset.hierarchy.clock
        if workers is None:
            workers = getattr(dataset.engine, "workers", 1)
        if workers < 1:
            raise RestorationError("decoder workers must be >= 1")
        self.workers = int(workers)
        self.share_geometry = share_geometry
        self._mapping_cache: dict[str, LevelMapping] = {}
        self._mesh_cache: dict[str, TriangleMesh] = {}

    # ------------------------------------------------------------------
    def variables(self) -> list[str]:
        return sorted(self.dataset.catalog.attrs.get("variables", {}))

    def scheme(self, var: str) -> LevelScheme:
        meta = self._var_meta(var)
        return LevelScheme(
            num_levels=int(meta["num_levels"]),
            step_ratio=float(meta["step_ratio"]),
        )

    def _var_meta(self, var: str) -> dict:
        try:
            return self.dataset.catalog.attrs["variables"][var]
        except KeyError:
            raise RestorationError(
                f"variable {var!r} not in dataset "
                f"{self.dataset.name!r}"
            ) from None

    # ------------------------------------------------------------------
    def _timed_read(self, key: str, timings: PhaseTimings) -> bytes:
        before = self._clock.elapsed
        blob = self.dataset.read(key)
        timings.io_seconds += self._clock.elapsed - before
        return blob

    def _read_mesh(self, var: str, level: int, timings: PhaseTimings) -> TriangleMesh:
        key = mesh_key(var, level)
        cached = self._mesh_cache.get(key)
        if cached is not None:
            return cached
        if self.share_geometry:
            shared = get_geometry_cache().get(self.dataset, key)
            if shared is not None:
                self._mesh_cache[key] = shared
                return shared
        blob = self._timed_read(key, timings)
        t0 = time.perf_counter()
        mesh = mesh_from_bytes(blob)
        timings.decompress_seconds += time.perf_counter() - t0
        self._mesh_cache[key] = mesh
        if self.share_geometry:
            get_geometry_cache().put(self.dataset, key, mesh)
        return mesh

    def prefetch_geometry(self, var: str) -> PhaseTimings:
        """Pre-load every level's mesh and mapping into the caches.

        Geometry (mesh hierarchy + vertex→triangle mappings) is static
        across timesteps for the paper's applications — XGC1 writes the
        mesh once per campaign — so analytics read it once and amortize
        the cost over every subsequent retrieval. The returned timings
        are the one-time setup cost; after this call, retrieval timings
        contain field/delta payload I/O only, matching what Figs. 9–11
        measure.

        All geometry ranges are fetched as one batch through the
        retrieval engine (:meth:`~repro.io.dataset.BPDataset.read_many`),
        so the setup cost reflects concurrent, coalesced tier reads.
        """
        scheme = self.scheme(var)
        timings = PhaseTimings()
        wanted = [
            mesh_key(var, lvl)
            for lvl in scheme.levels()
            if mesh_key(var, lvl) in self.dataset.catalog
        ] + [mapping_key(var, lvl) for lvl in scheme.delta_levels()]
        before = self._clock.elapsed
        self.dataset.read_many(
            [k for k in wanted if k in self.dataset.catalog],
            label=f"{var}:geometry",
        )
        timings.io_seconds += self._clock.elapsed - before
        # Decode from the now-warm cache into the object caches.
        for lvl in scheme.levels():
            if mesh_key(var, lvl) in self.dataset.catalog:
                self._read_mesh(var, lvl, timings)
        for lvl in scheme.delta_levels():
            self._read_mapping(var, lvl, timings)
        return timings

    # ------------------------------------------------------------------
    def level_keys(self, var: str, level: int) -> list[str]:
        """Catalog keys needed to lift ``level + 1`` → ``level``.

        This is the decoder's prefetch hint: the key set of the *next*
        refinement is known before the current one finishes, so the
        engine can fetch it while the current delta decompresses.
        Geometry already decoded into the object caches is excluded.
        """
        meta = self._var_meta(var)
        keys: list[str] = []

        def _decoded(cache: dict, key: str) -> bool:
            if key in cache:
                return True
            return self.share_geometry and get_geometry_cache().has(
                self.dataset, key
            )

        if not _decoded(self._mapping_cache, mapping_key(var, level)):
            keys.append(mapping_key(var, level))
        if not _decoded(self._mesh_cache, mesh_key(var, level)):
            keys.append(mesh_key(var, level))
        chunks = int(meta.get("chunks", 1))
        if chunks == 1:
            keys.append(delta_key(var, level))
        else:
            n_chunks = int(
                meta.get("chunks_per_level", {}).get(str(level), chunks)
            )
            for c in range(n_chunks):
                keys.append(chunk_key(var, level, c) + "/idx")
                keys.append(chunk_key(var, level, c))
        return [k for k in keys if k in self.dataset.catalog]

    def base_keys(self, var: str) -> list[str]:
        """Catalog keys of the base product (field + mesh)."""
        scheme = self.scheme(var)
        base_level = scheme.base_level
        keys = [level_key(var, base_level)]
        mkey = mesh_key(var, base_level)
        decoded = mkey in self._mesh_cache or (
            self.share_geometry and get_geometry_cache().has(self.dataset, mkey)
        )
        if not decoded and mkey in self.dataset.catalog:
            keys.append(mkey)
        return [k for k in keys if k in self.dataset.catalog]

    def prefetch_levels(self, var: str, levels, *, label: str = "") -> int:
        """Hint the engine to fetch refinement levels in the background.

        ``levels`` iterates over target levels (next-to-be-refined
        first). Already-cached or in-flight ranges are skipped by the
        engine, so repeated hints cost nothing.
        """
        keys: list[str] = []
        for lvl in levels:
            if lvl < 0:
                continue
            keys.extend(self.level_keys(var, lvl))
        if not keys:
            return 0
        return self.dataset.prefetch(keys, label=label or f"{var}:prefetch")

    def _read_mapping(
        self, var: str, level: int, timings: PhaseTimings
    ) -> LevelMapping:
        key = mapping_key(var, level)
        cached = self._mapping_cache.get(key)
        if cached is not None:
            return cached
        if self.share_geometry:
            shared = get_geometry_cache().get(self.dataset, key)
            if shared is not None:
                self._mapping_cache[key] = shared
                return shared
        blob = self._timed_read(key, timings)
        t0 = time.perf_counter()
        mapping = LevelMapping.from_bytes(blob)
        timings.decompress_seconds += time.perf_counter() - t0
        self._mapping_cache[key] = mapping
        if self.share_geometry:
            get_geometry_cache().put(self.dataset, key, mapping)
        return mapping

    # ------------------------------------------------------------------
    def _planes(self, var: str) -> int:
        """Plane count (0 = un-stacked 1-D field)."""
        return int(self._var_meta(var).get("planes", 0))

    def _shape_field(self, var: str, flat: np.ndarray) -> np.ndarray:
        planes = self._planes(var)
        return flat.reshape(planes, -1) if planes else flat

    def read_base(self, var: str) -> LevelData:
        """Option (1) of §III-B: the quick look from the fastest tier."""
        scheme = self.scheme(var)
        base_level = scheme.base_level
        with trace.span(
            "decode.read_base", "restore", {"var": var, "level": base_level}
        ):
            timings = PhaseTimings()
            blob = self._timed_read(level_key(var, base_level), timings)
            t0 = time.perf_counter()
            field_ = self._shape_field(var, decode_auto(blob))
            timings.decompress_seconds += time.perf_counter() - t0
            mesh = self._read_mesh(var, base_level, timings)
        return LevelData(
            var=var, level=base_level, mesh=mesh, field=field_, timings=timings
        )

    def _read_delta(
        self,
        var: str,
        level: int,
        n_fine: int,
        timings: PhaseTimings,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read (possibly chunked) delta; returns (delta, applied_mask).

        ``region=(lo_xy, hi_xy)`` skips every chunk whose bounding box
        does not intersect the window (focused retrieval — only valid
        when the variable was encoded with spatial chunks).
        ``min_significance`` additionally skips chunks whose recorded
        ``|max|`` statistic is below the threshold: the unread chunks can
        change no value by more than that, so the refinement is lossy
        but bounded.
        """
        meta = self._var_meta(var)
        chunks = int(meta.get("chunks", 1))
        planes = self._planes(var)
        if chunks == 1:
            blob = self._timed_read(delta_key(var, level), timings)
            t0 = time.perf_counter()
            delta = self._shape_field(var, decode_auto(blob))
            timings.decompress_seconds += time.perf_counter() - t0
            return delta, np.ones(delta.shape[-1], dtype=bool)

        n_chunks = int(meta.get("chunks_per_level", {}).get(str(level), chunks))
        shape = (planes, n_fine) if planes else (n_fine,)
        delta = np.zeros(shape, dtype=np.float64)
        applied = np.zeros(n_fine, dtype=bool)
        wanted: list = []
        for c in range(n_chunks):
            rec = self.dataset.inq(chunk_key(var, level, c))
            if region is not None:
                lo, hi = region
                x0, y0, x1, y1 = rec.attrs["bbox"]
                if x1 < lo[0] or x0 > hi[0] or y1 < lo[1] or y0 > hi[1]:
                    continue  # chunk entirely outside the ROI
            if min_significance > 0.0:
                stats = rec.attrs.get("stats")
                if stats is not None and stats["vabs_max"] < min_significance:
                    continue  # provably insignificant correction
            wanted.append(rec)
        if not wanted:
            return delta, applied

        # One overlapped batch for every surviving chunk's index + payload
        # (coalesced per subfile, tiers in parallel), then decode chunks on
        # the thread pool. Each spatial chunk owns a disjoint vertex set,
        # so the scatters never overlap and the result is bit-identical to
        # the serial loop regardless of completion order.
        before = self._clock.elapsed
        blobs = self.dataset.read_many(
            [k for rec in wanted for k in (rec.key + "/idx", rec.key)],
            label=f"{var}:delta{level}",
        )
        timings.io_seconds += self._clock.elapsed - before

        def _decode_chunk(rec) -> None:
            idx = np.frombuffer(
                zlib.decompress(blobs[rec.key + "/idx"]), dtype="<i8"
            )
            piece = decode_auto(blobs[rec.key])
            if planes:
                piece = piece.reshape(planes, len(idx))
            delta[..., idx] = piece
            applied[idx] = True

        t0 = time.perf_counter()
        if self.workers > 1 and len(wanted) > 1:
            with trace.span(
                "decode.chunks", "restore",
                {"var": var, "level": level, "chunks": len(wanted),
                 "workers": self.workers},
            ):
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(wanted)),
                    thread_name_prefix="repro-decode",
                ) as pool:
                    # list() propagates the first worker exception.
                    list(
                        pool.map(
                            obs_context.propagate(_decode_chunk), wanted
                        )
                    )
        else:
            for rec in wanted:
                _decode_chunk(rec)
        timings.decompress_seconds += time.perf_counter() - t0
        return delta, applied

    def refine(
        self,
        state: LevelData,
        *,
        region: tuple[np.ndarray, np.ndarray] | None = None,
        min_significance: float = 0.0,
    ) -> LevelData:
        """Lift ``state`` one accuracy level (apply one delta).

        ``region=(lo_xy, hi_xy)`` restricts delta reads to chunks that
        contain vertices inside the bounding box — everything outside
        keeps the estimate (focused retrieval). ``min_significance``
        skips chunks whose recorded correction magnitude is below the
        threshold (bounded lossy refinement). Both require the variable
        to have been encoded with ``chunks > 1`` to give any I/O saving.
        """
        if state.level <= 0:
            raise RestorationError("already at full accuracy (level 0)")
        var = state.var
        target = state.level - 1
        with trace.span(
            "decode.refine", "restore", {"var": var, "level": target}
        ):
            timings = PhaseTimings()
            mapping = self._read_mapping(var, target, timings)
            fine_mesh = self._read_mesh(var, target, timings)

            window = None
            if region is not None:
                lo, hi = (np.asarray(b, dtype=np.float64) for b in region)
                window = (lo, hi)

            delta, applied = self._read_delta(
                var, target, mapping.n_fine, timings, window, min_significance
            )
            t0 = time.perf_counter()
            field_ = apply_delta(state.field, delta, mapping)
            timings.restore_seconds += time.perf_counter() - t0
            # NaN (not 0.0) when no chunk survived the region/significance
            # filter: "nothing was read" must not look like "the delta
            # converged", or refine_until() would stop spuriously.
            rms = (
                float(np.sqrt(np.mean(delta[..., applied] ** 2)))
                if applied.any()
                else float("nan")
            )
        return LevelData(
            var=var,
            level=target,
            mesh=fine_mesh,
            field=field_,
            timings=state.timings + timings,
            refined_mask=applied,
            last_delta_rms=rms,
        )

    def _prefetch_window(
        self, var: str, next_target: int, lookahead: int, floor: int
    ) -> float:
        """Hint the next ``lookahead`` refinement levels; return sim cost.

        Unlike the interactive reader, ``restore_to`` knows the final
        target, so the window never reaches below ``floor`` — no charge
        for deltas the chain will not apply.
        """
        if next_target < floor:
            return 0.0
        before = self._clock.elapsed
        levels = range(next_target, max(floor - 1, next_target - lookahead), -1)
        self.prefetch_levels(var, levels, label=f"{var}:pipeline")
        return self._clock.elapsed - before

    def restore_to(
        self,
        var: str,
        level: int,
        *,
        pipeline: bool = True,
        lookahead: int = 2,
        use_cache: bool = False,
    ) -> LevelData:
        """Restore from the base down to ``level`` (paper options 2/3).

        With ``pipeline=True`` (default) upcoming levels' byte ranges are
        hinted to the retrieval engine before each refinement, so the
        non-interactive path gets the same overlapped I/O charge as
        :class:`~repro.core.progressive.ProgressiveReader`; the restored
        field is bit-identical either way. ``use_cache=True`` additionally
        consults the process-wide :class:`RestoredLevelCache`: an exact
        (var, level) hit returns immediately, and a cached coarser level
        warm-starts the chain; every level restored on the way down is
        published back to the cache.
        """
        if lookahead < 1:
            raise RestorationError("lookahead must be >= 1")
        scheme = self.scheme(var)
        scheme.validate_level(level)
        cache = get_restored_cache() if use_cache else None
        state: LevelData | None = None
        if cache is not None:
            hit = cache.get(cache.key_for(self.dataset, var, level))
            warm = hit if hit is not None else cache.warmest(
                self.dataset, var, level
            )
            if warm is not None:
                timings = PhaseTimings()
                mesh = self._read_mesh(var, warm.level, timings)
                state = LevelData(
                    var=var,
                    level=warm.level,
                    mesh=mesh,
                    field=warm.field.copy(),
                    timings=timings,
                    last_delta_rms=warm.last_delta_rms,
                )
                if warm.level == level:
                    return state
        if state is None:
            prefetch_io = 0.0
            if pipeline:
                before = self._clock.elapsed
                self.dataset.prefetch(self.base_keys(var), label=f"{var}:base")
                prefetch_io = self._clock.elapsed - before
                prefetch_io += self._prefetch_window(
                    var, scheme.base_level - 1, lookahead, level
                )
            state = self.read_base(var)
            state.timings.io_seconds += prefetch_io
            if cache is not None:
                cache.put(
                    cache.key_for(self.dataset, var, state.level), state.field
                )
        while state.level > level:
            prefetch_io = 0.0
            if pipeline:
                prefetch_io = self._prefetch_window(
                    var, state.level - 1, lookahead, level
                )
            state = self.refine(state)
            state.timings.io_seconds += prefetch_io
            if cache is not None:
                cache.put(
                    cache.key_for(self.dataset, var, state.level),
                    state.field,
                    last_delta_rms=state.last_delta_rms,
                )
        return state
