"""Timestep campaigns: write once per step, analyze many times.

The paper's target workload is a production run that "outputs a smaller
data volume called f0 … more frequently" and whose results "need to be
written once but analyzed a number of times (e.g., for parameter
sensitivity studies)". A :class:`CampaignWriter` Canopus-encodes a
*series* of timesteps of one variable:

* the mesh hierarchy and the vertex→triangle mappings depend only on
  the mesh, which is static across steps for these codes — so geometry
  is refactored and stored **once**, in a shared geometry dataset;
* each timestep stores only its base + delta payloads, reusing the
  shared geometry (both for delta calculation at write time and for
  restoration at read time).

The reader side restores any (step, level) pair and amortizes geometry
I/O across the whole campaign — the quantitative justification for the
one-time ``setup_seconds`` accounting in the analysis pipelines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compress import decode_auto, get_codec
from repro.core.decimation_plan import (
    build_plan,
    get_plan_cache,
    plan_eligible,
)
from repro.core.decoder import LevelData, PhaseTimings
from repro.core.delta import apply_delta
from repro.core.encode_scheduler import BufferArena, fused_step_products
from repro.core.mapping import LevelMapping
from repro.core.notation import (
    GEOM_VAR as _GEOM_VAR,
    LevelScheme,
    mapping_key,
    mesh_key,
    step_key as _step_key,
)
from repro.core.plan import plan_placement
from repro.errors import CanopusError, RestorationError
from repro.io.dataset import BPDataset
from repro.io.query import ChunkStats
from repro.mesh.edge_collapse import KERNELS
from repro.mesh.io import mesh_from_bytes, mesh_to_bytes
from repro.mesh.triangle_mesh import TriangleMesh
from repro.obs import trace
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["CampaignWriter", "CampaignReader", "StepReport"]


@dataclass
class StepReport:
    """Per-timestep write measurements."""

    step: int
    compressed_bytes: int
    original_bytes: int
    refactor_seconds: float
    compress_seconds: float
    io_seconds: float

    @property
    def reduction(self) -> float:
        return self.original_bytes / max(1, self.compressed_bytes)


class CampaignWriter:
    """Writes a timestep series of one variable through Canopus.

    Parameters mirror :class:`~repro.core.encoder.CanopusEncoder`; the
    decimated mesh chain is computed from the first timestep's mesh and
    reused for every subsequent step (meshes are static across steps).

    Geometry work goes through a
    :class:`~repro.core.decimation_plan.DecimationPlan` — consulted
    from the process-wide plan cache for geometry-determined priorities
    — so a second campaign over the same mesh skips decimation
    entirely, and every ``write_step`` coarsens its field by replaying
    the recorded collapse sequence (bit-identical to re-running it).
    With ``workers > 1``, per-level delta computation and codec encodes
    overlap on a thread pool. ``placement="cost"`` defers product
    placement to close time, where the cost-based
    :class:`~repro.storage.placement.PlacementEngine` bins the whole
    campaign at once instead of walking fastest-first per write.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        name: str,
        var: str,
        mesh: TriangleMesh,
        scheme: LevelScheme,
        *,
        codec: str = "zfp",
        codec_params: dict | None = None,
        estimator: str = "mean",
        priority: str = "length",
        method: str = "serial",
        workers: int | None = None,
        use_plan_cache: bool = True,
        placement: str = "walk",
    ) -> None:
        if method not in KERNELS:
            raise CanopusError(
                f"unknown decimation method {method!r}; "
                f"expected one of {KERNELS}"
            )
        if workers is not None and workers < 1:
            raise CanopusError("workers must be >= 1")
        self.hierarchy = hierarchy
        self.name = name
        self.var = var
        self.scheme = scheme
        self.codec_name = codec
        self.codec_params = dict(codec_params or {})
        self._codec = get_codec(codec, **self.codec_params)
        self._plan = plan_placement(scheme, len(hierarchy))
        self.workers = workers
        self._steps: list[int] = []
        self._closed = False
        # Scratch pool for the fused serial encode path: after the
        # first step every replay/delta buffer is a pool hit.
        self._arena = BufferArena()

        # --- one-time geometry refactoring (plan-cached) ----------------
        t0 = time.perf_counter()
        if use_plan_cache and plan_eligible(priority):
            self._geom_plan = get_plan_cache().get_or_build(
                mesh, scheme, method=method, priority=priority,
                estimator=estimator,
            )
        else:
            # Data-dependent priorities degenerate to geometry-only here
            # (there is no field yet at campaign-setup time), matching
            # the historical fields=None decimation; build uncached.
            self._geom_plan = build_plan(
                mesh, scheme, method=method, priority=priority,
                estimator=estimator,
            )
        self.meshes: list[TriangleMesh] = self._geom_plan.meshes
        self.mappings: list[LevelMapping] = self._geom_plan.mappings
        self.geometry_seconds = time.perf_counter() - t0

        # --- persist geometry once --------------------------------------
        self._dataset = BPDataset.create(name, hierarchy, placement=placement)
        self._dataset.catalog.attrs["campaign"] = {
            "var": var,
            "num_levels": scheme.num_levels,
            "step_ratio": scheme.step_ratio,
            "codec": codec,
            "counts": [m.num_vertices for m in self.meshes],
            "steps": [],
        }
        for lvl, m in enumerate(self.meshes):
            tier = (
                self._plan.base_tier
                if lvl == scheme.base_level
                else self._plan.preferred_tier_for_delta(lvl)
            )
            self._dataset.write(
                mesh_key(_GEOM_VAR, lvl), mesh_to_bytes(m),
                kind="mesh", level=lvl, preferred_tier=tier,
            )
        for lvl, mapping in enumerate(self.mappings):
            self._dataset.write(
                mapping_key(_GEOM_VAR, lvl), mapping.to_bytes(),
                kind="mapping", level=lvl,
                preferred_tier=self._plan.preferred_tier_for_delta(lvl),
            )

    # ------------------------------------------------------------------
    def write_step(self, step: int, data: np.ndarray) -> StepReport:
        """Refactor + compress + place one timestep's field."""
        if self._closed:
            raise CanopusError("campaign already closed")
        if step in self._steps:
            raise CanopusError(f"step {step} already written")
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.shape[-1] != self.meshes[0].num_vertices:
            raise CanopusError(
                f"step {step}: field shape {data.shape} does not match mesh"
            )

        base_level = self.scheme.base_level
        if self.workers and self.workers > 1:
            # Thread-overlapped staged path: replay the recorded
            # collapse sequence (bit-identical to re-running Algorithm 1
            # on this step's values), compute per-level deltas on a
            # thread pool, then overlap the codec encodes.
            t0 = time.perf_counter()
            with trace.span(
                "campaign.refactor", "refactor",
                {"step": step, "workers": self.workers},
            ):
                levels = self._geom_plan.coarsen(data)
                deltas = self._geom_plan.deltas_for(
                    levels, workers=self.workers
                )
            refactor_seconds = time.perf_counter() - t0

            t0 = time.perf_counter()
            arrays: list[tuple[str, np.ndarray, str, int, int]] = [
                (
                    _step_key(self.var, step, base_level, "base"),
                    levels[-1],
                    "base",
                    base_level,
                    self._plan.base_tier,
                )
            ]
            for lvl in self.scheme.delta_levels():
                arrays.append(
                    (
                        _step_key(self.var, step, lvl, "delta"),
                        deltas[lvl],
                        "delta",
                        lvl,
                        self._plan.preferred_tier_for_delta(lvl),
                    )
                )
            with trace.span(
                "campaign.compress", "compress",
                {"step": step, "payloads": len(arrays),
                 "workers": self.workers},
            ):
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(arrays))
                ) as pool:
                    blobs = list(
                        pool.map(self._codec.encode, (a for _, a, *_ in arrays))
                    )
            # Summaries describe the pre-compression values (the bounds
            # the retrieval planner prunes against), so compute them
            # from the staged arrays before they are dropped.
            payloads = [
                (key, blob, kind, lvl, tier, ChunkStats.of(arr).as_dict())
                for (key, arr, kind, lvl, tier), blob in zip(arrays, blobs)
            ]
            compress_seconds = time.perf_counter() - t0
        else:
            # Fused serial path: one level in flight at a time through
            # pooled scratch (same kernel the multiprocess scheduler's
            # workers run), bit-identical to the staged path.
            with trace.span(
                "campaign.fused_encode", "refactor", {"step": step}
            ):
                summaries: dict = {}
                products, fstats = fused_step_products(
                    self._geom_plan, data, self._codec, arena=self._arena,
                    summaries=summaries,
                )
            refactor_seconds = (
                fstats["replay_seconds"] + fstats["delta_seconds"]
            )
            compress_seconds = fstats["compress_seconds"]
            payloads = [
                (
                    _step_key(self.var, step, base_level, "base"),
                    products["base"],
                    "base",
                    base_level,
                    self._plan.base_tier,
                    summaries.get("base"),
                )
            ]
            for lvl in self.scheme.delta_levels():
                payloads.append(
                    (
                        _step_key(self.var, step, lvl, "delta"),
                        products[f"delta{lvl}"],
                        "delta",
                        lvl,
                        self._plan.preferred_tier_for_delta(lvl),
                        summaries.get(f"delta{lvl}"),
                    )
                )

        clock = self.hierarchy.clock
        before = clock.elapsed
        total = 0
        for key, blob, kind, lvl, tier, summary in payloads:
            rec = self._dataset.write(
                key, blob, kind=kind, level=lvl,
                codec=self.codec_name, preferred_tier=tier,
            )
            if summary is not None:
                rec.attrs["stats"] = summary
            total += len(blob)
        io_seconds = clock.elapsed - before  # buffered; realized at close

        self._steps.append(step)
        self._dataset.catalog.attrs["campaign"]["steps"] = sorted(self._steps)
        return StepReport(
            step=step,
            compressed_bytes=total,
            original_bytes=data.nbytes,
            refactor_seconds=refactor_seconds,
            compress_seconds=compress_seconds,
            io_seconds=io_seconds,
        )

    def close(self) -> float:
        """Flush subfiles + catalog; returns the realized write I/O time.

        Writes are buffered per tier until close (one subfile per tier),
        so per-step ``io_seconds`` are ~0 and the campaign's write cost
        lands here.
        """
        if self._closed:
            return 0.0
        clock = self.hierarchy.clock
        before = clock.elapsed
        self._dataset.close()
        self._closed = True
        return clock.elapsed - before

    def __enter__(self) -> "CampaignWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CampaignReader:
    """Restores any (step, level) of a campaign with shared geometry."""

    def __init__(self, hierarchy: StorageHierarchy, name: str) -> None:
        self.dataset = BPDataset.open(name, hierarchy)
        self._clock = hierarchy.clock
        meta = self.dataset.catalog.attrs.get("campaign")
        if not meta:
            raise RestorationError(f"{name!r} is not a campaign dataset")
        self.var: str = meta["var"]
        self.scheme = LevelScheme(int(meta["num_levels"]), float(meta["step_ratio"]))
        self.steps: list[int] = list(meta["steps"])
        self._meshes: dict[int, TriangleMesh] = {}
        self._mappings: dict[int, LevelMapping] = {}
        self.geometry_timings = PhaseTimings()

    # ------------------------------------------------------------------
    def prefetch_geometry(self) -> PhaseTimings:
        """Read the shared mesh/mapping products once for the campaign.

        All geometry keys are fetched as one overlapped engine batch, so
        the one-time setup pays the batched (not per-product) I/O charge.
        """
        keys = [mesh_key(_GEOM_VAR, lvl) for lvl in self.scheme.levels()]
        keys += [mapping_key(_GEOM_VAR, lvl) for lvl in self.scheme.delta_levels()]
        before = self._clock.elapsed
        self.dataset.read_many(keys, label=f"{self.var}:geometry")
        self.geometry_timings.io_seconds += self._clock.elapsed - before
        for lvl in self.scheme.levels():
            self._mesh(lvl)
        for lvl in self.scheme.delta_levels():
            self._mapping(lvl)
        return self.geometry_timings

    def _mesh(self, level: int) -> TriangleMesh:
        if level not in self._meshes:
            before = self._clock.elapsed
            blob = self.dataset.read(mesh_key(_GEOM_VAR, level))
            self.geometry_timings.io_seconds += self._clock.elapsed - before
            self._meshes[level] = mesh_from_bytes(blob)
        return self._meshes[level]

    def _mapping(self, level: int) -> LevelMapping:
        if level not in self._mappings:
            before = self._clock.elapsed
            blob = self.dataset.read(mapping_key(_GEOM_VAR, level))
            self.geometry_timings.io_seconds += self._clock.elapsed - before
            self._mappings[level] = LevelMapping.from_bytes(blob)
        return self._mappings[level]

    # ------------------------------------------------------------------
    def restore(self, step: int, target_level: int = 0) -> LevelData:
        """Restore one timestep to the requested accuracy level."""
        if step not in self.steps:
            raise RestorationError(
                f"step {step} not in campaign (has {self.steps})"
            )
        self.scheme.validate_level(target_level)
        timings = PhaseTimings()

        base_level = self.scheme.base_level
        before = self._clock.elapsed
        blob = self.dataset.read(_step_key(self.var, step, base_level, "base"))
        timings.io_seconds += self._clock.elapsed - before
        t0 = time.perf_counter()
        field_ = decode_auto(blob)
        timings.decompress_seconds += time.perf_counter() - t0

        level = base_level
        while level > target_level:
            level -= 1
            mapping = self._mapping(level)
            before = self._clock.elapsed
            blob = self.dataset.read(_step_key(self.var, step, level, "delta"))
            timings.io_seconds += self._clock.elapsed - before
            t0 = time.perf_counter()
            delta = decode_auto(blob)
            timings.decompress_seconds += time.perf_counter() - t0
            t0 = time.perf_counter()
            field_ = apply_delta(field_, delta, mapping)
            timings.restore_seconds += time.perf_counter() - t0

        return LevelData(
            var=self.var,
            level=target_level,
            mesh=self._mesh(target_level),
            field=field_,
            timings=timings,
        )

    def restore_many(
        self, steps=None, target_level: int = 0, *, workers: int = 4
    ) -> dict[int, LevelData]:
        """Restore several timesteps concurrently; ``{step: LevelData}``.

        Bit-identical to serial :meth:`restore` calls. Geometry is
        decoded once up front (single-threaded, so the shared caches see
        no concurrent mutation) and every step's base/delta ranges are
        hinted to the retrieval engine as one overlapped batch before
        the fan-out — the simulated I/O charge is deterministic and the
        workers overlap decompression with each other's fetches.
        """
        if workers < 1:
            raise RestorationError("restore_many workers must be >= 1")
        steps = list(self.steps if steps is None else steps)
        for step in steps:
            if step not in self.steps:
                raise RestorationError(
                    f"step {step} not in campaign (has {self.steps})"
                )
        self.scheme.validate_level(target_level)
        if not steps:
            return {}
        with trace.span(
            "decode.restore_many", "restore",
            {"steps": len(steps), "level": target_level, "workers": workers},
        ):
            self.prefetch_geometry()
            keys = []
            for step in steps:
                keys.append(
                    _step_key(self.var, step, self.scheme.base_level, "base")
                )
                for lvl in range(self.scheme.base_level - 1, target_level - 1, -1):
                    keys.append(_step_key(self.var, step, lvl, "delta"))
            self.dataset.prefetch(keys, label=f"{self.var}:restore_many")
            if workers > 1 and len(steps) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(
                    max_workers=min(workers, len(steps)),
                    thread_name_prefix="repro-campaign",
                ) as pool:
                    results = list(
                        pool.map(lambda s: self.restore(s, target_level), steps)
                    )
            else:
                results = [self.restore(s, target_level) for s in steps]
        return dict(zip(steps, results))

    def time_series(self, target_level: int, steps=None):
        """Yield ``(step, LevelData)`` across the campaign at one level."""
        for step in steps if steps is not None else self.steps:
            yield step, self.restore(step, target_level)
