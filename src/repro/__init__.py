"""Canopus reproduction: progressive refactoring for HPC data analytics.

See README.md for the architecture overview and DESIGN.md for the
per-figure experiment index. The top-level namespace re-exports the
user-facing API; subsystems live in their own subpackages:

* :mod:`repro.core` -- the Canopus contribution (refactor/delta/restore,
  encoder/decoder, progressive reader);
* :mod:`repro.mesh` -- unstructured triangular meshes + decimation;
* :mod:`repro.compress` -- ZFP-, SZ-, FPC-style floating-point codecs;
* :mod:`repro.io` -- ADIOS-like BP container, transports, XML config;
* :mod:`repro.storage` -- simulated storage hierarchy;
* :mod:`repro.analytics` -- blob detection and the timed analysis pipeline;
* :mod:`repro.simulations` -- synthetic XGC1/GenASiS/CFD datasets;
* :mod:`repro.perfmodel` -- storage-to-compute scenario models.
"""

__version__ = "1.0.0"

from repro import api, errors
from repro.api import open_dataset, read_progressive, write_campaign
from repro.core import (
    CanopusDecoder,
    CanopusEncoder,
    LevelScheme,
    ProgressiveReader,
)
from repro.io import BPDataset, parse_config
from repro.storage import StorageHierarchy, StorageTier, two_tier_titan

__all__ = [
    "api",
    "errors",
    "__version__",
    "open_dataset",
    "write_campaign",
    "read_progressive",
    "LevelScheme",
    "CanopusEncoder",
    "CanopusDecoder",
    "ProgressiveReader",
    "BPDataset",
    "parse_config",
    "StorageHierarchy",
    "StorageTier",
    "two_tier_titan",
]
