"""Once-per-process deprecation warnings.

Module-level shims fire their :class:`DeprecationWarning` on import, so a
process that re-imports (or ``importlib.reload``-s) a shim would spam the
same message. :func:`warn_once` keys each warning by a caller-chosen
string and emits it at most once per process; tests can clear the
registry with :func:`reset_warnings` to observe the first emission again.
"""

from __future__ import annotations

import threading
import warnings

__all__ = ["warn_once", "reset_warnings"]

_seen: set[str] = set()
_lock = threading.Lock()


def warn_once(
    key: str,
    message: str,
    *,
    category: type[Warning] = DeprecationWarning,
    stacklevel: int = 2,
) -> bool:
    """Emit ``message`` once per process for ``key``.

    Returns True when the warning was actually emitted, False when this
    key already warned. ``stacklevel`` counts from the caller of
    ``warn_once`` (2 = the caller's caller, matching ``warnings.warn``).
    """
    with _lock:
        if key in _seen:
            return False
        _seen.add(key)
    warnings.warn(message, category, stacklevel=stacklevel + 1)
    return True


def reset_warnings() -> None:
    """Forget all emitted keys (test hook)."""
    with _lock:
        _seen.clear()
