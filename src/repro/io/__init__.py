"""ADIOS-like I/O substrate: BP container, catalogs, transports, XML config.

Canopus is "implemented as a super I/O transport method in ADIOS and is
plugged into the simulation and analytics via the ADIOS write and query
interface" (paper §III-A). This subpackage reproduces the layers Canopus
relies on: a metadata-rich binary-packed container
(:mod:`~repro.io.bp`), a global catalog (:mod:`~repro.io.metadata`),
per-tier transport methods (:mod:`~repro.io.transports`), the dataset
write/query/read API (:mod:`~repro.io.dataset`), the concurrent
retrieval engine (:mod:`~repro.io.engine`) with its range cache
(:mod:`~repro.io.cache`), and ADIOS-style XML
configuration (:mod:`~repro.io.xmlconfig`).
"""

from repro.io.bp import BPReader, BPWriter, LazyBPReader
from repro.io.cache import CacheEntry, RangeCache
from repro.io.dataset import BPDataset
from repro.io.engine import EngineStats, RetrievalEngine
from repro.io.metadata import Catalog, VariableRecord
from repro.io.fsck import (
    CheckResult,
    check_backends,
    check_dataset,
    repair_backends,
    repair_dataset,
)
from repro.io.query import ChunkStats, QueryEngine, attach_stats
from repro.io.transports import (
    AggregatingTransport,
    PosixTransport,
    StagingTransport,
    Transport,
    make_transport,
)
from repro.io.xmlconfig import CanopusConfig, parse_config, parse_size

__all__ = [
    "BPDataset",
    "RangeCache",
    "CacheEntry",
    "RetrievalEngine",
    "EngineStats",
    "BPReader",
    "BPWriter",
    "LazyBPReader",
    "Catalog",
    "VariableRecord",
    "ChunkStats",
    "QueryEngine",
    "attach_stats",
    "CheckResult",
    "check_backends",
    "check_dataset",
    "repair_backends",
    "repair_dataset",
    "Transport",
    "PosixTransport",
    "AggregatingTransport",
    "StagingTransport",
    "make_transport",
    "CanopusConfig",
    "parse_config",
    "parse_size",
]
