"""Dataset integrity checking (``fsck`` for BP datasets).

Campaign data outlives the jobs that wrote it; before a long analysis
(or after a tier migration) users want to know the dataset is sound.
The checker walks the catalog and verifies, per record:

* the byte range exists on the recorded tier and is readable;
* the payload decodes according to its kind (codec envelope for
  base/delta, mesh blob, mapping blob);
* decoded element counts match the catalog;
* recorded value statistics (if any) match the decoded payload within
  the codec's error bound.

Below the catalog, the checker also audits each tier's *backend
inventory*: every object-store backend self-verifies
(:meth:`~repro.storage.backend.ObjectStore.verify` — for a
:class:`~repro.storage.backend.ShardedBackend` that means missing
chunks, orphaned chunks, and a CRC pass over reassembled chunk
boundaries), and each dataset subfile's footer index is re-parsed
through ranged backend reads.

Checks are read-only and per-product, so a partially corrupted dataset
yields a precise damage report instead of a failed restore.

Beyond reporting, fsck can *repair*: :func:`repair_backends` (the
engine behind ``repro fsck --repair``) asks every tier's backend to
self-heal — replicated stores re-replicate from surviving intact copies
(re-striping damaged shards from their mirrors), sharded stores roll
interrupted-put journals forward or garbage-collect them, rebuild
corrupt or missing manifests from contiguous chunk runs, and collect
orphaned chunks — then resyncs each tier's capacity accounting and
re-checks. Unrecoverable damage (no surviving replica) stays reported:
repair never fabricates bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compress import decode_auto
from repro.core.mapping import LevelMapping
from repro.errors import ReproError
from repro.io.bp import LazyBPReader
from repro.io.dataset import BPDataset
from repro.mesh.io import mesh_from_bytes
from repro.obs.metrics import get_registry
from repro.storage.hierarchy import StorageHierarchy

__all__ = [
    "CheckResult",
    "check_backends",
    "check_dataset",
    "repair_backends",
    "repair_dataset",
]


@dataclass
class CheckResult:
    """Outcome of one integrity pass."""

    dataset: str
    checked: int = 0
    ok: int = 0
    problems: list[tuple[str, str]] = field(default_factory=list)
    #: Tier-level backend inventory findings, as ``(tier, problem)``.
    backend_problems: list[tuple[str, str]] = field(default_factory=list)
    #: Repair actions taken before this check, as ``(tier, action)``.
    repairs: list[tuple[str, str]] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.problems and not self.backend_problems

    def report(self) -> str:
        lines = [
            f"dataset {self.dataset!r}: {self.ok}/{self.checked} products ok"
        ]
        for tier, action in self.repairs:
            lines.append(f"  FIXED [{tier}] {action}")
        for key, problem in self.problems:
            lines.append(f"  BAD {key}: {problem}")
        for tier, problem in self.backend_problems:
            lines.append(f"  BAD backend[{tier}]: {problem}")
        return "\n".join(lines)


def _check_payload(rec, blob: bytes) -> str | None:
    """Kind-specific validation; returns a problem string or None."""
    if rec.kind in ("base", "delta") and rec.codec:
        values = decode_auto(blob)
        if rec.count and values.size != rec.count:
            return f"decoded {values.size} values, catalog says {rec.count}"
        if not np.isfinite(values).all():
            return "decoded payload contains non-finite values"
        stats = rec.attrs.get("stats")
        if stats is not None and values.size:
            # The recorded stats describe the original values; the stored
            # payload may be lossy, so allow a small slack around them.
            span = max(stats["vmax"] - stats["vmin"], abs(stats["vabs_max"]), 1e-30)
            slack = 0.01 * span + 1e-12
            if values.max() > stats["vmax"] + slack:
                return (
                    f"decoded max {values.max():g} exceeds recorded "
                    f"vmax {stats['vmax']:g}"
                )
            if values.min() < stats["vmin"] - slack:
                return (
                    f"decoded min {values.min():g} below recorded "
                    f"vmin {stats['vmin']:g}"
                )
    elif rec.kind == "mesh":
        mesh_from_bytes(blob)
    elif rec.kind == "mapping":
        if rec.key.endswith("/idx"):
            import zlib

            zlib.decompress(blob)
        else:
            LevelMapping.from_bytes(blob)
    return None


def check_backends(dataset: BPDataset, result: CheckResult) -> None:
    """Audit each tier's backend inventory for the dataset's objects.

    Appends ``(tier, problem)`` entries to ``result.backend_problems``:
    backend self-verification findings (sharded chunk inventory + CRC
    across chunk boundaries) scoped to the dataset's objects, plus a
    footer re-parse of each subfile through ranged backend reads.
    """
    prefix = dataset.name + "."
    for tier in dataset.hierarchy.tiers:
        for problem in tier.backend.verify():
            # Backend verify covers the whole store; report only findings
            # about this dataset's objects (other datasets share tiers).
            if problem.startswith(prefix):
                result.backend_problems.append((tier.name, problem))
        for relpath in tier.list_files():
            if not (
                relpath.startswith(prefix) and relpath.endswith(".bp")
            ):
                continue
            try:
                reader = LazyBPReader.from_tier(tier, relpath)
                reader.keys()
            except ReproError as exc:
                result.backend_problems.append(
                    (tier.name, f"{relpath}: footer unreadable ({exc})")
                )


def repair_backends(hierarchy: StorageHierarchy) -> list[tuple[str, str]]:
    """Ask every tier's backend to self-heal; returns ``(tier, action)``.

    Runs *below* the catalog, so it works even when the dataset cannot
    be opened (a corrupt catalog manifest is itself repairable). Tiers
    whose backends acted are resynced so capacity accounting follows the
    repaired store.
    """
    actions: list[tuple[str, str]] = []
    for tier in hierarchy.tiers:
        tier_actions = tier.backend.repair()
        for action in tier_actions:
            actions.append((tier.name, action))
        if tier_actions:
            tier.resync()
            get_registry().counter(
                "repair.actions", tier=tier.name
            ).inc(len(tier_actions))
    return actions


def repair_dataset(dataset: BPDataset) -> CheckResult:
    """Repair backend damage under an open dataset, then re-verify.

    The returned :class:`CheckResult` records the repair actions taken
    and the post-repair health; damage with no surviving replica is
    still reported BAD afterwards.
    """
    actions = repair_backends(dataset.hierarchy)
    result = check_dataset(dataset)
    result.repairs = actions
    return result


def check_dataset(dataset: BPDataset) -> CheckResult:
    """Audit storage backends, then verify every product of a dataset.

    The backend audit runs *first*: product reads go through the
    replica-failover path, whose read-repair would silently heal the
    very damage the audit is meant to report.
    """
    result = CheckResult(dataset=dataset.name)
    check_backends(dataset, result)
    for key in dataset.keys():
        rec = dataset.inq(key)
        result.checked += 1
        try:
            # Unverified read: the checker wants the corrupt bytes back so
            # it can classify the damage itself (the normal read path would
            # raise BPFormatError at the first checksum mismatch).
            blob = dataset.read(key, verify=False)
        except ReproError as exc:
            result.problems.append((key, f"unreadable: {exc}"))
            continue
        if len(blob) != rec.length:
            result.problems.append(
                (key, f"read {len(blob)} bytes, catalog says {rec.length}")
            )
            continue
        if rec.checksum:
            import zlib

            crc = zlib.crc32(blob) & 0xFFFFFFFF
            if crc != rec.checksum:
                result.problems.append(
                    (key, f"checksum mismatch: {crc:08x} != {rec.checksum:08x}")
                )
                continue
        try:
            problem = _check_payload(rec, blob)
        except Exception as exc:  # corrupt payloads raise typed errors
            problem = f"{type(exc).__name__}: {exc}"
        if problem:
            result.problems.append((key, problem))
        else:
            result.ok += 1
    return result
