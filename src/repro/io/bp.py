"""Binary-packed (BP-like) subfile container.

One subfile per (dataset, tier): a sequence of raw payload blocks
followed by a JSON footer index and a fixed-size trailer, so a reader
can either (a) use the global catalog to fetch an exact byte range, or
(b) open the subfile standalone and reconstruct its local index from
the footer — mirroring ADIOS BP's self-describing layout.

Layout::

    RBP1 | block 0 | block 1 | ... | footer JSON | footer_len:u64 | RBP1
"""

from __future__ import annotations

import json
import struct

from repro.errors import BPFormatError, VariableNotFoundError

__all__ = ["BPWriter", "BPReader", "LazyBPReader", "MAGIC"]

MAGIC = b"RBP1"
_TRAILER = struct.Struct("<Q4s")


class BPWriter:
    """Accumulates payload blocks; :meth:`finalize` yields the file bytes."""

    def __init__(self) -> None:
        self._blocks: list[bytes] = []
        self._index: dict[str, tuple[int, int]] = {}
        self._pos = len(MAGIC)
        self._finalized = False

    def add(self, key: str, payload: bytes) -> tuple[int, int]:
        """Append a block; returns its ``(offset, length)`` in the file."""
        if self._finalized:
            raise BPFormatError("writer already finalized")
        if key in self._index:
            raise BPFormatError(f"duplicate block key {key!r}")
        offset = self._pos
        self._blocks.append(bytes(payload))
        self._index[key] = (offset, len(payload))
        self._pos += len(payload)
        return offset, len(payload)

    @property
    def nbytes(self) -> int:
        """Size of the finalized file (header + blocks + footer)."""
        footer = self._footer_bytes()
        return self._pos + len(footer) + _TRAILER.size

    @property
    def keys(self) -> list[str]:
        return sorted(self._index)

    def offset_of(self, key: str) -> tuple[int, int]:
        return self._index[key]

    def _footer_bytes(self) -> bytes:
        return json.dumps(self._index, sort_keys=True).encode("utf-8")

    def finalize(self) -> bytes:
        """Produce the complete subfile bytes."""
        self._finalized = True
        footer = self._footer_bytes()
        return (
            MAGIC
            + b"".join(self._blocks)
            + footer
            + _TRAILER.pack(len(footer), MAGIC)
        )


def _parse_index(
    size: int, trailer: bytes, footer_of: "callable"
) -> dict[str, tuple[int, int]]:
    """Shared footer/trailer parse for eager and lazy readers.

    ``trailer`` is the file's final ``_TRAILER.size`` bytes;
    ``footer_of(start, length)`` returns the footer JSON bytes.
    """
    footer_len, tail_magic = _TRAILER.unpack(trailer)
    if tail_magic != MAGIC:
        raise BPFormatError("not a BP subfile (bad trailer)")
    footer_start = size - _TRAILER.size - footer_len
    if footer_start < len(MAGIC):
        raise BPFormatError("corrupt BP subfile (footer overlaps header)")
    try:
        index = json.loads(footer_of(footer_start, footer_len))
    except json.JSONDecodeError as exc:
        raise BPFormatError(f"corrupt BP footer: {exc}") from exc
    return {k: tuple(v) for k, v in index.items()}


class BPReader:
    """Parses a subfile produced by :class:`BPWriter`."""

    def __init__(self, data: bytes) -> None:
        data = bytes(data)
        if len(data) < len(MAGIC) + _TRAILER.size or data[:4] != MAGIC:
            raise BPFormatError("not a BP subfile (bad header)")
        self._data = data
        self._index = _parse_index(
            len(data),
            data[len(data) - _TRAILER.size:],
            lambda start, length: data[start:start + length],
        )

    def keys(self) -> list[str]:
        return sorted(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def offset_of(self, key: str) -> tuple[int, int]:
        try:
            return self._index[key]  # type: ignore[return-value]
        except KeyError:
            raise VariableNotFoundError(f"no block {key!r} in subfile") from None

    def read(self, key: str) -> bytes:
        offset, length = self.offset_of(key)
        return self._data[offset : offset + length]


class LazyBPReader:
    """Standalone ranged-read view of a subfile held by a backend.

    Reconstructs the local index from three ranged reads (header,
    trailer, footer) without ever materializing the whole subfile —
    the self-describing-open path, now served through an
    :class:`~repro.storage.backend.ObjectStore` handle so it works the
    same over filesystem, in-memory, and sharded stores (where a single
    logical range may span several chunks).
    """

    def __init__(self, backend, key: str) -> None:
        self.backend = backend
        self.key = key
        size = backend.size(key)
        if size < len(MAGIC) + _TRAILER.size:
            raise BPFormatError("not a BP subfile (too short)")
        if backend.get_range(key, 0, len(MAGIC)) != MAGIC:
            raise BPFormatError("not a BP subfile (bad header)")
        self._index = _parse_index(
            size,
            backend.get_range(key, size - _TRAILER.size, _TRAILER.size),
            lambda start, length: backend.get_range(key, start, length),
        )

    @classmethod
    def from_tier(cls, tier, subfile: str) -> "LazyBPReader":
        """Open a tier-resident subfile via the tier's backend handle."""
        return cls(tier.backend, subfile)

    def keys(self) -> list[str]:
        return sorted(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def offset_of(self, key: str) -> tuple[int, int]:
        try:
            return self._index[key]  # type: ignore[return-value]
        except KeyError:
            raise VariableNotFoundError(f"no block {key!r} in subfile") from None

    def read(self, key: str) -> bytes:
        offset, length = self.offset_of(key)
        return self.backend.get_range(self.key, offset, length)
