"""ADIOS-style XML configuration.

The paper configures I/O transports "in an external XML configuration
file (e.g., using ADIOS MPI AGGREGATE transport for writing data on
Lustre, and using ADIOS POSIX for writing data on a local storage)".
This module parses an equivalent document into a ready-to-use storage
hierarchy, per-tier transports, and Canopus pipeline parameters::

    <canopus-config>
      <storage root="/tmp/run" backend="filesystem">
        <tier name="tmpfs"  device="dram_tmpfs" capacity="64MiB"
              backend="memory"/>
        <tier name="lustre" device="lustre"     capacity="10GiB"
              backend="sharded" shards="8" chunk="256KiB"/>
      </storage>
      <transport tier="tmpfs"  method="POSIX"/>
      <transport tier="lustre" method="MPI_AGGREGATE" writers="128"
                 aggregators="4" network_bandwidth="5GiB"
                 network_latency="2e-6"/>
      <placement policy="cost"/>
      <canopus levels="3" codec="zfp" tolerance="1e-4" decimation="2"/>
    </canopus-config>

Each tier's bytes live in a pluggable object-store backend
(``filesystem`` default, ``memory``, ``sharded``, ``remote``, or
``replicated``; set a store-wide default on ``<storage backend=...>``
and override per ``<tier>``). ``replicas="2"`` on ``<storage>`` or a
``<tier>`` mirrors sharded/replicated leaves N ways;
``network_bandwidth``/``network_latency`` on a ``remote`` tier
parameterize its simulated S3 hop (same defaults as transports).
``<placement policy="cost"/>`` switches datasets from the fastest-first
capacity walk to the cost-based placement engine.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError, ReproError
from repro.io.transports import Transport, make_transport
from repro.storage.backend import make_backend
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.simclock import SimClock
from repro.storage.tier import StorageTier

__all__ = ["CanopusConfig", "parse_config", "parse_size"]

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([KMGT]i?B|B)?\s*$", re.I)
_UNITS = {
    "b": 1,
    "kb": 10**3, "mb": 10**6, "gb": 10**9, "tb": 10**12,
    "kib": 1 << 10, "mib": 1 << 20, "gib": 1 << 30, "tib": 1 << 40,
}


def parse_size(text: str) -> int:
    """Parse ``"64MiB"``-style capacity strings to bytes."""
    m = _SIZE_RE.match(str(text))
    if not m:
        raise ConfigError(f"cannot parse size {text!r}")
    value = float(m.group(1))
    unit = (m.group(2) or "B").lower()
    return int(value * _UNITS[unit])


@dataclass
class CanopusConfig:
    """Parsed configuration: storage, transports, pipeline parameters."""

    hierarchy: StorageHierarchy
    transports: dict[str, Transport]
    levels: int = 3
    codec: str = "zfp"
    tolerance: float = 1e-6
    decimation: float = 2.0
    placement: str = "walk"
    extra: dict = field(default_factory=dict)

    def transport_for(self, tier_name: str) -> Transport:
        try:
            return self.transports[tier_name]
        except KeyError:
            raise ConfigError(f"no transport configured for tier {tier_name!r}") from None


def parse_config(
    source: str | Path, *, clock: SimClock | None = None
) -> CanopusConfig:
    """Parse an XML document (string or file path) into a config.

    A shared :class:`SimClock` may be injected so several configs charge
    one timeline.
    """
    text = str(source)
    if "\n" not in text and Path(text).exists():
        text = Path(text).read_text(encoding="utf-8")
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigError(f"invalid XML: {exc}") from exc
    if root.tag != "canopus-config":
        raise ConfigError(f"expected <canopus-config>, got <{root.tag}>")

    storage_el = root.find("storage")
    if storage_el is None:
        raise ConfigError("missing <storage> section")
    storage_root = Path(storage_el.get("root", "."))
    clock = clock if clock is not None else SimClock()

    default_backend = storage_el.get("backend", "filesystem")
    default_shards = int(storage_el.get("shards", "4"))
    default_chunk = parse_size(storage_el.get("chunk", "256KiB"))
    default_replicas = storage_el.get("replicas")

    tiers: list[StorageTier] = []
    for tier_el in storage_el.findall("tier"):
        name = tier_el.get("name")
        device = tier_el.get("device")
        capacity = tier_el.get("capacity")
        if not (name and device and capacity):
            raise ConfigError("<tier> needs name, device, and capacity")
        backend_kind = tier_el.get("backend", default_backend)
        replicas = tier_el.get("replicas", default_replicas)
        net_bw = tier_el.get("network_bandwidth")
        net_lat = tier_el.get("network_latency")
        try:
            backend = make_backend(
                backend_kind,
                storage_root / name,
                shards=int(tier_el.get("shards", default_shards)),
                chunk_size=parse_size(tier_el.get("chunk", default_chunk)),
                replicas=int(replicas) if replicas is not None else None,
                network_bandwidth=(
                    parse_size(net_bw) if net_bw is not None else None
                ),
                network_latency=float(net_lat) if net_lat is not None else None,
            )
        except ReproError as exc:
            raise ConfigError(f"tier {name!r}: {exc}") from exc
        tiers.append(
            StorageTier(
                name, device, parse_size(capacity), storage_root / name,
                clock, backend=backend,
            )
        )
    if not tiers:
        raise ConfigError("<storage> declares no tiers")
    hierarchy = StorageHierarchy(tiers)

    transports: dict[str, Transport] = {}
    for tr_el in root.findall("transport"):
        tier_name = tr_el.get("tier")
        method = tr_el.get("method", "POSIX")
        if tier_name is None:
            raise ConfigError("<transport> needs a tier attribute")
        params = {}
        for k, v in tr_el.attrib.items():
            if k in ("tier", "method"):
                continue
            # Network parameters take size strings / floats; everything
            # else (writers, aggregators, ...) is an integer count.
            if k == "network_bandwidth":
                params[k] = parse_size(v)
            elif k == "network_latency":
                params[k] = float(v)
            else:
                params[k] = int(v)
        transports[tier_name] = make_transport(
            method, hierarchy.tier(tier_name), **params
        )
    # Tiers without an explicit transport default to POSIX.
    for tier in hierarchy:
        transports.setdefault(tier.name, make_transport("POSIX", tier))

    cfg = CanopusConfig(hierarchy=hierarchy, transports=transports)
    placement_el = root.find("placement")
    if placement_el is not None:
        policy = placement_el.get("policy", "walk")
        if policy not in ("walk", "cost"):
            raise ConfigError(
                f"<placement> policy must be 'walk' or 'cost', not {policy!r}"
            )
        cfg.placement = policy
    can_el = root.find("canopus")
    if can_el is not None:
        attrs = dict(can_el.attrib)
        if "levels" in attrs:
            cfg.levels = int(attrs.pop("levels"))
        if "codec" in attrs:
            cfg.codec = attrs.pop("codec")
        if "tolerance" in attrs:
            cfg.tolerance = float(attrs.pop("tolerance"))
        if "decimation" in attrs:
            cfg.decimation = float(attrs.pop("decimation"))
        cfg.extra = attrs
    return cfg
