"""Concurrent retrieval engine: batched, cached, prefetching range reads.

The Canopus read side is where the paper's value lives — analytics
restore accuracy progressively from base + deltas spread across tiers —
but a naive reader fetches one product at a time and pays full per-op
latency for each. The engine front-ends the tier transports with three
mechanisms:

* a byte-budgeted LRU **range cache** (:mod:`repro.io.cache`) so
  repeated progressive queries stop re-paying slow-tier reads;
* **batched reads** (:meth:`RetrievalEngine.read_many`): requests are
  coalesced per subfile and issued concurrently across tiers, charged
  with the overlap model — per-tier batches use the device's stream
  concurrency (:meth:`~repro.storage.device.DeviceModel.concurrent_read_seconds`)
  and different tiers overlap entirely (max-per-tier, via
  :meth:`~repro.storage.simclock.SimClock.charge_concurrent`);
* **prefetch** (:meth:`RetrievalEngine.prefetch`): the decoder knows
  the next level's keys before it needs them, so their byte ranges are
  fetched by worker threads while the current delta decompresses; the
  simulated charge is issued deterministically at submit time, so the
  accounting never depends on thread scheduling.

Real bytes always move through :meth:`Transport.peek_range` (uncharged);
the engine owns every simulated charge it causes. CRC-32 checksums from
the catalog are verified on every fetch unless the caller opts out.
"""

from __future__ import annotations

import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import BPFormatError, StorageError
from repro.io.cache import RangeCache
from repro.io.metadata import VariableRecord
from repro.io.transports import Transport
from repro.obs import context as obs_context
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["EngineStats", "RetrievalEngine"]

#: Coalesce ranges in the same subfile when the gap between them is at
#: most this many bytes — reading the gap is cheaper than a second op.
_COALESCE_GAP = 4096


class EngineStats:
    """Cache/prefetch counters, as a view over a metrics registry.

    Historically a plain dataclass mutated with ``+=`` from whichever
    thread got there first; now every counter lives in a thread-safe
    :class:`~repro.obs.metrics.MetricsRegistry` (worker threads update
    hit counters concurrently with the submit path). The attribute API
    (``stats.hits``, ``stats.hits_by_tier``, ...) is preserved as
    read-only properties, so existing benchmarks keep working.
    """

    #: Scalar counters exposed as attributes and snapshot keys.
    _SCALARS = (
        "hits",
        "misses",
        "bytes_from_cache",
        "prefetch_issued",
        "prefetch_useful",
        "batches",
        "coalesced_spans",
        "failover_retries",
    )
    #: Per-tier counter families exposed as dict-valued attributes.
    _BY_TIER = ("hits_by_tier", "misses_by_tier", "bytes_from_tier")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- mutation (engine-internal) -------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        self.registry.counter(f"engine.{name}").inc(n)

    def record_hit(self, tier: str, nbytes: int) -> None:
        self.registry.counter("engine.hits").inc()
        self.registry.counter("engine.hits_by_tier", tier=tier).inc()
        self.registry.counter("engine.bytes_from_cache").inc(nbytes)

    def record_miss(self, tier: str, nbytes: int) -> None:
        self.registry.counter("engine.misses").inc()
        self.registry.counter("engine.misses_by_tier", tier=tier).inc()
        self.registry.counter("engine.bytes_from_tier", tier=tier).inc(nbytes)

    # -- view -----------------------------------------------------------
    def __getattr__(self, name: str):
        # Only consulted for names not found normally: map the legacy
        # dataclass attributes onto registry lookups.
        if name in EngineStats._SCALARS:
            return self.registry.value(f"engine.{name}")
        if name in EngineStats._BY_TIER:
            return self.registry.label_values(f"engine.{name}", "tier")
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def hit_ratio(self) -> float:
        """Range-cache hit fraction over all lookups (0.0 when idle).

        The service's ``/v1/metrics`` endpoint surfaces this per open
        campaign, so operators see cache effectiveness without scraping
        raw counters.
        """
        hits = self.registry.value("engine.hits")
        total = hits + self.registry.value("engine.misses")
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (thread-safe)."""
        out: dict = {name: self.registry.value(f"engine.{name}")
                     for name in self._SCALARS}
        for name in self._BY_TIER:
            out[name] = self.registry.label_values(f"engine.{name}", "tier")
        out["hit_ratio"] = self.hit_ratio
        return out

    def as_dict(self) -> dict:
        return self.snapshot()

    def reset(self) -> None:
        """Zero all counters (for per-phase measurement windows)."""
        self.registry.reset()

    def __repr__(self) -> str:
        return (
            f"EngineStats(hits={self.hits}, misses={self.misses}, "
            f"prefetch={self.prefetch_useful}/{self.prefetch_issued})"
        )


@dataclass(frozen=True)
class _Span:
    """One coalesced byte range to fetch from a tier subfile."""

    tier: str
    subfile: str
    offset: int
    length: int
    records: tuple[VariableRecord, ...]


class RetrievalEngine:
    """Thread-pool-backed fetcher shared by one open dataset.

    Parameters
    ----------
    hierarchy / transports:
        Where the bytes live and how to reach them (the dataset's own).
    cache_bytes:
        Range-cache budget; ``0`` disables caching *and* prefetching
        (cold-read charges only — the benchmark opt-out).
    workers:
        Thread-pool width for concurrent span fetches.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        transports: dict[str, Transport],
        *,
        cache_bytes: int = 64 << 20,
        workers: int = 4,
    ) -> None:
        if workers < 1:
            raise StorageError("engine workers must be >= 1")
        self.hierarchy = hierarchy
        self.transports = transports
        self.cache = RangeCache(cache_bytes)
        self.stats = EngineStats()
        self._workers = workers
        self._pool: ThreadPoolExecutor | None = None
        #: (subfile, offset, length) of an individual record -> span future.
        self._inflight: dict[tuple[str, int, int], Future] = {}

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Thread-pool width (read-only; decoders inherit it by default)."""
        return self._workers

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-io"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._inflight.clear()

    # ------------------------------------------------------------------
    def _locate(self, rec: VariableRecord) -> str:
        """Current tier of a record's subfile (migration-aware)."""
        if self.hierarchy.tier(rec.tier).exists(rec.subfile):
            return rec.tier
        current = self.hierarchy.locate(rec.subfile)
        if current is None:
            raise StorageError(f"subfile {rec.subfile!r} not found on any tier")
        return current.name

    def _peek_resilient(
        self, tier_name: str, subfile: str, offset: int, length: int
    ) -> tuple[bytes, str]:
        """Uncharged range read that survives re-placement and failures.

        Two failure shapes are retried, bounded at three attempts:

        * a migration executing between locate and fetch deletes the
          source copy after the destination copy is fully registered, so
          on a miss we re-locate and retry against the subfile's new
          tier;
        * a replicated backend may fail one read while a replica is
          dying under it, then serve the next from a surviving mirror
          (its own failover already retries per-replica; this loop adds
          one same-tier second chance on top).

        Restores stay bit-identical while placement moves data — or
        replicas fail — underneath them; only when no tier and no
        replica can serve the range does the error surface.
        """
        attempts = 3
        last: StorageError | None = None
        retried_same_tier = False
        for attempt in range(attempts):
            try:
                data = self.transports[tier_name].peek_range(
                    subfile, offset, length
                )
                if attempt:
                    self.stats.incr("failover_retries")
                return data, tier_name
            except StorageError as exc:
                last = exc
                current = self.hierarchy.locate(subfile)
                if current is not None and current.name != tier_name:
                    tier_name = current.name
                    continue
                if current is None or retried_same_tier:
                    raise
                retried_same_tier = True
        raise last if last is not None else StorageError(
            f"subfile {subfile!r} unreadable"
        )

    @staticmethod
    def _key(rec: VariableRecord) -> tuple[str, int, int]:
        return (rec.subfile, rec.offset, rec.length)

    @staticmethod
    def _verify(rec: VariableRecord, data: bytes) -> bytes:
        if rec.checksum:
            crc = zlib.crc32(data) & 0xFFFFFFFF
            if crc != rec.checksum:
                raise BPFormatError(
                    f"checksum mismatch for {rec.key!r}: stored "
                    f"{rec.checksum:08x}, read {crc:08x}"
                )
        return data

    # ------------------------------------------------------------------
    def read(self, rec: VariableRecord, *, verify: bool = True) -> bytes:
        """Fetch one record's bytes: cache → in-flight prefetch → tier.

        A cold read charges exactly the legacy per-request cost
        (``latency + length / bandwidth``), so serial retrieval through
        the engine is charge-identical to the pre-engine read path.
        """
        tracer = trace.get_tracer()
        if tracer is None:
            return self._read(rec, verify)
        with tracer.span("engine.read", "cache", {"key": rec.key}) as sp:
            hits_before = self.stats.hits
            data = self._read(rec, verify)
            sp.note(hit=self.stats.hits > hits_before, nbytes=rec.length)
            return data

    def _read(self, rec: VariableRecord, verify: bool) -> bytes:
        key = self._key(rec)
        entry = self.cache.get(key)
        if entry is None:
            future = self._inflight.get(key)
            if future is not None:
                future.result()  # wall-time wait; charge already issued
                entry = self.cache.get(key)
        if entry is not None:
            if entry.prefetched:
                entry.prefetched = False
                self.stats.incr("prefetch_useful")
            self.stats.record_hit(entry.tier, rec.length)
            return entry.data
        data, tier_name = self._peek_resilient(
            self._locate(rec), rec.subfile, rec.offset, rec.length
        )
        tier = self.hierarchy.tier(tier_name)
        tier.clock.charge(
            tier_name, "read", rec.length,
            tier.device.read_seconds(rec.length), rec.key,
        )
        if verify:
            self._verify(rec, data)
        self.stats.record_miss(tier_name, rec.length)
        self.cache.put(key, data, tier_name)
        return data

    # ------------------------------------------------------------------
    def _coalesce(self, records: list[VariableRecord]) -> list[_Span]:
        """Group uncached records into per-(tier, subfile) fetch spans."""
        by_file: dict[tuple[str, str], list[VariableRecord]] = {}
        for rec in records:
            by_file.setdefault((self._locate(rec), rec.subfile), []).append(rec)
        spans: list[_Span] = []
        for (tier, subfile), recs in sorted(by_file.items()):
            recs.sort(key=lambda r: (r.offset, r.length))
            group: list[VariableRecord] = []
            start = end = -1
            for rec in recs:
                if group and rec.offset - end <= _COALESCE_GAP:
                    end = max(end, rec.offset + rec.length)
                    group.append(rec)
                    continue
                if group:
                    spans.append(
                        _Span(tier, subfile, start, end - start, tuple(group))
                    )
                group = [rec]
                start, end = rec.offset, rec.offset + rec.length
            if group:
                spans.append(_Span(tier, subfile, start, end - start, tuple(group)))
        return spans

    def _charge_spans(self, spans: list[_Span], label: str) -> float:
        """Deterministic overlapped charge for one concurrent batch."""
        if not spans:
            return 0.0
        sizes_by_tier: dict[str, list[int]] = {}
        for span in spans:
            sizes_by_tier.setdefault(span.tier, []).append(span.length)
        clock = self.hierarchy.clock
        entries = []
        for tier_name in sorted(sizes_by_tier):
            sizes = sizes_by_tier[tier_name]
            device = self.hierarchy.tier(tier_name).device
            entries.append(
                (
                    tier_name,
                    "read",
                    sum(sizes),
                    device.concurrent_read_seconds(sizes),
                )
            )
        self.stats.incr("batches")
        self.stats.incr("coalesced_spans", len(spans))
        return clock.charge_concurrent(entries, label or "engine-batch")

    def _fetch_span(
        self, span: _Span, *, verify: bool, prefetched: bool
    ) -> dict[tuple[str, int, int], bytes]:
        """Move one span's real bytes and fan them out into the cache."""
        tracer = trace.get_tracer()
        if tracer is None:
            return self._fetch_span_inner(span, verify=verify, prefetched=prefetched)
        with tracer.span(
            "engine.fetch_span", "io",
            {
                "tier": span.tier, "subfile": span.subfile,
                "nbytes": span.length, "records": len(span.records),
                "prefetched": prefetched,
            },
        ):
            return self._fetch_span_inner(
                span, verify=verify, prefetched=prefetched
            )

    def _fetch_span_inner(
        self, span: _Span, *, verify: bool, prefetched: bool
    ) -> dict[tuple[str, int, int], bytes]:
        # Cache entries keep the planned tier label even if the retry
        # served the bytes from elsewhere; the charge was already issued
        # against the planned tier at batch time.
        blob, _ = self._peek_resilient(
            span.tier, span.subfile, span.offset, span.length
        )
        out: dict[tuple[str, int, int], bytes] = {}
        try:
            for rec in span.records:
                lo = rec.offset - span.offset
                data = blob[lo:lo + rec.length]
                if verify:
                    self._verify(rec, data)
                self.cache.put(
                    self._key(rec), data, span.tier, prefetched=prefetched
                )
                out[self._key(rec)] = data
        finally:
            for rec in span.records:
                self._inflight.pop(self._key(rec), None)
        return out

    def read_many(
        self,
        records: list[VariableRecord],
        *,
        verify: bool = True,
        label: str = "",
    ) -> dict[str, bytes]:
        """Fetch a batch of records, coalesced and issued concurrently.

        Returns ``{record.key: bytes}``. Cached and in-flight ranges are
        reused; the rest is charged as one overlapped batch.
        """
        tracer = trace.get_tracer()
        if tracer is None:
            return self._read_many(records, verify=verify, label=label)
        with tracer.span(
            "engine.read_many", "cache",
            {"requested": len(records), "label": label},
        ) as sp:
            hits_before = self.stats.hits
            misses_before = self.stats.misses
            out = self._read_many(records, verify=verify, label=label)
            sp.note(
                hits=self.stats.hits - hits_before,
                misses=self.stats.misses - misses_before,
            )
            return out

    def _read_many(
        self,
        records: list[VariableRecord],
        *,
        verify: bool,
        label: str,
    ) -> dict[str, bytes]:
        out: dict[str, bytes] = {}
        missing: list[VariableRecord] = []
        waiting: list[VariableRecord] = []
        seen: set[tuple[str, int, int]] = set()
        for rec in records:
            key = self._key(rec)
            if key in seen:
                continue
            seen.add(key)
            entry = self.cache.get(key)
            if entry is not None:
                if entry.prefetched:
                    entry.prefetched = False
                    self.stats.incr("prefetch_useful")
                self.stats.record_hit(entry.tier, rec.length)
                out[rec.key] = entry.data
            elif key in self._inflight:
                waiting.append(rec)
            else:
                missing.append(rec)

        spans = self._coalesce(missing)
        self._charge_spans(spans, label)
        for rec in missing:
            self.stats.record_miss(self._locate(rec), rec.length)
        if len(spans) > 1:
            # propagate: worker fetches inherit the submitting request's
            # trace context (no-op outside a request).
            fetched = self._executor().map(
                obs_context.propagate(
                    lambda s: self._fetch_span(
                        s, verify=verify, prefetched=False
                    )
                ),
                spans,
            )
        else:
            fetched = (
                self._fetch_span(s, verify=verify, prefetched=False)
                for s in spans
            )
        by_key = {}
        for chunk in fetched:
            by_key.update(chunk)
        for rec in missing:
            out[rec.key] = by_key[self._key(rec)]

        for rec in waiting:
            future = self._inflight.get(self._key(rec))
            if future is not None:
                future.result()
            entry = self.cache.get(self._key(rec))
            if entry is None:  # evicted between completion and consumption
                out[rec.key] = self.read(rec, verify=verify)
                continue
            if entry.prefetched:
                entry.prefetched = False
                self.stats.incr("prefetch_useful")
            self.stats.record_hit(entry.tier, rec.length)
            out[rec.key] = entry.data
        return out

    # ------------------------------------------------------------------
    def prefetch(
        self,
        records: list[VariableRecord],
        *,
        verify: bool = True,
        label: str = "",
    ) -> int:
        """Start fetching records in the background; returns spans issued.

        The simulated charge for the whole batch is issued *now* (at
        submit time, overlapped per the batch model); worker threads
        then move the real bytes into the cache while the caller
        decompresses/applies the current level. Already-cached and
        already-in-flight ranges are skipped, so repeated hints are
        free. A disabled cache (``cache_bytes=0``) turns prefetching
        into a no-op — there would be nowhere to land the bytes.
        """
        if self.cache.capacity_bytes == 0:
            return 0
        missing = []
        seen: set[tuple[str, int, int]] = set()
        for rec in records:
            key = self._key(rec)
            if key in seen or key in self.cache or key in self._inflight:
                continue
            seen.add(key)
            missing.append(rec)
        spans = self._coalesce(missing)
        if not spans:
            return 0
        self._charge_spans(spans, label or "prefetch")
        for rec in missing:
            self.stats.record_miss(self._locate(rec), rec.length)
        self.stats.incr("prefetch_issued", len(missing))
        pool = self._executor()
        fetch = obs_context.propagate(self._fetch_span)
        for span in spans:
            future = pool.submit(
                fetch, span, verify=verify, prefetched=True
            )
            for rec in span.records:
                self._inflight[self._key(rec)] = future
        return len(spans)

    def drain(self) -> None:
        """Block until every in-flight prefetch has landed."""
        for future in list(self._inflight.values()):
            future.result()

    def __repr__(self) -> str:
        return (
            f"RetrievalEngine(cache={self.cache!r}, "
            f"workers={self._workers}, inflight={len(self._inflight)})"
        )
