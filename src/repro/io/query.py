"""Query-driven retrieval: prune products by value statistics.

The paper's related work (§V) motivates query-driven exploration
(MLOC, SDS): analytics often ask "where does dpot exceed a threshold?"
rather than "give me everything". Canopus's chunked deltas make this
cheap: the encoder records per-product value statistics (min/max of the
*restored* contribution range) in the catalog, and the query engine
prunes chunks that provably cannot satisfy a predicate before any data
I/O happens.

This composes with progressive refinement: detect candidate regions on
the base, then refine only the delta chunks whose statistics (or
bounding boxes) intersect the query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VariableNotFoundError
from repro.io.dataset import BPDataset
from repro.io.metadata import VariableRecord

__all__ = ["ChunkStats", "QueryEngine", "attach_stats"]


@dataclass(frozen=True)
class ChunkStats:
    """Value statistics of one stored product."""

    vmin: float
    vmax: float
    vabs_max: float

    @classmethod
    def of(cls, values: np.ndarray) -> "ChunkStats":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return cls(0.0, 0.0, 0.0)
        return cls(
            vmin=float(values.min()),
            vmax=float(values.max()),
            vabs_max=float(np.abs(values).max()),
        )

    def as_dict(self) -> dict[str, float]:
        return {"vmin": self.vmin, "vmax": self.vmax, "vabs_max": self.vabs_max}


def attach_stats(record: VariableRecord, values: np.ndarray) -> None:
    """Store a product's value statistics in its catalog record."""
    record.attrs["stats"] = ChunkStats.of(values).as_dict()


class QueryEngine:
    """Predicate evaluation over catalog statistics (no data I/O)."""

    def __init__(self, dataset: BPDataset) -> None:
        self.dataset = dataset

    def stats_of(self, key: str) -> ChunkStats | None:
        rec = self.dataset.inq(key)
        raw = rec.attrs.get("stats")
        if raw is None:
            return None
        return ChunkStats(**raw)

    # ------------------------------------------------------------------
    def candidates_above(
        self, threshold: float, *, kind: str | None = None, level: int | None = None
    ) -> list[str]:
        """Keys whose stored values may exceed ``threshold``.

        Products without statistics are conservatively kept (they might
        match); products whose ``vmax`` is below the threshold are
        provably irrelevant and pruned.
        """
        hits = []
        for rec in self.dataset.select(kind=kind, level=level):
            raw = rec.attrs.get("stats")
            if raw is None or raw["vmax"] >= threshold:
                hits.append(rec.key)
        return sorted(hits)

    def candidates_significant(
        self, magnitude: float, *, kind: str = "delta", level: int | None = None
    ) -> list[str]:
        """Delta chunks whose correction can move any value by ≥ magnitude.

        Skipping insignificant deltas is a lossy-but-bounded refinement:
        the unread chunks change the field by less than ``magnitude``, so
        the restored level is within that bound of the true level.
        """
        hits = []
        for rec in self.dataset.select(kind=kind, level=level):
            raw = rec.attrs.get("stats")
            if raw is None or raw["vabs_max"] >= magnitude:
                hits.append(rec.key)
        return sorted(hits)

    def prune_report(
        self, threshold: float, *, kind: str | None = None
    ) -> dict[str, int]:
        """How much I/O a threshold query avoids, in products and bytes."""
        records = self.dataset.select(kind=kind)
        kept = set(self.candidates_above(threshold, kind=kind))
        return {
            "total_products": len(records),
            "kept_products": len(kept),
            "total_bytes": sum(r.length for r in records),
            "kept_bytes": sum(r.length for r in records if r.key in kept),
        }

    # ------------------------------------------------------------------
    def require(self, key: str) -> ChunkStats:
        stats = self.stats_of(key)
        if stats is None:
            raise VariableNotFoundError(f"no statistics stored for {key!r}")
        return stats
