"""Query-driven retrieval: prune products by value statistics.

The paper's related work (§V) motivates query-driven exploration
(MLOC, SDS): analytics often ask "where does dpot exceed a threshold?"
rather than "give me everything". Canopus's chunked deltas make this
cheap: the encoder records per-product value statistics (min/max of the
*restored* contribution range) in the catalog, and the query engine
prunes chunks that provably cannot satisfy a predicate before any data
I/O happens.

This composes with progressive refinement: detect candidate regions on
the base, then refine only the delta chunks whose statistics (or
bounding boxes) intersect the query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import VariableNotFoundError
from repro.io.dataset import BPDataset
from repro.io.metadata import VariableRecord

__all__ = ["ChunkStats", "QueryEngine", "attach_stats"]


@dataclass(frozen=True)
class ChunkStats:
    """Value statistics of one stored product.

    Beyond the pruning bounds (min/max/|max|), the first two moments
    (``vsum``/``vsumsq`` over ``count`` finite values) are recorded so
    mean/RMS aggregate exactly across chunks: sums add, so a region's
    statistics come straight from its surviving chunks' summaries with
    zero data I/O — the pushdown surface of ``repro.query``. The moment
    fields default to zero/absent so summaries written before they
    existed still deserialize (``ChunkStats(**raw)``).

    Statistics are NaN-safe: non-finite values (sentinel NaNs, ±inf)
    are excluded from every reduction and from ``count``, so a field
    with NaN holes cannot poison pruning decisions — an all-NaN chunk
    reports zeros with ``count == 0``.
    """

    vmin: float
    vmax: float
    vabs_max: float
    vsum: float = 0.0
    vsumsq: float = 0.0
    count: int = 0

    @classmethod
    def of(cls, values: np.ndarray) -> "ChunkStats":
        values = np.asarray(values, dtype=np.float64).ravel()
        finite = values[np.isfinite(values)] if values.size else values
        if finite.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            vmin=float(finite.min()),
            vmax=float(finite.max()),
            vabs_max=float(np.abs(finite).max()),
            vsum=float(finite.sum()),
            vsumsq=float(np.square(finite).sum()),
            count=int(finite.size),
        )

    @property
    def mean(self) -> float:
        return self.vsum / self.count if self.count else 0.0

    @property
    def rms(self) -> float:
        return math.sqrt(self.vsumsq / self.count) if self.count else 0.0

    @classmethod
    def merge(cls, parts: "list[ChunkStats]") -> "ChunkStats":
        """Exact aggregate of several chunks' statistics.

        Min/max/|max| combine by extrema and the moments by summation,
        so the merge of per-chunk summaries equals the summary of the
        concatenated values. Empty (count 0) parts are identities.
        """
        live = [p for p in parts if p.count]
        if not live:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            vmin=min(p.vmin for p in live),
            vmax=max(p.vmax for p in live),
            vabs_max=max(p.vabs_max for p in live),
            vsum=sum(p.vsum for p in live),
            vsumsq=sum(p.vsumsq for p in live),
            count=sum(p.count for p in live),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "vmin": self.vmin,
            "vmax": self.vmax,
            "vabs_max": self.vabs_max,
            "vsum": self.vsum,
            "vsumsq": self.vsumsq,
            "count": self.count,
        }


def attach_stats(record: VariableRecord, values: np.ndarray) -> None:
    """Store a product's value statistics in its catalog record."""
    record.attrs["stats"] = ChunkStats.of(values).as_dict()


class QueryEngine:
    """Predicate evaluation over catalog statistics (no data I/O)."""

    def __init__(self, dataset: BPDataset) -> None:
        self.dataset = dataset

    def stats_of(self, key: str) -> ChunkStats | None:
        rec = self.dataset.inq(key)
        raw = rec.attrs.get("stats")
        if raw is None:
            return None
        return ChunkStats(**raw)

    # ------------------------------------------------------------------
    def candidates_above(
        self, threshold: float, *, kind: str | None = None, level: int | None = None
    ) -> list[str]:
        """Keys whose stored values may exceed ``threshold``.

        Products without statistics are conservatively kept (they might
        match); products whose ``vmax`` is below the threshold are
        provably irrelevant and pruned.
        """
        hits = []
        for rec in self.dataset.select(kind=kind, level=level):
            raw = rec.attrs.get("stats")
            if raw is None or raw["vmax"] >= threshold:
                hits.append(rec.key)
        return sorted(hits)

    def candidates_significant(
        self, magnitude: float, *, kind: str = "delta", level: int | None = None
    ) -> list[str]:
        """Delta chunks whose correction can move any value by ≥ magnitude.

        Skipping insignificant deltas is a lossy-but-bounded refinement:
        the unread chunks change the field by less than ``magnitude``, so
        the restored level is within that bound of the true level.
        """
        hits = []
        for rec in self.dataset.select(kind=kind, level=level):
            raw = rec.attrs.get("stats")
            if raw is None or raw["vabs_max"] >= magnitude:
                hits.append(rec.key)
        return sorted(hits)

    def prune_report(
        self, threshold: float, *, kind: str | None = None
    ) -> dict[str, int]:
        """How much I/O a threshold query avoids, in products and bytes."""
        records = self.dataset.select(kind=kind)
        kept = set(self.candidates_above(threshold, kind=kind))
        return {
            "total_products": len(records),
            "kept_products": len(kept),
            "total_bytes": sum(r.length for r in records),
            "kept_bytes": sum(r.length for r in records if r.key in kept),
        }

    # ------------------------------------------------------------------
    def require(self, key: str) -> ChunkStats:
        stats = self.stats_of(key)
        if stats is None:
            raise VariableNotFoundError(f"no statistics stored for {key!r}")
        return stats
