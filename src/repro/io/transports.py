"""I/O transport methods.

ADIOS decouples *what* is written from *how* (paper Fig. 2 lists POSIX,
MPI, MPI_AGGREGATE, MPI_LUSTRE, DataSpaces, FLEXPATH). A transport here
wraps a tier's read/write with a method-specific cost model, and the
choice is configurable per tier through the XML config — "switching
transport modes is a runtime option, requiring no source code change".

* :class:`PosixTransport` — direct write, the tier device cost only.
* :class:`AggregatingTransport` — MPI_AGGREGATE-like: ``writers`` ranks
  funnel data to ``aggregators`` processes over the interconnect before
  hitting storage; the gather hop is charged at network bandwidth, and
  fewer-but-larger stream writes amortize per-op latency.
* :class:`StagingTransport` — in-transit (DataSpaces/FLEXPATH-like):
  writes land in remote staging memory at network speed; a later
  :meth:`~StagingTransport.drain` flushes to the tier, off the
  application's critical path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import TransportError
from repro.storage.backend import (
    DEFAULT_NETWORK_BANDWIDTH,
    DEFAULT_NETWORK_LATENCY,
)
from repro.storage.tier import StorageTier

__all__ = [
    "Transport",
    "PosixTransport",
    "AggregatingTransport",
    "StagingTransport",
    "make_transport",
]

# Defaults for the interconnect cost model; per-transport values are
# configurable via constructor kwargs and the XML config. Shared with
# RemoteBackend so "the network" costs the same whether a byte crosses
# it inside a transport hop or an S3-class backend hop.
_NETWORK_BANDWIDTH = DEFAULT_NETWORK_BANDWIDTH
_NETWORK_LATENCY = DEFAULT_NETWORK_LATENCY


class Transport(ABC):
    """Write/read strategy bound to one storage tier.

    ``network_bandwidth`` (bytes/s) and ``network_latency`` (seconds)
    parameterize the interconnect hop used by the aggregating and
    staging methods; the defaults model a Gemini/Aries-class link.
    """

    method = ""

    def __init__(
        self,
        tier: StorageTier,
        *,
        network_bandwidth: float = _NETWORK_BANDWIDTH,
        network_latency: float = _NETWORK_LATENCY,
    ):
        if network_bandwidth <= 0:
            raise TransportError("network_bandwidth must be positive")
        if network_latency < 0:
            raise TransportError("network_latency must be >= 0")
        self.tier = tier
        self.network_bandwidth = network_bandwidth
        self.network_latency = network_latency

    @abstractmethod
    def write(self, relpath: str, data: bytes, label: str = "") -> None:
        """Store bytes on the tier, charging the method's cost model."""

    def read(self, relpath: str, label: str = "") -> bytes:
        return self.tier.read(relpath, label)

    def read_range(
        self, relpath: str, offset: int, length: int, label: str = ""
    ) -> bytes:
        return self.tier.read_range(relpath, offset, length, label)

    def peek_range(self, relpath: str, offset: int, length: int) -> bytes:
        """Uncharged, thread-safe range read (retrieval-engine data path).

        The engine accounts simulated time per overlapped batch itself,
        so the byte movement must not double-charge the clock.
        """
        return self.tier.peek_range(relpath, offset, length)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tier={self.tier.name!r})"


class PosixTransport(Transport):
    """One file per process, written directly (ADIOS POSIX)."""

    method = "POSIX"

    def write(self, relpath: str, data: bytes, label: str = "") -> None:
        self.tier.write(relpath, data, label)


class AggregatingTransport(Transport):
    """MPI_AGGREGATE-like two-stage write.

    Parameters
    ----------
    writers:
        Number of producing ranks.
    aggregators:
        Number of ranks that actually touch storage.
    """

    method = "MPI_AGGREGATE"

    def __init__(
        self,
        tier: StorageTier,
        writers: int = 1,
        aggregators: int = 1,
        **net_params,
    ):
        super().__init__(tier, **net_params)
        if writers < 1 or aggregators < 1:
            raise TransportError("writers and aggregators must be >= 1")
        if aggregators > writers:
            raise TransportError("cannot have more aggregators than writers")
        self.writers = writers
        self.aggregators = aggregators

    def write(self, relpath: str, data: bytes, label: str = "") -> None:
        # Stage 1: gather from writers to aggregators over the network.
        gather_seconds = (
            self.network_latency + len(data) / self.network_bandwidth
        )
        self.tier.clock.charge(
            self.tier.name, "write", 0, gather_seconds, label or "aggregate-gather"
        )
        # Stage 2: the tier write itself. Aggregation reduces the number of
        # storage ops by writers/aggregators; model the saving as a latency
        # rebate (bandwidth is unchanged — same bytes hit the device).
        event = self.tier.write(relpath, data, label)
        rebate = self.tier.device.latency * (1 - self.aggregators / self.writers)
        if rebate > 0:
            self.tier.clock.charge(
                self.tier.name, "write", 0, -rebate, "aggregate-latency-rebate"
            )
        del event


class StagingTransport(Transport):
    """In-transit staging: write at network speed now, drain later."""

    method = "STAGING"

    def __init__(self, tier: StorageTier, **net_params):
        super().__init__(tier, **net_params)
        self._pending: dict[str, tuple[bytes, str]] = {}

    def write(self, relpath: str, data: bytes, label: str = "") -> None:
        seconds = self.network_latency + len(data) / self.network_bandwidth
        self.tier.clock.charge(
            "staging", "write", len(data), seconds, label or "stage"
        )
        self._pending[relpath] = (bytes(data), label)

    @property
    def pending(self) -> list[str]:
        return sorted(self._pending)

    def drain(self) -> int:
        """Flush staged data to the tier; returns bytes drained.

        Drain time is charged to the tier but represents work done by
        staging nodes, off the simulation's critical path.
        """
        total = 0
        for relpath, (data, label) in sorted(self._pending.items()):
            self.tier.write(relpath, data, label or "drain")
            total += len(data)
        self._pending.clear()
        return total

    def read(self, relpath: str, label: str = "") -> bytes:
        if relpath in self._pending:
            raise TransportError(
                f"{relpath!r} is staged but not drained; call drain() first"
            )
        return super().read(relpath, label)


def make_transport(method: str, tier: StorageTier, **params) -> Transport:
    """Factory used by the XML configuration layer.

    ``network_bandwidth`` / ``network_latency`` kwargs reach every
    method; remaining params are method-specific (e.g. ``writers`` /
    ``aggregators`` for MPI_AGGREGATE).
    """
    method = method.upper()
    if method == "POSIX":
        return PosixTransport(tier, **params)
    if method == "MPI_AGGREGATE":
        return AggregatingTransport(tier, **params)
    if method == "STAGING":
        return StagingTransport(tier, **params)
    raise TransportError(f"unknown transport method {method!r}")
