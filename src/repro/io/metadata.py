"""Variable metadata and the global catalog index.

ADIOS's BP format is "metadata rich": a global index records where every
variable lives so readers can fetch exactly the bytes they need (paper
§III-E1: "Global metadata maintains the location of the refactored
data"). :class:`VariableRecord` is one index entry; :class:`Catalog` is
the global index serialized as JSON next to the per-tier subfiles.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import BPFormatError, VariableNotFoundError

__all__ = ["VariableRecord", "Catalog"]

_CATALOG_VERSION = 1


@dataclass
class VariableRecord:
    """Location and description of one stored variable payload.

    Attributes
    ----------
    key:
        Unique variable key, e.g. ``"dpot/L2"`` or ``"dpot/delta1-2"``.
    tier:
        Name of the storage tier holding the payload.
    subfile:
        Tier-relative path of the BP subfile containing the payload.
    offset, length:
        Byte range of the payload inside the subfile.
    codec:
        Compressor name recorded at write time ("" = uncompressed).
    kind:
        Semantic role: ``"base"``, ``"delta"``, ``"mapping"``, ``"mesh"``,
        or ``"var"``.
    level:
        Accuracy level l (paper notation), or -1 when not applicable.
    count:
        Element count of the decoded array (0 if unknown/not an array).
    checksum:
        CRC-32 of the payload bytes, recorded at write time (0 = not
        recorded); lets integrity checks detect single-bit corruption
        without understanding the payload.
    attrs:
        Free-form attributes.
    """

    key: str
    tier: str
    subfile: str
    offset: int
    length: int
    codec: str = ""
    kind: str = "var"
    level: int = -1
    count: int = 0
    checksum: int = 0
    attrs: dict = field(default_factory=dict)


class Catalog:
    """Global metadata index for one dataset."""

    def __init__(self, name: str):
        self.name = name
        self.records: dict[str, VariableRecord] = {}
        self.attrs: dict = {}

    def add(self, record: VariableRecord) -> None:
        if record.key in self.records:
            raise BPFormatError(f"duplicate variable key {record.key!r}")
        self.records[record.key] = record

    def get(self, key: str) -> VariableRecord:
        try:
            return self.records[key]
        except KeyError:
            raise VariableNotFoundError(
                f"{self.name}: no variable {key!r}; "
                f"available: {sorted(self.records)[:20]}"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self.records

    def keys(self) -> list[str]:
        return sorted(self.records)

    def select(
        self, *, kind: str | None = None, level: int | None = None
    ) -> list[VariableRecord]:
        """Filter records by kind and/or level (keyword-only, like
        :meth:`repro.io.dataset.BPDataset.select`)."""
        return [
            r
            for r in self.records.values()
            if (kind is None or r.kind == kind)
            and (level is None or r.level == level)
        ]

    # -- serialization ---------------------------------------------------
    def to_json(self) -> bytes:
        doc = {
            "version": _CATALOG_VERSION,
            "name": self.name,
            "attrs": self.attrs,
            "records": [asdict(r) for r in self.records.values()],
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, blob: bytes) -> "Catalog":
        try:
            doc = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BPFormatError(f"corrupt catalog: {exc}") from exc
        if doc.get("version") != _CATALOG_VERSION:
            raise BPFormatError(
                f"unsupported catalog version {doc.get('version')!r}"
            )
        cat = cls(doc["name"])
        cat.attrs = doc.get("attrs", {})
        for rec in doc["records"]:
            cat.add(VariableRecord(**rec))
        return cat
