"""Deprecated import path — use :mod:`repro.api` (or :mod:`repro.io.dataset`).

The dataset class moved to :mod:`repro.io.dataset` when the unified
:mod:`repro.api` façade became the supported public surface. This shim
keeps ``from repro.io.api import BPDataset`` working for one release.
"""

from __future__ import annotations

import warnings

from repro.io.dataset import BPDataset

__all__ = ["BPDataset"]

warnings.warn(
    "repro.io.api is deprecated; import BPDataset from repro.api "
    "(preferred) or repro.io.dataset",
    DeprecationWarning,
    stacklevel=2,
)
