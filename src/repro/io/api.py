"""ADIOS-like dataset API: declarative write / query / read.

This is the interface Canopus plugs into (paper Fig. 2): simulations use
the *write* side, analytics use the *query + read* side, and neither
needs to know which tier holds which product.

Write path::

    ds = BPDataset.create("run42", hierarchy)
    ds.write("dpot/L2", payload, kind="base", level=2, preferred_tier=0)
    ds.close()                      # flushes subfiles + catalog

Read path::

    ds = BPDataset.open("run42", hierarchy)
    info = ds.inq("dpot/L2")        # adios_inq_var equivalent
    payload = ds.read("dpot/L2")    # charged only for this variable's bytes

Each tier receives one BP subfile per dataset; the catalog (global
metadata) lives on the slowest tier, which every job can reach.
"""

from __future__ import annotations

import zlib

from repro.errors import BPFormatError, StorageError
from repro.io.bp import BPWriter
from repro.io.metadata import Catalog, VariableRecord
from repro.io.transports import PosixTransport, Transport
from repro.storage.hierarchy import StorageHierarchy

__all__ = ["BPDataset"]


class BPDataset:
    """Handle to one logical dataset spread across storage tiers."""

    def __init__(
        self,
        name: str,
        hierarchy: StorageHierarchy,
        mode: str,
        transports: dict[str, Transport] | None = None,
    ) -> None:
        if mode not in ("w", "r"):
            raise BPFormatError(f"mode must be 'w' or 'r', not {mode!r}")
        self.name = name
        self.hierarchy = hierarchy
        self.mode = mode
        self.transports = transports or {
            t.name: PosixTransport(t) for t in hierarchy
        }
        self.catalog = Catalog(name)
        self._writers: dict[str, BPWriter] = {}
        self._closed = False
        if mode == "r":
            self._load_catalog()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        hierarchy: StorageHierarchy,
        transports: dict[str, Transport] | None = None,
    ) -> "BPDataset":
        return cls(name, hierarchy, "w", transports)

    @classmethod
    def open(
        cls,
        name: str,
        hierarchy: StorageHierarchy,
        transports: dict[str, Transport] | None = None,
    ) -> "BPDataset":
        return cls(name, hierarchy, "r", transports)

    # -- paths -----------------------------------------------------------
    def _subfile(self, tier_name: str) -> str:
        return f"{self.name}.{tier_name}.bp"

    def _catalog_path(self) -> str:
        return f"{self.name}.catalog.json"

    # -- write side -------------------------------------------------------
    def write(
        self,
        key: str,
        payload: bytes,
        *,
        kind: str = "var",
        level: int = -1,
        count: int = 0,
        codec: str = "",
        preferred_tier: int = 0,
        attrs: dict | None = None,
    ) -> VariableRecord:
        """Buffer one variable payload for the preferred tier.

        The actual tier is chosen by walking down from
        ``preferred_tier`` and skipping tiers whose *remaining* capacity
        (free minus already-buffered bytes) cannot hold the payload —
        the paper's bypass rule, applied against the post-flush state.
        """
        if self.mode != "w":
            raise BPFormatError("dataset is open read-only")
        if self._closed:
            raise BPFormatError("dataset already closed")
        tier = self._choose_tier(len(payload), preferred_tier)
        writer = self._writers.setdefault(tier, BPWriter())
        offset, length = writer.add(key, payload)
        record = VariableRecord(
            key=key,
            tier=tier,
            subfile=self._subfile(tier),
            offset=offset,
            length=length,
            codec=codec,
            kind=kind,
            level=level,
            count=count,
            checksum=zlib.crc32(payload) & 0xFFFFFFFF,
            attrs=attrs or {},
        )
        self.catalog.add(record)
        return record

    def _choose_tier(self, nbytes: int, preferred_index: int) -> str:
        for tier in self.hierarchy.tiers[preferred_index:]:
            buffered = (
                self._writers[tier.name].nbytes
                if tier.name in self._writers
                else 0
            )
            if tier.free_bytes - buffered >= nbytes + _FOOTER_SLACK:
                return tier.name
        raise StorageError(
            f"no tier at index >= {preferred_index} can hold {nbytes} bytes"
        )

    def close(self) -> None:
        """Flush all subfiles through their transports + write the catalog."""
        if self.mode != "w" or self._closed:
            self._closed = True
            return
        for tier_name, writer in sorted(self._writers.items()):
            transport = self.transports[tier_name]
            transport.write(
                self._subfile(tier_name), writer.finalize(), f"{self.name}:subfile"
            )
        slow = self.hierarchy.slowest
        self.transports[slow.name].write(
            self._catalog_path(), self.catalog.to_json(), f"{self.name}:catalog"
        )
        self._closed = True

    def __enter__(self) -> "BPDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- read side ---------------------------------------------------------
    def _load_catalog(self) -> None:
        slow = self.hierarchy.slowest
        blob = self.transports[slow.name].read(
            self._catalog_path(), f"{self.name}:catalog"
        )
        self.catalog = Catalog.from_json(blob)

    def keys(self) -> list[str]:
        return self.catalog.keys()

    def inq(self, key: str) -> VariableRecord:
        """ADIOS ``adios_inq_var`` equivalent: metadata without data."""
        return self.catalog.get(key)

    def read(self, key: str) -> bytes:
        """Fetch exactly one variable's bytes from its tier.

        The catalog records the tier at write time; if the subfile has
        since been migrated/evicted by a tier-management policy, the
        current hierarchy location wins (byte offsets are unchanged —
        migration moves whole subfiles).
        """
        rec = self.catalog.get(key)
        tier_name = rec.tier
        if not self.hierarchy.tier(tier_name).exists(rec.subfile):
            current = self.hierarchy.locate(rec.subfile)
            if current is None:
                raise StorageError(
                    f"subfile {rec.subfile!r} not found on any tier"
                )
            tier_name = current.name
        transport = self.transports[tier_name]
        return transport.read_range(rec.subfile, rec.offset, rec.length, key)

    def select(self, kind: str | None = None, level: int | None = None):
        return self.catalog.select(kind=kind, level=level)


# Slack reserved per subfile for the footer index + trailer when checking
# capacity at write time (footers are small JSON documents).
_FOOTER_SLACK = 16 * 1024
