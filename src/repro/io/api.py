"""Deprecated import path — use :mod:`repro.api` (or :mod:`repro.io.dataset`).

The dataset class moved to :mod:`repro.io.dataset` when the unified
:mod:`repro.api` façade became the supported public surface. This shim
keeps ``from repro.io.api import BPDataset`` working for one release.
The deprecation warning is emitted exactly once per process, however
often the module is (re-)imported.
"""

from __future__ import annotations

from repro.deprecation import warn_once
from repro.io.dataset import BPDataset

__all__ = ["BPDataset"]

warn_once(
    "repro.io.api",
    "repro.io.api is deprecated; import BPDataset from repro.api "
    "(preferred) or repro.io.dataset",
)
