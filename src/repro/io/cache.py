"""Byte-budgeted LRU cache for subfile byte ranges.

Progressive analytics re-read the same products over and over — the
same base for every refinement chain, the same coarse deltas for every
parameter-sensitivity pass — and each repeat pays full slow-tier
latency. The cache front-ends the tiers with analytics-local DRAM:
entries are keyed by ``(subfile, offset, length)`` (the unit the BP
catalog addresses), evicted strictly least-recently-used, and bounded
by a byte budget rather than an entry count because range sizes span
four orders of magnitude (chunk indices to full base payloads).

The cache is thread-safe: the retrieval engine's worker threads insert
prefetched ranges while the foreground thread reads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheEntry", "RangeCache"]

#: Cache key: (subfile relpath, byte offset, byte length).
RangeKey = "tuple[str, int, int]"


@dataclass
class CacheEntry:
    """One cached byte range and where it originally came from."""

    data: bytes
    tier: str
    prefetched: bool = False


class RangeCache:
    """LRU mapping ``(subfile, offset, length)`` → bytes, byte-budgeted.

    Parameters
    ----------
    capacity_bytes:
        Total payload budget. ``0`` disables caching entirely (every
        ``get`` misses, every ``put`` is dropped) — the opt-out for
        benchmarks that need cold-read charges.
    """

    def __init__(self, capacity_bytes: int = 64 << 20) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: OrderedDict[tuple[str, int, int], CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int, int]) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: tuple[str, int, int]) -> CacheEntry | None:
        """Return the entry (refreshing its recency) or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(
        self, key: tuple[str, int, int], data: bytes, tier: str, *,
        prefetched: bool = False,
    ) -> bool:
        """Insert a range; returns False when it cannot be cached.

        Ranges larger than the whole budget bypass the cache (caching
        them would evict everything for one entry that cannot recur
        cheaply anyway).
        """
        nbytes = len(data)
        if nbytes > self.capacity_bytes:
            return False
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._used -= len(previous.data)
            self._entries[key] = CacheEntry(data, tier, prefetched)
            self._used += nbytes
            self.insertions += 1
            while self._used > self.capacity_bytes:
                _, victim = self._entries.popitem(last=False)
                self._used -= len(victim.data)
                self.evictions += 1
            return True

    def invalidate(self, subfile: str | None = None) -> int:
        """Drop entries (all, or one subfile's); returns the count dropped.

        Tier migration moves whole subfiles with unchanged offsets, so
        cached bytes stay valid; invalidation is for writers that reuse
        a dataset name.
        """
        with self._lock:
            if subfile is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._used = 0
                return dropped
            victims = [k for k in self._entries if k[0] == subfile]
            for k in victims:
                self._used -= len(self._entries.pop(k).data)
            return len(victims)

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "insertions": self.insertions,
                "entries": len(self._entries),
                "used_bytes": self._used,
                "capacity_bytes": self.capacity_bytes,
            }

    def __repr__(self) -> str:
        return (
            f"RangeCache(entries={len(self._entries)}, "
            f"used={self._used}/{self.capacity_bytes})"
        )
