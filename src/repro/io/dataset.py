"""ADIOS-like dataset API: declarative write / query / read.

This is the interface Canopus plugs into (paper Fig. 2): simulations use
the *write* side, analytics use the *query + read* side, and neither
needs to know which tier holds which product.

Write path::

    ds = BPDataset.create("run42", hierarchy)
    ds.write("dpot/L2", payload, kind="base", level=2, preferred_tier=0)
    ds.close()                      # flushes subfiles + catalog

Read path::

    ds = BPDataset.open("run42", hierarchy)
    info = ds.inq("dpot/L2")        # adios_inq_var equivalent
    payload = ds.read("dpot/L2")    # charged only for this variable's bytes

Each tier receives one BP subfile per dataset; the catalog (global
metadata) lives on the slowest tier, which every job can reach.

Every read is served through a :class:`~repro.io.engine.RetrievalEngine`
(per open dataset): a byte-budgeted LRU range cache, concurrent batched
reads (:meth:`BPDataset.read_many`), and background prefetch
(:meth:`BPDataset.prefetch`). Payload CRC-32 checksums recorded by the
catalog at write time are verified on every fetch; pass
``verify_checksums=False`` (or ``read(key, verify=False)``) to opt out,
e.g. for benchmarks isolating raw transfer cost.
"""

from __future__ import annotations

import zlib

from repro.errors import BPFormatError, StorageError
from repro.io.bp import BPWriter
from repro.io.engine import EngineStats, RetrievalEngine
from repro.io.metadata import Catalog, VariableRecord
from repro.io.transports import PosixTransport, Transport
from repro.obs import trace
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.placement import (
    PlacementEngine,
    PlacementPlan,
    ProductSpec,
    default_weight,
)

__all__ = ["BPDataset"]


class BPDataset:
    """Handle to one logical dataset spread across storage tiers.

    All constructor arguments after ``name`` and ``hierarchy`` are
    keyword-only; prefer the :meth:`create` / :meth:`open` classmethods
    (or the :mod:`repro.api` façade) over calling this directly.
    """

    def __init__(
        self,
        name: str,
        hierarchy: StorageHierarchy,
        *,
        mode: str,
        transports: dict[str, Transport] | None = None,
        verify_checksums: bool = True,
        cache_bytes: int = 64 << 20,
        workers: int = 4,
        placement: str = "walk",
    ) -> None:
        if mode not in ("w", "r"):
            raise BPFormatError(f"mode must be 'w' or 'r', not {mode!r}")
        if placement not in ("walk", "cost"):
            raise BPFormatError(
                f"placement must be 'walk' or 'cost', not {placement!r}"
            )
        self.name = name
        self.hierarchy = hierarchy
        self.mode = mode
        self.placement = placement
        #: Payloads awaiting close-time cost-based placement.
        self._pending: list[tuple[VariableRecord, bytes, float]] = []
        #: The last :class:`PlacementPlan` applied (cost mode only).
        self.last_plan: PlacementPlan | None = None
        self.transports = transports or {
            t.name: PosixTransport(t) for t in hierarchy
        }
        self.verify_checksums = verify_checksums
        self.catalog = Catalog(name)
        self.engine = RetrievalEngine(
            hierarchy, self.transports, cache_bytes=cache_bytes, workers=workers
        )
        self._writers: dict[str, BPWriter] = {}
        self._closed = False
        if mode == "r":
            self._load_catalog()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        hierarchy: StorageHierarchy,
        transports: dict[str, Transport] | None = None,
        **kwargs,
    ) -> "BPDataset":
        return cls(name, hierarchy, mode="w", transports=transports, **kwargs)

    @classmethod
    def open(
        cls,
        name: str,
        hierarchy: StorageHierarchy,
        transports: dict[str, Transport] | None = None,
        **kwargs,
    ) -> "BPDataset":
        return cls(name, hierarchy, mode="r", transports=transports, **kwargs)

    # -- paths -----------------------------------------------------------
    def _subfile(self, tier_name: str) -> str:
        return f"{self.name}.{tier_name}.bp"

    def _catalog_path(self) -> str:
        return f"{self.name}.catalog.json"

    # -- write side -------------------------------------------------------
    def write(
        self,
        key: str,
        payload: bytes,
        *,
        kind: str = "var",
        level: int = -1,
        count: int = 0,
        codec: str = "",
        preferred_tier: int = 0,
        attrs: dict | None = None,
        weight: float | None = None,
    ) -> VariableRecord:
        """Buffer one variable payload for placement.

        With the default ``walk`` policy the tier is chosen immediately
        by walking down from ``preferred_tier`` and skipping tiers whose
        *remaining* capacity (free minus already-buffered bytes) cannot
        hold the payload — the paper's bypass rule, applied against the
        post-flush state. With the ``cost`` policy the payload is held
        back and the whole batch is placed at :meth:`close` by the
        cost-based :class:`~repro.storage.placement.PlacementEngine`;
        ``weight`` (expected relative read frequency) feeds its cost
        model, defaulting to the kind/level heuristic of
        :func:`~repro.storage.placement.default_weight`.
        """
        if self.mode != "w":
            raise BPFormatError("dataset is open read-only")
        if self._closed:
            raise BPFormatError("dataset already closed")
        if self.placement == "cost":
            record = VariableRecord(
                key=key,
                tier="",
                subfile="",
                offset=0,
                length=len(payload),
                codec=codec,
                kind=kind,
                level=level,
                count=count,
                checksum=zlib.crc32(payload) & 0xFFFFFFFF,
                attrs=attrs or {},
            )
            self.catalog.add(record)
            self._pending.append(
                (
                    record,
                    bytes(payload),
                    default_weight(kind, level) if weight is None else weight,
                )
            )
            return record
        tracer = trace.get_tracer()
        if tracer is None:
            tier = self._choose_tier(len(payload), preferred_tier)
        else:
            with tracer.span(
                "dataset.place", "placement",
                {"key": key, "nbytes": len(payload),
                 "preferred_tier": preferred_tier},
            ) as sp:
                tier = self._choose_tier(len(payload), preferred_tier)
                sp.note(
                    tier=tier,
                    bypassed=tier != self.hierarchy.tiers[preferred_tier].name,
                )
        writer = self._writers.setdefault(tier, BPWriter())
        offset, length = writer.add(key, payload)
        record = VariableRecord(
            key=key,
            tier=tier,
            subfile=self._subfile(tier),
            offset=offset,
            length=length,
            codec=codec,
            kind=kind,
            level=level,
            count=count,
            checksum=zlib.crc32(payload) & 0xFFFFFFFF,
            attrs=attrs or {},
        )
        self.catalog.add(record)
        return record

    def _choose_tier(self, nbytes: int, preferred_index: int) -> str:
        for tier in self.hierarchy.tiers[preferred_index:]:
            buffered = (
                self._writers[tier.name].nbytes
                if tier.name in self._writers
                else 0
            )
            if tier.free_bytes - buffered >= nbytes + _FOOTER_SLACK:
                return tier.name
        raise StorageError(
            f"no tier at index >= {preferred_index} can hold {nbytes} bytes"
        )

    def _apply_cost_placement(self) -> None:
        """Bin pending payloads into subfiles per the cost-based plan.

        Runs once, at close, when every buffered product and its read
        weight are known — a global decision the per-write walk cannot
        make. Record tier/subfile/offset fields are patched in place
        (``VariableRecord`` is mutable by design), so records handed out
        by :meth:`write` stay authoritative.
        """
        if not self._pending:
            return
        engine = PlacementEngine(self.hierarchy)
        products = [
            ProductSpec(rec.key, len(payload), weight)
            for rec, payload, weight in self._pending
        ]
        capacities = {
            t.name: max(0, t.free_bytes - _FOOTER_SLACK)
            for t in self.hierarchy.tiers
        }
        plan = engine.plan(products, capacities=capacities)
        self.last_plan = plan
        for rec, payload, _ in self._pending:
            tier = plan.tier_of(rec.key)
            writer = self._writers.setdefault(tier, BPWriter())
            offset, length = writer.add(rec.key, payload)
            rec.tier = tier
            rec.subfile = self._subfile(tier)
            rec.offset = offset
            rec.length = length
        self._pending.clear()

    def close(self) -> None:
        """Flush all subfiles through their transports + write the catalog."""
        self.engine.close()
        if self.mode != "w" or self._closed:
            self._closed = True
            return
        self._apply_cost_placement()
        with trace.span(
            "dataset.flush", "io", {"dataset": self.name}
        ):
            for tier_name, writer in sorted(self._writers.items()):
                transport = self.transports[tier_name]
                transport.write(
                    self._subfile(tier_name), writer.finalize(),
                    f"{self.name}:subfile",
                )
            slow = self.hierarchy.slowest
            self.transports[slow.name].write(
                self._catalog_path(), self.catalog.to_json(),
                f"{self.name}:catalog",
            )
        self._closed = True

    def __enter__(self) -> "BPDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- read side ---------------------------------------------------------
    def _load_catalog(self) -> None:
        slow = self.hierarchy.slowest
        blob = self.transports[slow.name].read(
            self._catalog_path(), f"{self.name}:catalog"
        )
        self.catalog = Catalog.from_json(blob)

    def keys(self) -> list[str]:
        return self.catalog.keys()

    def inq(self, key: str) -> VariableRecord:
        """ADIOS ``adios_inq_var`` equivalent: metadata without data."""
        return self.catalog.get(key)

    def _verify_flag(self, verify: bool | None) -> bool:
        return self.verify_checksums if verify is None else verify

    def read(self, key: str, *, verify: bool | None = None) -> bytes:
        """Fetch exactly one variable's bytes from its tier (or the cache).

        The catalog records the tier at write time; if the subfile has
        since been migrated/evicted by a tier-management policy, the
        current hierarchy location wins (byte offsets are unchanged —
        migration moves whole subfiles). The payload's CRC-32 is checked
        against the catalog unless ``verify`` (or the dataset-wide
        ``verify_checksums``) disables it; a mismatch raises
        :class:`~repro.errors.BPFormatError`.
        """
        rec = self.catalog.get(key)
        return self.engine.read(rec, verify=self._verify_flag(verify))

    def read_many(
        self, keys: list[str], *, verify: bool | None = None, label: str = ""
    ) -> dict[str, bytes]:
        """Fetch several variables as one overlapped batch.

        Requests are coalesced per subfile and issued concurrently
        across tiers; the simulated charge follows the engine's
        max-per-tier overlap model. Returns ``{key: payload}``.
        """
        records = [self.catalog.get(key) for key in keys]
        return self.engine.read_many(
            records, verify=self._verify_flag(verify), label=label
        )

    def prefetch(
        self, keys: list[str], *, verify: bool | None = None, label: str = ""
    ) -> int:
        """Hint that ``keys`` will be read soon; fetch them in background.

        Unknown keys are ignored (prefetching is best-effort by design).
        Returns the number of fetch spans issued.
        """
        records = [self.catalog.get(k) for k in keys if k in self.catalog]
        return self.engine.prefetch(
            records, verify=self._verify_flag(verify), label=label
        )

    def engine_stats(self) -> EngineStats:
        """Cache/prefetch counters for benchmarks and the harness."""
        return self.engine.stats

    def select(
        self, *, kind: str | None = None, level: int | None = None
    ) -> list[VariableRecord]:
        return self.catalog.select(kind=kind, level=level)


# Slack reserved per subfile for the footer index + trailer when checking
# capacity at write time (footers are small JSON documents).
_FOOTER_SLACK = 16 * 1024
