"""Blob detection — an OpenCV ``SimpleBlobDetector`` reproduction.

The paper (§IV-D) uses "the blob detection function in OpenCV … It uses
simple thresholding, grouping, and merging techniques to locate blobs",
parameterized by ``<minThreshold, maxThreshold, minArea>``. This module
re-implements that algorithm:

1. binarize the grayscale image at every threshold in
   ``[min_threshold, max_threshold)`` stepped by ``threshold_step``;
2. find connected components per binary image (8-connectivity) and
   compute per-component centroid / area / circularity;
3. filter components by area and (optionally) circularity;
4. group centers across thresholds: a center joins an existing group if
   it lies within ``min_dist_between_blobs`` of the group's running
   center; groups seen in at least ``min_repeatability`` thresholds
   become blobs;
5. a blob's center/diameter are the means over its group.

The paper studies *bright* blobs (high electric potential), so the
default ``blob_color=255`` selects pixels ``>= threshold`` (OpenCV's
convention inverted from its dark default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.errors import AnalyticsError

__all__ = ["Blob", "BlobDetectorParams", "detect_blobs"]


@dataclass(frozen=True)
class Blob:
    """One detected blob, in pixel coordinates."""

    center: tuple[float, float]  # (x=col, y=row)
    diameter: float
    area: float
    repeatability: int  # number of thresholds the blob appeared at

    @property
    def radius(self) -> float:
        return self.diameter / 2.0


@dataclass(frozen=True)
class BlobDetectorParams:
    """Detector parameters, mirroring OpenCV's SimpleBlobDetector_Params.

    The paper's configurations map directly::

        Config1 = BlobDetectorParams(min_threshold=10,  max_threshold=200, min_area=100)
        Config2 = BlobDetectorParams(min_threshold=150, max_threshold=200, min_area=100)
        Config3 = BlobDetectorParams(min_threshold=10,  max_threshold=200, min_area=200)
    """

    min_threshold: float = 10.0
    max_threshold: float = 200.0
    threshold_step: float = 10.0
    min_area: float = 100.0
    # OpenCV's SimpleBlobDetector default; rejects the giant low-threshold
    # component that covers most of the domain.
    max_area: float = 5000.0
    min_dist_between_blobs: float = 10.0
    min_repeatability: int = 2
    blob_color: int = 255  # 255 = bright blobs, 0 = dark blobs
    min_circularity: float | None = None

    def __post_init__(self) -> None:
        if self.min_threshold >= self.max_threshold:
            raise AnalyticsError("min_threshold must be < max_threshold")
        if self.threshold_step <= 0:
            raise AnalyticsError("threshold_step must be positive")
        if self.min_area < 0 or self.max_area < self.min_area:
            raise AnalyticsError("invalid area filter")
        if self.min_repeatability < 1:
            raise AnalyticsError("min_repeatability must be >= 1")
        if self.blob_color not in (0, 255):
            raise AnalyticsError("blob_color must be 0 or 255")


@dataclass
class _Group:
    centers: list[tuple[float, float]] = field(default_factory=list)
    radii: list[float] = field(default_factory=list)
    areas: list[float] = field(default_factory=list)

    @property
    def center(self) -> tuple[float, float]:
        c = np.mean(np.asarray(self.centers), axis=0)
        return float(c[0]), float(c[1])


_EIGHT_CONN = np.ones((3, 3), dtype=bool)


def _threshold_centers(
    image: np.ndarray, threshold: float, params: BlobDetectorParams
) -> list[tuple[float, float, float, float]]:
    """Per-threshold candidates: (x, y, radius, area)."""
    if params.blob_color == 255:
        binary = image >= threshold
    else:
        binary = image < threshold
    labels, n = ndimage.label(binary, structure=_EIGHT_CONN)
    if n == 0:
        return []
    idx = np.arange(1, n + 1)
    areas = ndimage.sum_labels(np.ones_like(labels), labels, idx)
    keep = (areas >= params.min_area) & (areas <= params.max_area)
    if params.min_circularity is not None and keep.any():
        # Perimeter ≈ count of component pixels adjacent to the outside.
        eroded = ndimage.binary_erosion(binary, structure=_EIGHT_CONN)
        boundary = binary & ~eroded
        perimeters = ndimage.sum_labels(
            boundary.astype(np.float64), labels, idx
        )
        circ = 4.0 * np.pi * areas / np.maximum(perimeters, 1.0) ** 2
        keep &= circ >= params.min_circularity
    if not keep.any():
        return []
    centroids = ndimage.center_of_mass(binary, labels, idx[keep])
    out = []
    for (row, col), area in zip(centroids, areas[keep]):
        out.append((float(col), float(row), float(np.sqrt(area / np.pi)), float(area)))
    return out


def detect_blobs(
    image: np.ndarray, params: BlobDetectorParams | None = None
) -> list[Blob]:
    """Detect blobs in a uint8 grayscale image."""
    params = params or BlobDetectorParams()
    image = np.asarray(image)
    if image.ndim != 2:
        raise AnalyticsError(f"expected a 2-D grayscale image, got {image.shape}")

    groups: list[_Group] = []
    thresholds = np.arange(
        params.min_threshold, params.max_threshold, params.threshold_step
    )
    for t in thresholds:
        for x, y, radius, area in _threshold_centers(image, t, params):
            for group in groups:
                gx, gy = group.center
                if (x - gx) ** 2 + (y - gy) ** 2 < params.min_dist_between_blobs**2:
                    group.centers.append((x, y))
                    group.radii.append(radius)
                    group.areas.append(area)
                    break
            else:
                groups.append(
                    _Group(centers=[(x, y)], radii=[radius], areas=[area])
                )

    blobs = []
    for group in groups:
        if len(group.centers) < params.min_repeatability:
            continue
        blobs.append(
            Blob(
                center=group.center,
                diameter=2.0 * float(np.mean(group.radii)),
                area=float(np.mean(group.areas)),
                repeatability=len(group.centers),
            )
        )
    # Deterministic order: by descending area then position.
    blobs.sort(key=lambda b: (-b.area, b.center))
    return blobs
