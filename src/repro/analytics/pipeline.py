"""Timed end-to-end analysis pipeline (paper Figs. 9–11).

Wraps the Canopus read path with an analysis stage and reports the four
phases the paper plots: **I/O**, **decompression**, **restoration**, and
the analysis itself (blob detection for XGC1). The baseline case
("None") reads the full-accuracy data directly from the slowest tier
with no Canopus involvement, exactly as the paper's no-reduction
comparison does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.decoder import CanopusDecoder, LevelData, PhaseTimings
from repro.errors import AnalyticsError

__all__ = ["PipelineResult", "run_analysis_at_level", "restore_full_accuracy"]

AnalysisFn = Callable[[LevelData], object]


@dataclass
class PipelineResult:
    """One end-to-end pipeline execution.

    ``setup_seconds`` is the one-time geometry cost (mesh hierarchy +
    mappings, static across timesteps) and is excluded from
    :attr:`total_seconds`, matching how the paper's Figs. 9–11 count
    per-retrieval phases only.
    """

    var: str
    level: int
    decimation_ratio: float
    io_seconds: float
    decompress_seconds: float
    restore_seconds: float
    analysis_seconds: float
    setup_seconds: float = 0.0
    output: object = None

    @property
    def total_seconds(self) -> float:
        return (
            self.io_seconds
            + self.decompress_seconds
            + self.restore_seconds
            + self.analysis_seconds
        )

    def phases(self) -> dict[str, float]:
        return {
            "io": self.io_seconds,
            "decompression": self.decompress_seconds,
            "restoration": self.restore_seconds,
            "analysis": self.analysis_seconds,
        }


def _finish(
    var: str,
    state: LevelData,
    ratio: float,
    analysis: AnalysisFn | None,
    setup_seconds: float = 0.0,
) -> PipelineResult:
    t0 = time.perf_counter()
    output = analysis(state) if analysis is not None else None
    analysis_seconds = time.perf_counter() - t0
    t = state.timings
    return PipelineResult(
        var=var,
        level=state.level,
        decimation_ratio=ratio,
        io_seconds=t.io_seconds,
        decompress_seconds=t.decompress_seconds,
        restore_seconds=t.restore_seconds,
        analysis_seconds=analysis_seconds,
        setup_seconds=setup_seconds,
        output=output,
    )


def run_analysis_at_level(
    decoder: CanopusDecoder,
    var: str,
    level: int,
    analysis: AnalysisFn | None = None,
    *,
    prefetch_geometry: bool = True,
) -> PipelineResult:
    """Restore ``var`` to ``level`` and run the analysis on it.

    Matches the paper's Fig. 9a protocol: "at decimation ratio of 4, the
    total time spent … is the time to retrieve and decompress L2^c and
    delta^c(1-2), restore L1, and perform blob detection on L1." The
    static geometry is prefetched first (one-time cost, reported as
    ``setup_seconds``) so the per-retrieval phases contain data I/O only.
    """
    scheme = decoder.scheme(var)
    scheme.validate_level(level)
    setup = (
        decoder.prefetch_geometry(var).total_seconds
        if prefetch_geometry
        else 0.0
    )
    state = decoder.restore_to(var, level)
    ratio = scheme.decimation_ratio(level)
    return _finish(var, state, ratio, analysis, setup)


def restore_full_accuracy(
    decoder: CanopusDecoder, var: str, analysis: AnalysisFn | None = None
) -> PipelineResult:
    """Restore to L0 from the base + all deltas (paper Figs. 9b/10b/11b)."""
    return run_analysis_at_level(decoder, var, 0, analysis)


def baseline_full_read(
    hierarchy,
    dataset_name: str,
    var: str,
    mesh_bytes_key: str | None = None,
    analysis: AnalysisFn | None = None,
) -> PipelineResult:
    """The "None" baseline: full-accuracy data straight from storage.

    Reads raw (uncompressed) full-accuracy payloads that a conventional
    (non-Canopus) writer stored on the slowest tier; no decompression or
    restoration phases.
    """
    from repro.compress import decode_auto
    from repro.io.dataset import BPDataset
    from repro.mesh.io import mesh_from_bytes

    ds = BPDataset.open(dataset_name, hierarchy)
    clock = hierarchy.clock
    timings = PhaseTimings()

    before = clock.elapsed
    blob = ds.read(f"{var}/L0")
    timings.io_seconds += clock.elapsed - before
    t0 = time.perf_counter()
    field = decode_auto(blob)
    planes = int(
        ds.catalog.attrs.get("variables", {}).get(var, {}).get("planes", 0)
    )
    if planes:
        field = field.reshape(planes, -1)
    timings.decompress_seconds += time.perf_counter() - t0

    # Mesh geometry is static across timesteps for the baseline too; its
    # read cost is reported as one-time setup, mirroring the Canopus path.
    mesh = None
    key = mesh_bytes_key or f"{var}/mesh0"
    setup_seconds = 0.0
    if key in ds.catalog:
        before = clock.elapsed
        mesh_blob = ds.read(key)
        setup_seconds = clock.elapsed - before
        mesh = mesh_from_bytes(mesh_blob)
    if mesh is None:
        raise AnalyticsError(f"baseline dataset lacks mesh payload {key!r}")

    state = LevelData(var=var, level=0, mesh=mesh, field=np.asarray(field), timings=timings)
    return _finish(var, state, 1.0, analysis, setup_seconds)
