"""Quantitative blob statistics (paper Fig. 8a–d).

* number of blobs detected (8a)
* average blob diameter in pixels (8b)
* aggregate blob area in square pixels (8c)
* blob overlap ratio against the full-accuracy detection (8d): "Two
  blobs are defined as overlapped if the distance between their two
  centers is less than the sum of their radius."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.blob import Blob

__all__ = ["BlobStats", "blob_stats", "overlap_ratio"]


@dataclass(frozen=True)
class BlobStats:
    """Aggregate statistics for one detection run."""

    count: int
    avg_diameter: float
    aggregate_area: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "avg_diameter": self.avg_diameter,
            "aggregate_area": self.aggregate_area,
        }


def blob_stats(blobs: list[Blob]) -> BlobStats:
    if not blobs:
        return BlobStats(count=0, avg_diameter=0.0, aggregate_area=0.0)
    return BlobStats(
        count=len(blobs),
        avg_diameter=float(np.mean([b.diameter for b in blobs])),
        aggregate_area=float(np.sum([b.area for b in blobs])),
    )


def _overlapped(a: Blob, b: Blob) -> bool:
    dx = a.center[0] - b.center[0]
    dy = a.center[1] - b.center[1]
    return np.hypot(dx, dy) < a.radius + b.radius


def overlap_ratio(detected: list[Blob], reference: list[Blob]) -> float:
    """Fraction of ``detected`` blobs that overlap some reference blob.

    ``reference`` is the full-accuracy detection. A high ratio means the
    reduced-accuracy blobs still point at real high-potential regions
    (the paper's Fig. 8d interpretation); 1.0 when ``detected`` is the
    reference itself. Empty ``detected`` yields 1.0 by convention (no
    false localizations), matching the paper's monotone-looking curves.
    """
    if not detected:
        return 1.0
    if not reference:
        return 0.0
    hits = sum(
        1 for d in detected if any(_overlapped(d, r) for r in reference)
    )
    return hits / len(detected)
