"""Analytics substrate: rasterization, blob detection, error metrics,
and the timed end-to-end analysis pipeline of the paper's §IV."""

from repro.analytics.blob import Blob, BlobDetectorParams, detect_blobs
from repro.analytics.blob_metrics import BlobStats, blob_stats, overlap_ratio
from repro.analytics.contour import ContourSet, contour_distance, extract_contour
from repro.analytics.error_metrics import (
    ErrorStats,
    cross_level_errors,
    field_errors,
)
from repro.analytics.profiles import RadialProfile, radial_profile
from repro.analytics.pipeline import (
    PipelineResult,
    baseline_full_read,
    restore_full_accuracy,
    run_analysis_at_level,
)
from repro.analytics.raster import RasterSpec, rasterize

__all__ = [
    "Blob",
    "BlobDetectorParams",
    "detect_blobs",
    "BlobStats",
    "blob_stats",
    "overlap_ratio",
    "ContourSet",
    "extract_contour",
    "contour_distance",
    "ErrorStats",
    "field_errors",
    "cross_level_errors",
    "RasterSpec",
    "rasterize",
    "RadialProfile",
    "radial_profile",
    "PipelineResult",
    "run_analysis_at_level",
    "restore_full_accuracy",
    "baseline_full_read",
]
