"""Mesh-field rasterization to grayscale images.

The paper's blob-detection use case feeds XGC1's unstructured dpot data
to OpenCV, which operates on 8-bit images. :class:`RasterSpec` pins the
geometry bounds and the value→intensity normalization once (from the
full-accuracy data) so every accuracy level is rasterized *identically*
— otherwise per-level renormalization would masquerade as blob changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalyticsError
from repro.mesh.interpolation import interpolate_to_grid
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["RasterSpec", "rasterize"]


@dataclass(frozen=True)
class RasterSpec:
    """Fixed rasterization frame shared across accuracy levels.

    Attributes
    ----------
    shape:
        ``(ny, nx)`` pixel grid.
    bounds:
        ``(lo_xy, hi_xy)`` world-coordinate window.
    vmin, vmax:
        Field values mapped to intensity 0 and 255.
    """

    shape: tuple[int, int]
    bounds: tuple[tuple[float, float], tuple[float, float]]
    vmin: float
    vmax: float

    @classmethod
    def from_reference(
        cls,
        mesh: TriangleMesh,
        field: np.ndarray,
        shape: tuple[int, int] = (256, 256),
        *,
        margin: float = 0.0,
    ) -> "RasterSpec":
        """Build a spec from the reference (full-accuracy) data."""
        field = np.asarray(field, dtype=np.float64)
        if field.size == 0:
            raise AnalyticsError("cannot build a raster spec from empty data")
        lo, hi = mesh.bounding_box()
        if margin:
            span = hi - lo
            lo = lo - margin * span
            hi = hi + margin * span
        vmin = float(field.min())
        vmax = float(field.max())
        if vmax <= vmin:
            vmax = vmin + 1.0
        return cls(
            shape=tuple(shape),
            bounds=(tuple(lo), tuple(hi)),
            vmin=vmin,
            vmax=vmax,
        )


def rasterize(
    mesh: TriangleMesh, field: np.ndarray, spec: RasterSpec
) -> np.ndarray:
    """Render a mesh field to a uint8 grayscale image under ``spec``.

    Pixels outside the mesh (annulus holes, body cutouts, bounding-box
    corners) render as intensity 0 — the "background" an image of
    mesh data has in the paper's figures. Row 0 is the minimum-y row
    (array convention; blob metrics are orientation-agnostic).
    """
    lo = np.asarray(spec.bounds[0], dtype=np.float64)
    hi = np.asarray(spec.bounds[1], dtype=np.float64)
    grid, inside = interpolate_to_grid(
        mesh, field, spec.shape, bounds=(lo, hi), return_inside=True
    )
    scaled = (grid - spec.vmin) / (spec.vmax - spec.vmin)
    image = (np.clip(scaled, 0.0, 1.0) * 255.0).round().astype(np.uint8)
    image[~inside] = 0
    return image
