"""Isocontour extraction on triangular meshes (marching triangles).

Visualization-style analytics beyond blob detection: the fusion
scientists' other routine view of dpot is its equipotential contours.
Contours are extracted directly on the unstructured mesh (no
rasterization): each triangle crossed by the isovalue contributes one
segment whose endpoints are linear interpolations along the crossed
edges.

Cross-level contour drift is a natural accuracy metric for progressive
refinement: as deltas are applied, the contours of the restored field
converge to the full-accuracy ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalyticsError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["ContourSet", "extract_contour", "contour_distance"]


@dataclass(frozen=True)
class ContourSet:
    """Line segments of one isovalue: ``segments[(n, 2, 2)]``."""

    isovalue: float
    segments: np.ndarray

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def total_length(self) -> float:
        if not len(self.segments):
            return 0.0
        d = self.segments[:, 1] - self.segments[:, 0]
        return float(np.hypot(d[:, 0], d[:, 1]).sum())

    def points(self) -> np.ndarray:
        """All segment endpoints, ``(2n, 2)``."""
        return self.segments.reshape(-1, 2)


def extract_contour(
    mesh: TriangleMesh, field: np.ndarray, isovalue: float
) -> ContourSet:
    """Marching triangles: segments where ``field == isovalue``.

    Vertices exactly at the isovalue are nudged by one ulp-scale epsilon
    so every crossed triangle yields exactly one segment (the standard
    simulation-of-simplicity trick).
    """
    field = np.asarray(field, dtype=np.float64)
    if len(field) != mesh.num_vertices:
        raise AnalyticsError(
            f"field has {len(field)} values for {mesh.num_vertices} vertices"
        )
    scale = max(1.0, float(np.abs(field).max()) if field.size else 1.0)
    values = field - isovalue
    values = np.where(values == 0.0, scale * 1e-14, values)

    tri = mesh.triangles
    v = values[tri]  # (m, 3) signed values per corner
    signs = v > 0
    # A triangle is crossed when its corners do not all share a sign.
    crossed = ~(signs.all(axis=1) | (~signs).all(axis=1))
    if not crossed.any():
        return ContourSet(isovalue=isovalue, segments=np.zeros((0, 2, 2)))

    tri = tri[crossed]
    v = v[crossed]
    pts = mesh.vertices[tri]  # (k, 3, 2)

    # For each crossed triangle, exactly two of the three edges change
    # sign. Interpolate the crossing point on each.
    segments = np.empty((len(tri), 2, 2), dtype=np.float64)
    edge_pairs = ((0, 1), (1, 2), (2, 0))
    slot = np.zeros(len(tri), dtype=np.int64)
    for a, b in edge_pairs:
        va, vb = v[:, a], v[:, b]
        hit = (va > 0) != (vb > 0)
        if not hit.any():
            continue
        t = va[hit] / (va[hit] - vb[hit])  # in (0, 1)
        point = pts[hit, a] + t[:, None] * (pts[hit, b] - pts[hit, a])
        rows = np.flatnonzero(hit)
        segments[rows, slot[rows]] = point
        slot[rows] += 1
    if not (slot == 2).all():  # pragma: no cover - defensive
        raise AnalyticsError("degenerate contour crossing")
    return ContourSet(isovalue=isovalue, segments=segments)


def contour_distance(a: ContourSet, b: ContourSet) -> float:
    """Symmetric mean nearest-point distance between two contour sets.

    A pragmatic (Chamfer-style) stand-in for Hausdorff distance; 0 when
    the contours coincide, growing as decimation displaces features.
    Returns ``inf`` when exactly one set is empty, 0 when both are.
    """
    pa = a.points()
    pb = b.points()
    if len(pa) == 0 and len(pb) == 0:
        return 0.0
    if len(pa) == 0 or len(pb) == 0:
        return float("inf")
    from scipy.spatial import cKDTree

    d_ab, _ = cKDTree(pb).query(pa)
    d_ba, _ = cKDTree(pa).query(pb)
    return float((d_ab.mean() + d_ba.mean()) / 2.0)
