"""Radial (flux-surface-style) profiles of mesh fields.

The standard reduction fusion scientists apply to a poloidal-plane
quantity like dpot is the flux-surface average: bin vertices by radius
and take per-bin statistics (mean, RMS of the fluctuating part). The
radial RMS profile of dpot locates the turbulent edge region — exactly
where the paper's blobs live — and is a cheap, robust target for
progressive analysis (profiles converge at much lower accuracy than
pointwise values).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalyticsError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["RadialProfile", "radial_profile"]


@dataclass(frozen=True)
class RadialProfile:
    """Per-radial-bin statistics of one field."""

    bin_centers: np.ndarray  # (nbins,)
    mean: np.ndarray  # per-bin mean
    rms_fluctuation: np.ndarray  # per-bin RMS of (value − bin mean)
    counts: np.ndarray  # vertices per bin

    @property
    def nbins(self) -> int:
        return len(self.bin_centers)

    def peak_radius(self) -> float:
        """Radius of the strongest fluctuation (the turbulent edge)."""
        populated = self.counts > 0
        if not populated.any():
            raise AnalyticsError("profile has no populated bins")
        idx = np.flatnonzero(populated)[
            np.argmax(self.rms_fluctuation[populated])
        ]
        return float(self.bin_centers[idx])


def radial_profile(
    mesh: TriangleMesh,
    field: np.ndarray,
    *,
    nbins: int = 32,
    center: tuple[float, float] = (0.0, 0.0),
    r_range: tuple[float, float] | None = None,
) -> RadialProfile:
    """Bin a per-vertex field by radius about ``center``.

    Empty bins report zero mean/RMS with ``counts == 0``.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim == 2:
        field = field[0]  # profile one plane of a stack
    if len(field) != mesh.num_vertices:
        raise AnalyticsError(
            f"field has {len(field)} values for {mesh.num_vertices} vertices"
        )
    if nbins < 1:
        raise AnalyticsError("nbins must be >= 1")
    v = mesh.vertices
    r = np.hypot(v[:, 0] - center[0], v[:, 1] - center[1])
    if r_range is None:
        r_lo, r_hi = float(r.min()), float(r.max())
    else:
        r_lo, r_hi = (float(x) for x in r_range)
    if r_hi <= r_lo:
        r_hi = r_lo + 1.0
    edges = np.linspace(r_lo, r_hi, nbins + 1)
    idx = np.clip(np.digitize(r, edges) - 1, 0, nbins - 1)

    counts = np.bincount(idx, minlength=nbins).astype(np.int64)
    sums = np.bincount(idx, weights=field, minlength=nbins)
    safe = np.maximum(counts, 1)
    mean = sums / safe
    fluct = field - mean[idx]
    rms = np.sqrt(np.bincount(idx, weights=fluct**2, minlength=nbins) / safe)
    mean[counts == 0] = 0.0
    rms[counts == 0] = 0.0
    return RadialProfile(
        bin_centers=0.5 * (edges[:-1] + edges[1:]),
        mean=mean,
        rms_fluctuation=rms,
        counts=counts,
    )
