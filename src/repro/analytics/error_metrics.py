"""Field-error metrics between accuracy levels.

Fields at different levels live on different meshes, so cross-level
comparison samples both onto one shared grid (the reference level's
frame) before computing RMSE/PSNR — the standard practice for mesh data
and the statistic the paper names for automated refinement termination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalyticsError
from repro.mesh.triangle_mesh import TriangleMesh

__all__ = ["ErrorStats", "field_errors", "cross_level_errors"]


@dataclass(frozen=True)
class ErrorStats:
    """Error summary between a test field and a reference field."""

    rmse: float
    nrmse: float  # RMSE / reference range
    max_error: float
    psnr_db: float

    def as_dict(self) -> dict[str, float]:
        return {
            "rmse": self.rmse,
            "nrmse": self.nrmse,
            "max_error": self.max_error,
            "psnr_db": self.psnr_db,
        }


def field_errors(test: np.ndarray, reference: np.ndarray) -> ErrorStats:
    """Errors between two same-length (or same-shape) arrays."""
    test = np.asarray(test, dtype=np.float64).ravel()
    reference = np.asarray(reference, dtype=np.float64).ravel()
    if test.shape != reference.shape:
        raise AnalyticsError(
            f"shape mismatch: {test.shape} vs {reference.shape}"
        )
    if reference.size == 0:
        raise AnalyticsError("cannot compute errors on empty fields")
    diff = test - reference
    rmse = float(np.sqrt(np.mean(diff**2)))
    value_range = float(reference.max() - reference.min())
    nrmse = rmse / value_range if value_range > 0 else 0.0
    max_err = float(np.abs(diff).max())
    if rmse == 0.0:
        psnr = float("inf")
    elif value_range == 0.0:
        psnr = float("-inf") if rmse else float("inf")
    else:
        psnr = float(20.0 * np.log10(value_range / rmse))
    return ErrorStats(rmse=rmse, nrmse=nrmse, max_error=max_err, psnr_db=psnr)


def cross_level_errors(
    test_mesh: TriangleMesh,
    test_field: np.ndarray,
    ref_mesh: TriangleMesh,
    ref_field: np.ndarray,
) -> ErrorStats:
    """Errors between fields on *different* meshes.

    The test field is sampled at the reference mesh's vertices (linear
    interpolation, extrapolation only in the thin boundary strip a
    decimated hull gives up). Sampling at vertices rather than on a
    bounding-box grid avoids corner points that lie outside both domains,
    whose extrapolations would dominate the error.
    """
    from repro.mesh.interpolation import interpolate_at_points

    test_at_ref = interpolate_at_points(
        test_mesh, test_field, ref_mesh.vertices
    )
    return field_errors(test_at_ref, ref_field)
