"""Property-based tests of system-level invariants (hypothesis).

These complement the per-module property tests: they drive whole
pipelines with generated data and check the contracts that make Canopus
trustworthy — error bounds compose across stages, decimation preserves
mesh sanity, placement never violates capacity, and the catalog always
agrees with what was written.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    LevelScheme,
    apply_delta,
    build_mapping,
    compute_delta,
    refactor,
)
from repro.core.plan import plan_placement
from repro.mesh import TriangleMesh, decimate
from repro.mesh.generators import disk, structured_rectangle

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def smooth_field(mesh: TriangleMesh, kx: float, ky: float, phase: float):
    v = mesh.vertices
    return np.sin(kx * v[:, 0] + phase) * np.cos(ky * v[:, 1])


class TestDecimationInvariants:
    @settings(**_SETTINGS)
    @given(
        n=st.integers(150, 600),
        seed=st.integers(0, 1000),
        ratio=st.sampled_from([1.5, 2.0, 3.0, 4.0]),
    )
    def test_mesh_stays_valid(self, n, seed, ratio):
        mesh = disk(n, seed=seed)
        res = decimate(mesh, ratio=ratio)
        out = res.mesh
        # Strict revalidation: indices in range, no degenerate/duplicate
        # triangles, positive areas.
        TriangleMesh(out.vertices, out.triangles, validate=True)
        assert (out.triangle_areas() > 0).all()
        # Target reached (or explicitly flagged as exhausted).
        if not res.exhausted:
            assert out.num_vertices == max(3, int(np.ceil(n / ratio)))

    @settings(**_SETTINGS)
    @given(
        nx=st.integers(5, 20),
        ny=st.integers(5, 20),
        seed=st.integers(0, 100),
    )
    def test_field_bounds_preserved(self, nx, ny, seed):
        """NewData is a mean, so decimated data stays in [min, max]."""
        mesh = structured_rectangle(nx, ny, jitter=0.3, seed=seed)
        rng = np.random.default_rng(seed)
        field = rng.normal(0, 1, mesh.num_vertices)
        res = decimate(mesh, field, ratio=2)
        out = res.fields["data"]
        assert out.min() >= field.min() - 1e-12
        assert out.max() <= field.max() + 1e-12

    @settings(**_SETTINGS)
    @given(n=st.integers(200, 500), seed=st.integers(0, 100))
    def test_area_does_not_explode(self, n, seed):
        mesh = disk(n, seed=seed)
        res = decimate(mesh, ratio=2)
        assert res.mesh.total_area() <= mesh.total_area() * 1.05


class TestDeltaRoundtripInvariants:
    @settings(**_SETTINGS)
    @given(
        n=st.integers(200, 600),
        seed=st.integers(0, 100),
        kx=st.floats(0.5, 8.0),
        ky=st.floats(0.5, 8.0),
        phase=st.floats(0, 6.28),
        estimator=st.sampled_from(["mean", "barycentric"]),
    )
    def test_delta_then_apply_is_identity(self, n, seed, kx, ky, phase, estimator):
        mesh = disk(n, seed=seed)
        fine = smooth_field(mesh, kx, ky, phase)
        res = decimate(mesh, fine, ratio=2)
        mapping = build_mapping(mesh, res.mesh, estimator=estimator)
        delta = compute_delta(fine, res.fields["data"], mapping)
        restored = apply_delta(res.fields["data"], delta, mapping)
        assert np.allclose(restored, fine, atol=1e-12)

    @settings(**_SETTINGS)
    @given(
        n=st.integers(300, 700),
        seed=st.integers(0, 50),
        levels=st.integers(2, 4),
    )
    def test_full_chain_reconstruction(self, n, seed, levels):
        mesh = disk(n, seed=seed)
        field = smooth_field(mesh, 3.0, 2.0, 0.3)
        result = refactor(mesh, field, LevelScheme(levels))
        state = result.base_field
        for lvl in reversed(range(levels - 1)):
            state = apply_delta(state, result.deltas[lvl], result.mappings[lvl])
        assert np.allclose(state, field, atol=1e-11)


class TestEncodedErrorComposition:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 30),
        tol_exp=st.integers(-6, -2),
        levels=st.integers(2, 3),
    )
    def test_end_to_end_error_bound(self, seed, tol_exp, levels, tmp_path_factory):
        """Restored error ≤ levels × per-stage tolerance, any tolerance."""
        from repro.core import CanopusDecoder, CanopusEncoder
        from repro.io import BPDataset
        from repro.storage import two_tier_titan

        tol = 10.0**tol_exp
        mesh = disk(300, seed=seed)
        field = smooth_field(mesh, 4.0, 3.0, 1.0)
        h = two_tier_titan(
            tmp_path_factory.mktemp("prop"), fast_capacity=8 << 20,
            slow_capacity=1 << 33,
        )
        enc = CanopusEncoder(h, codec="zfp", codec_params={"tolerance": tol})
        enc.encode("p", "f", mesh, field, LevelScheme(levels))
        dec = CanopusDecoder(BPDataset.open("p", h))
        out = dec.restore_to("f", 0)
        assert np.abs(out.field - field).max() <= levels * tol + 1e-14


class TestPlacementInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        levels=st.integers(1, 8),
        tiers=st.integers(1, 6),
    )
    def test_plan_always_valid(self, levels, tiers):
        plan = plan_placement(LevelScheme(levels), tiers)
        assert plan.base_tier == 0
        for lvl in range(levels - 1):
            t = plan.preferred_tier_for_delta(lvl)
            assert 0 <= t < tiers
        # Finer levels never prefer faster tiers than coarser levels.
        prefs = [plan.preferred_tier_for_delta(l) for l in range(levels - 1)]
        assert prefs == sorted(prefs, reverse=True)

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 5000), min_size=1, max_size=12),
        fast_capacity=st.integers(1000, 20000),
    )
    def test_capacity_never_violated(self, sizes, fast_capacity, tmp_path_factory):
        from repro.errors import CapacityError
        from repro.storage import StorageHierarchy, StorageTier

        root = tmp_path_factory.mktemp("cap")
        h = StorageHierarchy(
            [
                StorageTier("fast", "dram_tmpfs", fast_capacity, root / "f"),
                StorageTier("slow", "lustre", 10**7, root / "s"),
            ]
        )
        for i, size in enumerate(sizes):
            try:
                h.place(f"obj{i}", b"x" * size)
            except CapacityError:
                pass
            for tier in h:
                assert tier.used_bytes <= tier.capacity_bytes


class TestCatalogConsistency:
    @settings(max_examples=15, deadline=None)
    @given(
        payloads=st.lists(
            st.binary(min_size=0, max_size=400), min_size=1, max_size=10
        )
    )
    def test_catalog_matches_written_bytes(self, payloads, tmp_path_factory):
        from repro.io import BPDataset
        from repro.storage import two_tier_titan

        h = two_tier_titan(
            tmp_path_factory.mktemp("cat"), fast_capacity=1 << 20,
            slow_capacity=1 << 30,
        )
        ds = BPDataset.create("c", h)
        for i, blob in enumerate(payloads):
            ds.write(f"k{i}", blob)
        ds.close()
        rd = BPDataset.open("c", h)
        for i, blob in enumerate(payloads):
            rec = rd.inq(f"k{i}")
            assert rec.length == len(blob)
            assert rd.read(f"k{i}") == blob
