"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.mesh.io import load_mesh


@pytest.fixture
def generated(tmp_path):
    mesh_path = tmp_path / "plane.npz"
    rc = main(
        ["generate", "xgc1", "--scale", "0.1", "--seed", "3", "--out",
         str(mesh_path)]
    )
    assert rc == 0
    return mesh_path, tmp_path / "store"


class TestGenerate:
    def test_generates_npz(self, generated, capsys):
        mesh_path, _ = generated
        mesh, fields = load_mesh(mesh_path)
        assert mesh.num_vertices > 100
        assert "dpot" in fields

    def test_all_dataset_names(self, tmp_path):
        for name in ("xgc1", "genasis", "cfd"):
            out = tmp_path / f"{name}.npz"
            assert main(["generate", name, "--scale", "0.05", "--out", str(out)]) == 0
            assert out.exists()


class TestEncodeInfoRestore:
    def encode(self, generated):
        mesh_path, root = generated
        return main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root), "--levels", "3", "--tolerance", "1e-4"]
        )

    def test_encode(self, generated, capsys):
        assert self.encode(generated) == 0
        out = capsys.readouterr().out
        assert "dpot/L2" in out
        assert "tmpfs" in out

    def test_info(self, generated, capsys):
        self.encode(generated)
        _, root = generated
        assert main(["info", "run", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "dpot/delta0-1" in out
        assert "3 levels" in out

    def test_restore_roundtrip(self, generated, tmp_path, capsys):
        self.encode(generated)
        mesh_path, root = generated
        out_path = tmp_path / "restored.npz"
        rc = main(
            ["restore", "run", "--var", "dpot", "--level", "0",
             "--root", str(root), "--out", str(out_path)]
        )
        assert rc == 0
        mesh, fields = load_mesh(out_path)
        orig_mesh, orig_fields = load_mesh(mesh_path)
        assert mesh.num_vertices == orig_mesh.num_vertices
        rng = np.ptp(orig_fields["dpot"])
        err = np.abs(fields["dpot"] - orig_fields["dpot"]).max()
        assert err <= 3e-4 * rng + 1e-12

    def test_encode_batched_with_workers(self, generated, tmp_path, capsys):
        mesh_path, root = generated
        rc = main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root), "--levels", "3", "--tolerance", "1e-4",
             "--method", "batched", "--workers", "4"]
        )
        assert rc == 0
        assert "dpot/L2" in capsys.readouterr().out
        out_path = tmp_path / "restored.npz"
        assert main(
            ["restore", "run", "--var", "dpot", "--level", "0",
             "--root", str(root), "--out", str(out_path)]
        ) == 0
        mesh, fields = load_mesh(out_path)
        _, orig_fields = load_mesh(mesh_path)
        err = np.abs(fields["dpot"] - orig_fields["dpot"]).max()
        assert err <= 3e-4 * np.ptp(orig_fields["dpot"]) + 1e-12

    def test_unknown_method_rejected_by_parser(self, generated):
        mesh_path, root = generated
        with pytest.raises(SystemExit):
            main(
                ["encode", str(mesh_path), "--field", "dpot", "--dataset",
                 "x", "--root", str(root), "--method", "turbo"]
            )

    def test_restore_intermediate_level(self, generated, tmp_path):
        self.encode(generated)
        mesh_path, root = generated
        out_path = tmp_path / "l1.npz"
        assert main(
            ["restore", "run", "--var", "dpot", "--level", "1",
             "--root", str(root), "--out", str(out_path)]
        ) == 0
        mesh, _ = load_mesh(out_path)
        orig_mesh, _ = load_mesh(mesh_path)
        assert mesh.num_vertices == pytest.approx(
            orig_mesh.num_vertices / 2, rel=0.05
        )


class TestFsck:
    def test_healthy(self, generated, capsys):
        mesh_path, root = generated
        main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root)]
        )
        assert main(["fsck", "run", "--root", str(root)]) == 0
        assert "products ok" in capsys.readouterr().out

    def test_corrupted_returns_nonzero(self, generated, capsys):
        mesh_path, root = generated
        main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root)]
        )
        # Flip a byte in the lustre subfile.
        target = root / "lustre" / "run.lustre.bp"
        data = bytearray(target.read_bytes())
        data[len(data) // 3] ^= 0xFF
        target.write_bytes(bytes(data))
        assert main(["fsck", "run", "--root", str(root)]) == 2
        assert "BAD" in capsys.readouterr().out

    def test_sharded_backend_missing_chunk_report(self, generated, capsys):
        mesh_path, root = generated
        main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root), "--backend", "sharded"]
        )
        assert main(["fsck", "run", "--root", str(root),
                     "--backend", "sharded"]) == 0
        capsys.readouterr()
        # Remove one chunk file from under a sub-store directory.
        victim = next((root / "lustre").glob("shard*/run.lustre.bp#0*"))
        victim.unlink()
        assert main(["fsck", "run", "--root", str(root),
                     "--backend", "sharded"]) == 2
        out = capsys.readouterr().out
        assert "BAD backend[lustre]" in out
        assert "missing chunk" in out

    def test_repair_restores_replicated_campaign(self, generated, capsys):
        import shutil

        mesh_path, root = generated
        flags = ["--root", str(root), "--backend", "sharded",
                 "--shards", "2", "--replicas", "2"]
        assert main(
            ["encode", str(mesh_path), "--field", "dpot",
             "--dataset", "run", *flags]
        ) == 0
        capsys.readouterr()
        # Lose one whole mirror of every shard on the slow tier.
        victims = list((root / "lustre").glob("shard*/replica0"))
        assert victims
        for rep0 in victims:
            shutil.rmtree(rep0)
        assert main(["fsck", "run", *flags]) == 2
        capsys.readouterr()
        # The check's own product reads heal what they touch (read
        # repair); wipe again so --repair has real work to do.
        for rep0 in victims:
            shutil.rmtree(rep0)
        assert main(["fsck", "run", *flags, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "FIXED" in out
        assert "products ok" in out
        # Redundancy is back on disk, not just readable.
        restored = [p for rep0 in victims for p in rep0.rglob("*")]
        assert restored
        assert main(["fsck", "run", *flags]) == 0

    def test_repair_cannot_hide_unrecoverable_damage(self, generated, capsys):
        mesh_path, root = generated
        main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root)]
        )
        target = root / "lustre" / "run.lustre.bp"
        data = bytearray(target.read_bytes())
        data[len(data) // 3] ^= 0xFF
        target.write_bytes(bytes(data))
        # No replica to restripe from: --repair must still report BAD.
        assert main(["fsck", "run", "--root", str(root), "--repair"]) == 2
        assert "BAD" in capsys.readouterr().out


class TestBackendAndPlacementFlags:
    def test_sharded_encode_restore_roundtrip(self, generated, tmp_path, capsys):
        mesh_path, root = generated
        assert main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root), "--backend", "sharded"]
        ) == 0
        out_path = tmp_path / "restored.npz"
        assert main(
            ["restore", "run", "--var", "dpot", "--root", str(root),
             "--backend", "sharded", "--out", str(out_path)]
        ) == 0
        mesh, fields = load_mesh(out_path)
        orig_mesh, orig_fields = load_mesh(mesh_path)
        assert mesh.num_vertices == orig_mesh.num_vertices
        assert np.allclose(fields["dpot"], orig_fields["dpot"], atol=1e-2)

    def test_cost_placement_encode(self, generated, capsys):
        mesh_path, root = generated
        assert main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root), "--placement", "cost"]
        ) == 0
        out = capsys.readouterr().out
        assert "dpot/L2" in out  # placed products are reported with tiers
        assert "tmpfs" in out or "lustre" in out


class TestTrace:
    def encode(self, generated):
        mesh_path, root = generated
        return main(
            ["encode", str(mesh_path), "--field", "dpot", "--dataset", "run",
             "--root", str(root), "--levels", "3", "--tolerance", "1e-4"]
        )

    def test_trace_prints_phase_table(self, generated, capsys):
        assert self.encode(generated) == 0
        _, root = generated
        assert main(["trace", "run", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "trace of 'run':'dpot'" in out
        assert "sim_io_ms" in out
        assert "restore" in out

    def test_trace_exports_chrome_json(self, generated, tmp_path, capsys):
        self.encode(generated)
        _, root = generated
        trace_path = tmp_path / "trace.json"
        assert main(
            ["trace", "run", "--root", str(root), "--out", str(trace_path)]
        ) == 0
        import json

        doc = json.loads(trace_path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs and {e["pid"] for e in xs} == {1, 2}

    def test_trace_leaves_tracing_disabled(self, generated):
        from repro.obs import trace

        self.encode(generated)
        _, root = generated
        assert main(["trace", "run", "--root", str(root)]) == 0
        assert trace.get_tracer() is None


class TestErrors:
    def test_missing_field(self, generated, capsys):
        mesh_path, root = generated
        rc = main(
            ["encode", str(mesh_path), "--field", "nope", "--dataset", "x",
             "--root", str(root)]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_dataset_name_rejected_by_parser(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "lhc", "--out", str(tmp_path / "x.npz")])

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])
