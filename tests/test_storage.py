"""Tests for the simulated storage hierarchy.

The whole module runs against any object-store backend: set
``REPRO_BACKEND=filesystem|memory|sharded|remote|replicated`` (the CI
tier matrix) to
re-run it over a different byte store. Filesystem-only semantics
(on-disk persistence across handles, path escapes) are skipped where a
backend cannot express them.
"""

import os

import numpy as np
import pytest

from repro.errors import CapacityError, StorageError
from repro.storage import (
    DEVICE_PRESETS,
    DeviceModel,
    SimClock,
    StorageHierarchy,
    StorageTier,
    device_preset,
    make_backend,
    two_tier_titan,
)

#: Backend kind under test; the CI tier matrix sweeps all five.
BACKEND = os.environ.get("REPRO_BACKEND", "filesystem")

persistent_only = pytest.mark.skipif(
    BACKEND == "memory",
    reason="memory backend state dies with the handle (by design)",
)

device_clock_only = pytest.mark.skipif(
    BACKEND == "remote",
    reason="remote backend charges network time on top of the device model",
)


def _tier(name, device, capacity, root, clock=None):
    """A StorageTier over the backend kind selected for this run."""
    if BACKEND == "filesystem":
        return StorageTier(name, device, capacity, root, clock)
    backend = make_backend(BACKEND, root, shards=2, chunk_size=97)
    return StorageTier(name, device, capacity, clock=clock, backend=backend)


@pytest.fixture
def hierarchy(tmp_path):
    clock = SimClock()
    return StorageHierarchy(
        [
            _tier("fast", "dram_tmpfs", 1000, tmp_path / "fast", clock),
            _tier("mid", "ssd", 10_000, tmp_path / "mid", clock),
            _tier("slow", "lustre", 1_000_000, tmp_path / "slow", clock),
        ]
    )


class TestDeviceModel:
    def test_presets_ordered_by_speed(self):
        assert (
            DEVICE_PRESETS["dram_tmpfs"].read_bandwidth
            > DEVICE_PRESETS["ssd"].read_bandwidth
            > DEVICE_PRESETS["lustre"].read_bandwidth
        )

    def test_read_write_seconds(self):
        dev = DeviceModel("x", read_bandwidth=100.0, write_bandwidth=50.0, latency=1.0)
        assert dev.read_seconds(100) == pytest.approx(2.0)
        assert dev.write_seconds(100) == pytest.approx(3.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(StorageError):
            DeviceModel("x", 0, 1, 0)

    def test_invalid_latency(self):
        with pytest.raises(StorageError):
            DeviceModel("x", 1, 1, -0.1)

    def test_unknown_preset(self):
        with pytest.raises(StorageError):
            device_preset("floppy")


class TestSimClock:
    def test_charge_accumulates(self):
        clock = SimClock()
        clock.charge("a", "write", 10, 1.5)
        clock.charge("b", "read", 20, 0.5)
        assert clock.elapsed == pytest.approx(2.0)
        assert clock.total(op="read") == pytest.approx(0.5)
        assert clock.total(tier="a") == pytest.approx(1.5)
        assert clock.bytes_moved() == 30
        assert clock.by_tier() == {"a": 1.5, "b": 0.5}

    def test_reset(self):
        clock = SimClock()
        clock.charge("a", "write", 10, 1.0)
        clock.reset()
        assert clock.elapsed == 0.0
        assert clock.events == []


class TestStorageTier:
    def test_write_read_roundtrip(self, tmp_path):
        tier = _tier("t", "ssd", 1000, tmp_path)
        tier.write("x.bin", b"hello")
        assert tier.read("x.bin") == b"hello"
        assert tier.used_bytes == 5
        assert tier.exists("x.bin")
        assert tier.file_size("x.bin") == 5

    def test_read_range(self, tmp_path):
        tier = _tier("t", "ssd", 1000, tmp_path)
        tier.write("x.bin", b"0123456789")
        assert tier.read_range("x.bin", 2, 4) == b"2345"
        # Only the range is charged.
        assert tier.clock.events[-1].nbytes == 4

    def test_read_range_out_of_bounds(self, tmp_path):
        tier = _tier("t", "ssd", 1000, tmp_path)
        tier.write("x.bin", b"abc")
        with pytest.raises(StorageError):
            tier.read_range("x.bin", 1, 5)

    def test_capacity_enforced(self, tmp_path):
        tier = _tier("t", "ssd", 10, tmp_path)
        tier.write("a", b"12345")
        with pytest.raises(CapacityError):
            tier.write("b", b"123456")

    def test_overwrite_releases_previous(self, tmp_path):
        tier = _tier("t", "ssd", 10, tmp_path)
        tier.write("a", b"1234567890")
        tier.write("a", b"123")  # shrink in place
        assert tier.used_bytes == 3
        tier.write("b", b"1234567")

    def test_delete(self, tmp_path):
        tier = _tier("t", "ssd", 10, tmp_path)
        tier.write("a", b"12345")
        tier.delete("a")
        assert tier.used_bytes == 0
        assert not tier.exists("a")
        with pytest.raises(StorageError):
            tier.read("a")

    def test_missing_file(self, tmp_path):
        tier = _tier("t", "ssd", 10, tmp_path)
        with pytest.raises(StorageError):
            tier.read("ghost")
        with pytest.raises(StorageError):
            tier.delete("ghost")

    @pytest.mark.skipif(
        BACKEND == "memory", reason="memory backend has no paths to escape"
    )
    def test_path_escape_rejected(self, tmp_path):
        tier = _tier("t", "ssd", 1000, tmp_path / "root")
        with pytest.raises(StorageError):
            tier.write("../escape.bin", b"x")

    @device_clock_only
    def test_clock_charged_by_device_model(self, tmp_path):
        clock = SimClock()
        tier = _tier("t", "lustre", 10**9, tmp_path, clock)
        tier.write("a", b"x" * 1000)
        expect = device_preset("lustre").write_seconds(1000)
        assert clock.elapsed == pytest.approx(expect)

    def test_zero_capacity_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            _tier("t", "ssd", 0, tmp_path)

    @persistent_only
    def test_reopen_adopts_existing_files(self, tmp_path):
        """A tier's store persists like a real mount across handles."""
        t1 = _tier("t", "ssd", 1000, tmp_path)
        t1.write("sub/a.bin", b"hello")
        t2 = _tier("t", "ssd", 1000, tmp_path)
        assert t2.exists("sub/a.bin")
        assert t2.used_bytes == 5
        assert t2.read("sub/a.bin") == b"hello"

    @persistent_only
    def test_reopen_over_capacity_rejected(self, tmp_path):
        t1 = _tier("t", "ssd", 1000, tmp_path)
        t1.write("a.bin", b"x" * 100)
        with pytest.raises(StorageError):
            _tier("t", "ssd", 50, tmp_path)


class TestHierarchy:
    def test_ordering_helpers(self, hierarchy):
        assert hierarchy.fastest.name == "fast"
        assert hierarchy.slowest.name == "slow"
        assert hierarchy.tier_names() == ["fast", "mid", "slow"]
        assert len(hierarchy) == 3
        assert hierarchy[1].name == "mid"

    def test_duplicate_names_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            StorageHierarchy(
                [
                    StorageTier("x", "ssd", 10, tmp_path / "a"),
                    StorageTier("x", "ssd", 10, tmp_path / "b"),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            StorageHierarchy([])

    def test_place_prefers_fast(self, hierarchy):
        tier = hierarchy.place("a.bin", b"x" * 100)
        assert tier.name == "fast"

    def test_place_bypasses_full_tier(self, hierarchy):
        """Paper §III-D: insufficient capacity → bypass to next tier."""
        tier = hierarchy.place("big.bin", b"x" * 2000)
        assert tier.name == "mid"

    def test_place_preferred_index(self, hierarchy):
        tier = hierarchy.place("a.bin", b"x" * 10, preferred_index=2)
        assert tier.name == "slow"

    def test_place_nothing_fits(self, hierarchy):
        with pytest.raises(CapacityError):
            hierarchy.place("huge.bin", b"x" * 10_000_000)

    def test_locate_and_read(self, hierarchy):
        hierarchy.place("a.bin", b"data")
        assert hierarchy.locate("a.bin").name == "fast"
        assert hierarchy.read("a.bin") == b"data"
        assert hierarchy.locate("ghost") is None
        with pytest.raises(StorageError):
            hierarchy.read("ghost")

    @device_clock_only
    def test_shared_clock(self, hierarchy):
        hierarchy.place("a.bin", b"x" * 100)
        hierarchy.place("b.bin", b"x" * 2000)  # lands on mid
        tiers_charged = {e.tier for e in hierarchy.clock.events}
        assert tiers_charged == {"fast", "mid"}

    def test_migrate(self, hierarchy):
        hierarchy.place("a.bin", b"hello")
        hierarchy.migrate("a.bin", "slow")
        assert hierarchy.locate("a.bin").name == "slow"
        assert hierarchy.read("a.bin") == b"hello"
        assert hierarchy.tier("fast").used_bytes == 0

    def test_migrate_same_tier_noop(self, hierarchy):
        hierarchy.place("a.bin", b"hello")
        before = len(hierarchy.clock.events)
        hierarchy.migrate("a.bin", "fast")
        assert len(hierarchy.clock.events) == before

    def test_evict_demotes_one_level(self, hierarchy):
        hierarchy.place("a.bin", b"hello")
        hierarchy.evict("a.bin")
        assert hierarchy.locate("a.bin").name == "mid"

    def test_evict_from_slowest_fails(self, hierarchy):
        hierarchy.place("a.bin", b"x", preferred_index=2)
        with pytest.raises(StorageError):
            hierarchy.evict("a.bin")

    def test_proportional_allocation(self, hierarchy):
        alloc = hierarchy.proportional_allocation(1_000_000)
        # fast:slow capacity ratio is 1000:1_000_000 = 1/1000.
        assert alloc["fast"] == 1000
        assert alloc["slow"] == 1_000_000

    def test_usage_reporting(self, hierarchy):
        hierarchy.place("a.bin", b"x" * 50)
        usage = hierarchy.usage()
        assert usage["fast"]["used"] == 50
        assert usage["slow"]["capacity"] == 1_000_000

    def test_two_tier_titan_factory(self, tmp_path):
        h = two_tier_titan(
            tmp_path, fast_capacity=1024, slow_capacity=10**6,
            backend=BACKEND,
        )
        assert h.tier_names() == ["tmpfs", "lustre"]
        assert h.fastest.device.name == "dram_tmpfs"
        assert h.slowest.device.name == "lustre"
        assert h.fastest.backend.kind == BACKEND
